"""F2: regenerate Figure 2 — the detailed Stability widget.

Reproduces the figure's content: the line fit to the score distribution
at the top-10 and over-all, the slope values, and the stable/unstable
call at the 0.25 threshold.  A weight-vector sweep shows how alternative
recipes move the slopes — the widget "is updated as the user ... sets
different weights" (paper §2.4).
"""

import pytest

from benchmarks.conftest import report
from repro.preprocess import NormalizationPlan, TablePreprocessor
from repro.ranking import LinearScoringFunction, rank_table
from repro.stability import slope_stability

WEIGHT_SWEEP = {
    "figure-1 recipe": {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
    "pubcount only": {"PubCount": 1.0},
    "faculty only": {"Faculty": 1.0},
    "gre only": {"GRE": 1.0},
    "equal thirds": {"PubCount": 1 / 3, "Faculty": 1 / 3, "GRE": 1 / 3},
}


def assess(cs_table, weights):
    scorer = LinearScoringFunction(weights)
    prepared = TablePreprocessor(
        NormalizationPlan.minmax_all(list(weights))
    ).fit_transform(cs_table)
    ranking = rank_table(prepared, scorer, "DeptName")
    return slope_stability(ranking, k=10, threshold=0.25)


def test_bench_figure2_detailed_widget(benchmark, cs_table):
    result = benchmark(assess, cs_table, WEIGHT_SWEEP["figure-1 recipe"])

    rows = [
        f"top-10  fit: y = {result.fit_top_k.slope:+.4f}x + "
        f"{result.fit_top_k.intercept:.4f}   |slope| {result.slope_top_k:.3f}  "
        f"R^2 {result.fit_top_k.r_squared:.3f}  "
        f"{'stable' if result.stable_top_k else 'UNSTABLE'}",
        f"overall fit: y = {result.fit_overall.slope:+.4f}x + "
        f"{result.fit_overall.intercept:.4f}   |slope| {result.slope_overall:.3f}  "
        f"R^2 {result.fit_overall.r_squared:.3f}  "
        f"{'stable' if result.stable_overall else 'UNSTABLE'}",
        f"threshold 0.25 -> verdict: {result.verdict}",
    ]
    report("Figure 2: Stability detailed widget (Figure-1 recipe)", rows)

    # the figure's ranking is stable in both segments
    assert result.stable
    # slopes are negative (scores fall with rank); magnitudes reported
    assert result.fit_top_k.slope < 0
    assert result.fit_overall.slope < 0


def test_bench_figure2_weight_sweep(benchmark, cs_table):
    def sweep():
        return {name: assess(cs_table, w) for name, w in WEIGHT_SWEEP.items()}

    results = benchmark(sweep)
    rows = [
        f"{name:<16} top-10 {r.slope_top_k:5.3f}  overall {r.slope_overall:5.3f}  "
        f"-> {r.verdict}"
        for name, r in results.items()
    ]
    report("Figure 2 extension: slopes under alternative recipes", rows)

    # every weighting of a real quality signal stays stable here, and the
    # sweep demonstrates the slopes genuinely move with the recipe
    slopes = [r.slope_top_k for r in results.values()]
    assert max(slopes) - min(slopes) > 0.05
