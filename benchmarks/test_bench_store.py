"""E6: the durable label store — warm restarts vs cold rebuilds.

The in-memory engine (E1) made repeated requests cheap *within* one
process; the store makes the first request after a restart cheap too.
This bench quantifies the acceptance claims:

- a fresh :class:`~repro.engine.service.LabelService` (empty L1) over
  an existing store serves a previously computed label from L2 at
  least **20x** faster than the cold Monte-Carlo build that produced
  it;
- the stored payload round-trips byte-identically: the bytes on disk
  are exactly the pickle of the originally computed label, and the
  label served from them renders the same JSON.
"""

import pickle
import time

from benchmarks.conftest import report
from repro.datasets import synthetic_scores_table
from repro.engine import LabelDesign, LabelService
from repro.label.render_json import render_json
from repro.store.store import PICKLE_PROTOCOL

TRIALS = 25
EPSILONS = (0.05, 0.1)


def bench_table():
    return synthetic_scores_table(800, num_attributes=3, group_advantage=0.8, seed=42)


DESIGN = LabelDesign.create(
    weights={"attr_1": 0.5, "attr_2": 0.3, "attr_3": 0.2},
    sensitive="group",
    id_column="item",
    k=20,
    monte_carlo_trials=TRIALS,
    monte_carlo_epsilons=EPSILONS,
)


def test_bench_e6_warm_restart_vs_cold_build(tmp_path):
    """A restarted service must serve the archived label >= 20x faster."""
    path = str(tmp_path / "bench-store.db")
    table = bench_table()

    with LabelService(store_path=path) as service:
        start = time.perf_counter()
        cold = service.build_label(table, DESIGN, "bench")
        cold_seconds = time.perf_counter() - start
        assert cold.tier == "build"
        stored_bytes = service.store.get_bytes(cold.fingerprint)

    # byte-exact archival: disk holds exactly the original label's pickle
    assert stored_bytes == pickle.dumps(cold.facts, protocol=PICKLE_PROTOCOL)

    # "restart": a brand-new service over the same file, L1 empty
    with LabelService(store_path=path) as reborn:
        start = time.perf_counter()
        warm = reborn.build_label(table, DESIGN, "bench")
        warm_seconds = time.perf_counter() - start
        assert warm.tier == "l2"
        assert reborn.stats()["service"]["builds"] == 0

        # once promoted, the second request is pure memory
        start = time.perf_counter()
        promoted = reborn.build_label(table, DESIGN, "bench")
        l1_seconds = time.perf_counter() - start
        assert promoted.tier == "l1"

    report(
        f"E6: warm restart over a label store (n=800, {TRIALS} MC trials)",
        [
            f"cold build        {cold_seconds * 1000:9.2f} ms",
            f"L2 warm restart   {warm_seconds * 1000:9.2f} ms"
            f"  ({cold_seconds / warm_seconds:6.0f}x)",
            f"L1 after promote  {l1_seconds * 1000:9.4f} ms"
            f"  ({cold_seconds / l1_seconds:6.0f}x)",
        ],
    )

    # the served label is the same label, down to the rendered bytes
    assert render_json(warm.facts.label) == render_json(cold.facts.label)
    # acceptance floor: a disk read + unpickle must beat the MC loop 20x
    assert warm_seconds < cold_seconds / 20


def test_bench_e6_store_write_overhead_is_modest(tmp_path):
    """Write-through must not dominate a cold build (report + sanity)."""
    table = bench_table()

    with LabelService() as memory_only:
        start = time.perf_counter()
        memory_only.build_label(table, DESIGN, "bench")
        plain_seconds = time.perf_counter() - start

    with LabelService(store_path=str(tmp_path / "overhead.db")) as stored:
        start = time.perf_counter()
        stored.build_label(table, DESIGN, "bench")
        stored_seconds = time.perf_counter() - start

    report("E6: cold build, in-memory engine vs write-through store", [
        f"memory only     {plain_seconds * 1000:9.2f} ms",
        f"with store      {stored_seconds * 1000:9.2f} ms",
        f"overhead        {(stored_seconds / plain_seconds - 1) * 100:8.1f}%",
    ])
    # the pickle + sqlite insert must stay a fraction of the MC loop
    assert stored_seconds < plain_seconds * 2
