"""F3: regenerate Figure 3 — the scoring-function design view.

Reproduces the view's three panels: the data preview with per-attribute
statistics, the histogram of GRE the figure shows, and the effect of
the raw-vs-normalize checkbox on the ranking preview.
"""

import pytest

from benchmarks.conftest import report
from repro.app import DemoSession


def design_view(histogram_bins=8):
    session = DemoSession()
    session.load_builtin("cs-departments")
    overview = session.attribute_overview()
    hist = session.attribute_histogram("GRE", bins=histogram_bins)
    session.design_scoring(
        weights={"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
        sensitive_attribute="DeptSizeBin",
        id_column="DeptName",
    )
    normalized_preview = session.preview(10)
    session.set_normalization(False)
    raw_preview = session.preview(10)
    return overview, hist, normalized_preview, raw_preview


def test_bench_figure3_design_view(benchmark):
    overview, hist, normalized_preview, raw_preview = benchmark(design_view)

    rows = []
    for entry in overview:
        if entry["kind"] == "numeric":
            rows.append(
                f"attribute {entry['name']:<12} numeric  min {entry['min']:8.1f}  "
                f"median {entry['median']:8.1f}  max {entry['max']:8.1f}"
            )
        else:
            rows.append(
                f"attribute {entry['name']:<12} categorical  "
                f"{entry['num_categories']} categories"
            )
    rows.append("")
    for i, count in enumerate(hist.counts):
        rows.append(
            f"GRE bin [{hist.edges[i]:6.1f}, {hist.edges[i + 1]:6.1f})  "
            f"count {count}"
        )
    rows.append("")
    rows.append("preview (normalized): " + ", ".join(
        str(i) for i in normalized_preview.item_ids()[:5]))
    rows.append("preview (raw):        " + ", ".join(
        str(i) for i in raw_preview.item_ids()[:5]))
    report("Figure 3: scoring-function design view", rows)

    # the view covers all six attributes
    assert len(overview) == 6
    # the GRE histogram covers all 51 departments
    assert hist.total == 51
    # the normalization checkbox matters: raw GRE magnitudes (~160)
    # dominate raw PubCount/Faculty contributions differently than
    # normalized ones, reordering the preview
    assert normalized_preview.scores.max() <= 1.0 + 1e-9
    assert raw_preview.scores.max() > 50


def test_bench_figure3_histogram_rendering(benchmark):
    session = DemoSession()
    session.load_builtin("cs-departments")

    art = benchmark(session.attribute_histogram_ascii, "GRE", 8)
    assert "GRE (n=51)" in art
    assert art.count("#") > 10
