"""A2: ablation of FA*IR's multiple-testing correction.

The ranked group fairness test checks every prefix of the top-k; [14]'s
alpha adjustment keeps the *overall* type-I error at the target.  This
bench measures the realized rejection rate of truly fair rankings with
and without the adjustment, across k and p — the correction's entire
reason to exist — plus the exact (DP-computed) failure probabilities.
"""

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.fairness import (
    adjust_alpha,
    compute_fail_probability,
    generate_ranking_labels,
)
from repro.fairness.fair_star.verifier import audit_prefixes

ALPHA = 0.1
KS = (10, 50, 100, 200)
PS = (0.1, 0.3, 0.5, 0.7, 0.9)


def exact_fail_probabilities():
    table = {}
    for k in KS:
        for p in PS:
            naive = compute_fail_probability(k, p, ALPHA)
            corrected_alpha = adjust_alpha(k, p, ALPHA)
            corrected = (
                compute_fail_probability(k, p, corrected_alpha)
                if corrected_alpha > 0 else 0.0
            )
            table[(k, p)] = (naive, corrected_alpha, corrected)
    return table


def test_bench_a2_exact_type_one_error(benchmark):
    table = benchmark.pedantic(exact_fail_probabilities, rounds=1, iterations=1)

    rows = ["k     p     naive-fail   adjusted-alpha   adjusted-fail"]
    for (k, p), (naive, alpha_c, corrected) in table.items():
        rows.append(
            f"{k:<5} {p:<5} {naive:10.3f}   {alpha_c:14.5f}   {corrected:12.3f}"
        )
    report(f"A2a: P[fair ranking fails] at target alpha={ALPHA}", rows)

    for (k, p), (naive, _, corrected) in table.items():
        # adjusted test meets the target everywhere
        assert corrected <= ALPHA + 1e-9, (k, p)
        # the naive test overshoots it for all but trivial settings
        if k >= 50:
            assert naive > ALPHA, (k, p)
    # and the inflation grows with k (more prefixes = more chances to fail)
    naive_by_k = [table[(k, 0.5)][0] for k in KS]
    assert naive_by_k == sorted(naive_by_k)


def simulated_rejection_rates(k=50, p=0.5, trials=300, seed=20180610):
    rng = np.random.default_rng(seed)
    naive = corrected = 0
    for _ in range(trials):
        labels = generate_ranking_labels(2 * k, p, rng=rng)
        if not audit_prefixes(labels, p=p, k=k, alpha=ALPHA, adjust=False).passes:
            naive += 1
        if not audit_prefixes(labels, p=p, k=k, alpha=ALPHA, adjust=True).passes:
            corrected += 1
    return naive / trials, corrected / trials


def test_bench_a2_simulated_type_one_error(benchmark):
    naive_rate, corrected_rate = benchmark.pedantic(
        simulated_rejection_rates, rounds=1, iterations=1
    )
    report(
        "A2b: simulated rejection of fair rankings (k=50, p=0.5, 300 trials)",
        [
            f"naive per-prefix test: {naive_rate:.3f}",
            f"adjusted (FA*IR):      {corrected_rate:.3f}   target {ALPHA}",
        ],
    )
    assert corrected_rate <= ALPHA + 0.05
    assert naive_rate > corrected_rate
    # simulation matches the exact DP within Monte-Carlo error
    exact_naive = compute_fail_probability(50, 0.5, ALPHA)
    assert naive_rate == pytest.approx(exact_naive, abs=0.07)
