"""B2: vectorized Monte-Carlo trial kernels vs the scalar backends.

PR 3 batches the whole trial loop into array operations
(:mod:`repro.stability.kernels`): one design-matrix extraction, an
``(n x T)`` score matrix accumulated in the scalar path's exact
operation order, one stable argsort across all trials, and Kendall
tau / top-k overlap computed on integer permutation arrays via
merge-sort inversion counting.  This bench times that kernel path
against ``serial``, ``thread``, and ``process`` on the synthetic
dataset at several table sizes and trial counts, and asserts the two
acceptance criteria:

- byte-identical outcomes against the serial scalar path, and
- >= 5x speedup over serial for the 50-trial perturbation profile
  (in practice the kernels land one to two orders of magnitude ahead,
  even on the single-CPU bench host where thread/process pools cannot
  win at all).
"""

import time

from benchmarks.conftest import report
from repro.datasets import synthetic_scores_table
from repro.engine import LabelDesign, LabelService
from repro.engine.backends import (
    ProcessTrialBackend,
    SerialTrialBackend,
    ThreadTrialBackend,
    VectorizedTrialBackend,
)
from repro.label.render_json import render_json
from repro.ranking.scoring import LinearScoringFunction
from repro.stability import (
    DataUncertaintyStability,
    WeightPerturbationStability,
    per_attribute_stability,
)

WEIGHTS = {"attr_1": 0.5, "attr_2": 0.3, "attr_3": 0.2}
PROFILE_EPSILONS = [0.05, 0.1, 0.2]


def bench_table(n):
    return synthetic_scores_table(n, num_attributes=3, group_advantage=0.8, seed=42)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_bench_b2_perturbation_profile_speedup():
    """The acceptance bench: 50-trial perturbation profile, >= 5x."""
    table = bench_table(800)
    scorer = LinearScoringFunction(WEIGHTS)

    def estimator(backend):
        return WeightPerturbationStability(
            table, scorer, "item", k=20, trials=50, seed=1, backend=backend
        )

    backends = [
        ("serial", SerialTrialBackend()),
        ("thread", ThreadTrialBackend(workers=2)),
        ("process", ProcessTrialBackend(workers=2)),
        ("vectorized", VectorizedTrialBackend()),
    ]
    seconds = {}
    outcomes = {}
    try:
        for name, backend in backends:
            est = estimator(backend)
            est.assess_at(0.1)  # warm-up: pools/kernels outside the clock
            outcomes[name], seconds[name] = timed(
                lambda est=est: est.profile(PROFILE_EPSILONS)
            )
    finally:
        for _, backend in backends:
            backend.shutdown()

    speedup = seconds["serial"] / seconds["vectorized"]
    report(
        "B2: 50-trial perturbation profile, n=800, 3 epsilons "
        "(pools forced to 2 workers)",
        [
            *(
                f"{name:<12} {seconds[name] * 1000:8.1f} ms"
                for name, _ in backends
            ),
            f"vectorized speedup over serial: {speedup:.1f}x",
        ],
    )

    # every backend, the same outcome — then the acceptance threshold
    assert (
        outcomes["serial"] == outcomes["thread"]
        == outcomes["process"] == outcomes["vectorized"]
    )
    assert speedup >= 5.0


def test_bench_b2_kernel_scaling_across_sizes_and_trials():
    """Serial-vs-vectorized timings across table sizes and trial counts."""
    scorer = LinearScoringFunction(WEIGHTS)
    rows = []
    for n, trials in ((200, 20), (800, 50), (2000, 50)):
        table = bench_table(n)
        serial = WeightPerturbationStability(
            table, scorer, "item", k=20, trials=trials, seed=1
        )
        vectorized = WeightPerturbationStability(
            table, scorer, "item", k=20, trials=trials, seed=1,
            backend=VectorizedTrialBackend(),
        )
        vectorized.assess_at(0.1)  # warm the numpy code paths
        serial_outcome, serial_s = timed(lambda e=serial: e.assess_at(0.1))
        vector_outcome, vector_s = timed(lambda e=vectorized: e.assess_at(0.1))
        assert serial_outcome == vector_outcome
        rows.append(
            f"n={n:<5} T={trials:<3} serial {serial_s * 1000:8.1f} ms   "
            f"vectorized {vector_s * 1000:7.1f} ms   "
            f"({serial_s / vector_s:5.1f}x)"
        )
    report("B2: weight-perturbation kernel scaling", rows)


def test_bench_b2_uncertainty_and_per_attribute_kernels():
    """The other two estimators ride the same kernels, same identity."""
    table = bench_table(800)
    scorer = LinearScoringFunction(WEIGHTS)
    rows = []

    serial_u = DataUncertaintyStability(table, scorer, "item", k=20, trials=50, seed=1)
    vector_u = DataUncertaintyStability(
        table, scorer, "item", k=20, trials=50, seed=1,
        backend=VectorizedTrialBackend(),
    )
    vector_u.assess_at(0.1)
    serial_outcome, serial_s = timed(lambda: serial_u.assess_at(0.1))
    vector_outcome, vector_s = timed(lambda: vector_u.assess_at(0.1))
    assert serial_outcome == vector_outcome
    rows.append(
        f"uncertainty   serial {serial_s * 1000:8.1f} ms   "
        f"vectorized {vector_s * 1000:7.1f} ms   ({serial_s / vector_s:5.1f}x)"
    )

    serial_attr, serial_s = timed(
        lambda: per_attribute_stability(
            table, scorer, "item", k=20, trials=20, iterations=4, seed=1
        )
    )
    vector_attr, vector_s = timed(
        lambda: per_attribute_stability(
            table, scorer, "item", k=20, trials=20, iterations=4, seed=1,
            backend=VectorizedTrialBackend(),
        )
    )
    assert serial_attr == vector_attr
    rows.append(
        f"per-attribute serial {serial_s * 1000:8.1f} ms   "
        f"vectorized {vector_s * 1000:7.1f} ms   ({serial_s / vector_s:5.1f}x)"
    )
    report("B2: uncertainty and per-attribute kernels (n=800)", rows)


def test_bench_b2_full_label_byte_identity_and_stats():
    """A full Monte-Carlo label through the service: identical bytes."""
    table = bench_table(800)
    design = LabelDesign.create(
        weights=WEIGHTS,
        sensitive="group",
        id_column="item",
        k=20,
        monte_carlo_trials=50,
        monte_carlo_epsilons=(0.1,),
    )

    serial_facts, serial_s = timed(
        lambda: design.builder_for(table, dataset_name="bench").build()
    )
    with LabelService(use_cache=False, trial_backend="vectorized") as service:
        outcome, vector_s = timed(
            lambda: service.build_label(table, design, "bench")
        )
        executor = service.stats()["executor"]

    report("B2: full MC label (n=800, 50 trials), serial vs vectorized", [
        f"serial build      {serial_s * 1000:8.1f} ms",
        f"vectorized build  {vector_s * 1000:8.1f} ms  "
        f"({serial_s / vector_s:.1f}x)",
        f"kernel runs {executor['trial_kernel_runs']}, "
        f"scalar fallbacks {executor['trial_scalar_fallbacks']}",
    ])

    assert render_json(outcome.facts.label) == render_json(serial_facts.label)
    assert executor["trial_backend_effective"] == "vectorized"
    assert executor["trial_scalar_fallbacks"] == 0
