"""B1: Monte-Carlo trial backends — serial vs thread vs process.

PR 1 made the trial loop deterministic under any interleaving; this
bench exercises the pluggable backends that exploit it.  The pools are
*forced* to two workers so the thread and process paths really execute
even on the single-CPU bench host (where auto-resolution deliberately
self-disables them — that resolution is reported too).

What is asserted is the determinism contract, not a speedup: on one
CPU, threads are GIL-bound and processes pay fork+IPC, so wall-clock
wins only appear on multi-core hosts.  The timings are recorded so a
reader on real hardware can compare the three columns directly.
"""

import os
import time

from benchmarks.conftest import report
from repro.datasets import synthetic_scores_table
from repro.engine import LabelDesign, LabelService
from repro.engine.backends import (
    ProcessTrialBackend,
    SerialTrialBackend,
    ThreadTrialBackend,
    resolve_trial_backend,
)
from repro.label.render_json import render_json
from repro.ranking.scoring import LinearScoringFunction
from repro.stability import WeightPerturbationStability

TRIALS = 40
WEIGHTS = {"attr_1": 0.5, "attr_2": 0.3, "attr_3": 0.2}


def bench_table():
    return synthetic_scores_table(800, num_attributes=3, group_advantage=0.8, seed=42)


def test_bench_b1_backend_timings_and_determinism():
    """40 MC trials per backend: identical outcomes, recorded timings."""
    table = bench_table()
    scorer = LinearScoringFunction(WEIGHTS)
    backends = [
        ("serial", SerialTrialBackend()),
        ("thread", ThreadTrialBackend(workers=2)),
        ("process", ProcessTrialBackend(workers=2)),
    ]
    outcomes, rows = [], []
    try:
        for name, backend in backends:
            estimator = WeightPerturbationStability(
                table, scorer, "item", k=20, trials=TRIALS, seed=1, backend=backend
            )
            estimator.assess_at(0.1)  # warm-up: pools spin up outside the clock
            start = time.perf_counter()
            outcome = estimator.assess_at(0.1)
            seconds = time.perf_counter() - start
            outcomes.append(outcome)
            rows.append(f"{name:<8} {seconds * 1000:8.1f} ms")
    finally:
        for _, backend in backends:
            backend.shutdown()

    resolved = resolve_trial_backend("process").name
    rows.append(
        f"auto-resolution for 'process' on this {os.cpu_count()}-CPU host: "
        f"{resolved}"
    )
    report(f"B1: {TRIALS} MC trials per backend (pools forced to 2 workers)", rows)

    # the determinism contract: every backend, the same outcome
    assert outcomes[0] == outcomes[1] == outcomes[2]
    # the bench host has one CPU: auto-resolution must self-disable there
    if (os.cpu_count() or 1) <= 1:
        assert resolved == "serial"


def test_bench_b1_process_label_byte_identity():
    """A full Monte-Carlo label: process-backend bytes == serial bytes."""
    table = bench_table()
    design = LabelDesign.create(
        weights=WEIGHTS,
        sensitive="group",
        id_column="item",
        k=20,
        monte_carlo_trials=10,
        monte_carlo_epsilons=(0.1,),
    )

    start = time.perf_counter()
    serial_facts = design.builder_for(table, dataset_name="bench").build()
    serial_seconds = time.perf_counter() - start

    with LabelService(
        use_cache=False, trial_backend="process", trial_workers=2
    ) as service:
        start = time.perf_counter()
        outcome = service.build_label(table, design, "bench")
        process_seconds = time.perf_counter() - start
        effective = service.stats()["executor"]["trial_backend_effective"]

    report("B1: full MC label (n=800, 10 trials), serial vs process backend", [
        f"serial build    {serial_seconds * 1000:8.1f} ms",
        f"process build   {process_seconds * 1000:8.1f} ms  "
        f"(effective backend: {effective})",
        "(speedup only expected on multi-core hosts)",
    ])

    # the acceptance criterion: byte-identical labels for equal seeds
    assert render_json(outcome.facts.label) == render_json(serial_facts.label)
    assert effective == "process"  # forced workers kept the pool alive
