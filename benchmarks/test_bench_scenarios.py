"""T1: the §3 demonstration matrix — three datasets x several recipes.

"We will demonstrate the utility of Ranking Facts using three
real-world data sets, considering several ranking functions for each."
This bench runs the whole matrix and prints one summary row per
(dataset, recipe): stability verdict, number of unfair (group, measure)
pairs, and the top-k diversity loss.
"""

import pytest

from benchmarks.conftest import report
from repro.datasets import compas, cs_departments, german_credit
from repro.label import RankingFactsBuilder
from repro.preprocess import binarize_categorical
from repro.ranking import LinearScoringFunction

SCENARIOS = []


def scenario(name):
    def register(fn):
        SCENARIOS.append((name, fn))
        return fn
    return register


@scenario("cs-departments / figure-1 recipe")
def _cs_figure1():
    return cs_departments(), {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2}, \
        "DeptName", "DeptSizeBin", ["DeptSizeBin", "Region"], 10


@scenario("cs-departments / pubs only")
def _cs_pubs():
    return cs_departments(), {"PubCount": 1.0}, \
        "DeptName", "DeptSizeBin", ["DeptSizeBin", "Region"], 10


@scenario("cs-departments / gre heavy")
def _cs_gre():
    return cs_departments(), {"GRE": 0.8, "PubCount": 0.1, "Faculty": 0.1}, \
        "DeptName", "DeptSizeBin", ["DeptSizeBin", "Region"], 10


@scenario("compas / risk recipe")
def _compas_risk():
    table = binarize_categorical(
        compas(n=2000), "race", "RaceBin", ["African-American"],
        protected_label="African-American", other_label="other",
    )
    return table, {"decile_score": 0.7, "priors_count": 0.3}, \
        "defendant_id", "RaceBin", ["RaceBin", "sex"], 100


@scenario("compas / priors only")
def _compas_priors():
    table = binarize_categorical(
        compas(n=2000), "race", "RaceBin", ["African-American"],
        protected_label="African-American", other_label="other",
    )
    return table, {"priors_count": 1.0}, \
        "defendant_id", "RaceBin", ["RaceBin", "sex"], 100


@scenario("german-credit / creditworthiness")
def _german_credit_score():
    return german_credit(), \
        {"credit_score": 0.8, "credit_amount": -0.1, "duration_months": -0.1}, \
        "applicant_id", "AgeGroup", ["AgeGroup", "sex"], 100


@scenario("german-credit / raw score")
def _german_raw():
    return german_credit(), {"credit_score": 1.0}, \
        "applicant_id", "sex", ["sex", "AgeGroup"], 100


def run_scenario(config):
    table, weights, id_column, sensitive, diversity, k = config()
    facts = (
        RankingFactsBuilder(table)
        .with_id_column(id_column)
        .with_scoring(LinearScoringFunction(weights))
        .with_sensitive_attribute(sensitive)
        .with_diversity_attributes(diversity)
        .with_top_k(k)
        .build()
    )
    label = facts.label
    unfair = sum(1 for r in label.fairness.results if not r.fair)
    missing = label.diversity.reports[0].missing_categories()
    return {
        "stability": label.stability.verdict,
        "unfair_pairs": unfair,
        "total_pairs": len(label.fairness.results),
        "missing_from_topk": missing,
    }


def run_all():
    return {name: run_scenario(config) for name, config in SCENARIOS}


def test_bench_scenario_matrix(benchmark):
    results = benchmark(run_all)

    rows = [
        f"{name:<36} {r['stability']:<9} "
        f"unfair {r['unfair_pairs']}/{r['total_pairs']}  "
        f"missing@top-k: {', '.join(r['missing_from_topk']) or '-'}"
        for name, r in results.items()
    ]
    report("§3 scenario matrix (dataset x recipe)", rows)

    assert len(results) == 7
    # the Figure-1 recipe flags unfairness; a GRE-heavy recipe is the
    # counterfactual: size no longer dominates, so fewer flags
    figure1 = results["cs-departments / figure-1 recipe"]
    gre_heavy = results["cs-departments / gre heavy"]
    assert figure1["unfair_pairs"] >= 3
    assert gre_heavy["unfair_pairs"] < figure1["unfair_pairs"]
    # COMPAS risk recipes skew by race in every variant
    assert results["compas / risk recipe"]["unfair_pairs"] >= 2


@pytest.mark.parametrize("name,config", SCENARIOS)
def test_bench_each_scenario(benchmark, name, config):
    result = benchmark(run_scenario, config)
    assert result["total_pairs"] in (6,)  # 2 protected features x 3 measures
