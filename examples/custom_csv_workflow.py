"""The upload path: label a CSV of your own.

The demo lets users "upload one of their own (as a fully populated
table in CSV format)" (paper §3).  This example writes a small product
catalogue to disk, loads it back through the CSV path, derives a binary
sensitive attribute from a numeric column (the way DeptSizeBin is
derived from Faculty), and emits the label in all three formats —
including a standalone HTML file you can open in a browser.

Run:
    python examples/custom_csv_workflow.py
"""

import tempfile
from pathlib import Path

from repro import (
    LinearScoringFunction,
    RankingFactsBuilder,
    render_html,
    render_json,
    render_text,
)
from repro.datasets import load_csv_dataset
from repro.preprocess import binarize_numeric
from repro.tabular import Table, write_csv

CATALOGUE = {
    "product": [f"P{i:03d}" for i in range(24)],
    "rating": [4.8, 4.7, 4.7, 4.6, 4.5, 4.5, 4.4, 4.4, 4.3, 4.2, 4.2, 4.1,
               4.0, 4.0, 3.9, 3.8, 3.8, 3.7, 3.6, 3.5, 3.4, 3.2, 3.1, 3.0],
    "reviews": [850, 920, 310, 780, 150, 640, 95, 720, 60, 540, 80, 430,
                45, 380, 35, 290, 25, 210, 20, 160, 15, 120, 10, 90],
    "price": [99, 149, 25, 199, 35, 120, 19, 89, 29, 75, 15, 65,
              22, 55, 18, 45, 12, 38, 9, 30, 8, 25, 6, 20],
    "seller": ["brand", "brand", "indie", "brand", "indie", "brand",
               "indie", "brand", "indie", "brand", "indie", "brand",
               "indie", "brand", "indie", "brand", "indie", "brand",
               "indie", "brand", "indie", "brand", "indie", "brand"],
}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="ranking-facts-"))
    csv_path = workdir / "catalogue.csv"

    # 1. your data, as a CSV on disk
    write_csv(Table.from_dict(CATALOGUE), csv_path)
    print(f"wrote {csv_path}")

    # 2. the upload path: parse + type inference + fitness checks
    table = load_csv_dataset(csv_path)
    print(f"loaded {table.num_rows} rows; "
          f"numeric: {table.numeric_column_names()}, "
          f"categorical: {table.categorical_column_names()}")

    # 3. derive a second sensitive attribute from a numeric column
    table = binarize_numeric(
        table, "reviews", "PopularityBin",
        above_label="popular", below_label="niche",
    )

    # 4. score: ratings matter most, review volume adds confidence,
    #    price counts (slightly) against
    scorer = LinearScoringFunction(
        {"rating": 0.6, "reviews": 0.3, "price": -0.1}
    )
    facts = (
        RankingFactsBuilder(table, dataset_name="product catalogue")
        .with_id_column("product")
        .with_scoring(scorer)
        .with_sensitive_attribute("seller")
        .with_sensitive_attribute("PopularityBin")
        .with_diversity_attributes(["seller", "PopularityBin"])
        .build()
    )

    # 5. all three output formats
    print(render_text(facts.label))

    html_path = workdir / "label.html"
    html_path.write_text(render_html(facts.label), encoding="utf-8")
    print(f"wrote {html_path} (open it in a browser)")

    json_path = workdir / "label.json"
    json_path.write_text(render_json(facts.label), encoding="utf-8")
    print(f"wrote {json_path}")


if __name__ == "__main__":
    main()
