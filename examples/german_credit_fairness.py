"""Creditworthiness ranking with multiple sensitive attributes.

The paper's third scenario: the German Credit data.  Ranks the 1,000
applicants by a creditworthiness score (with *negative* weights on loan
size and duration), audits fairness for two sensitive attributes at
once (age group and sex), and contrasts the slope-based stability
verdict with the Monte-Carlo weight-perturbation view.

Run:
    python examples/german_credit_fairness.py
"""

from repro import LinearScoringFunction, RankingFactsBuilder, render_text
from repro.datasets import german_credit


def main() -> None:
    table = german_credit()
    print(f"loaded {table.num_rows} applicants (UCI schema, synthesized)")

    scorer = LinearScoringFunction(
        {
            "credit_score": 0.8,
            "credit_amount": -0.1,      # bigger loans score against
            "duration_months": -0.1,    # longer terms score against
        }
    )
    facts = (
        RankingFactsBuilder(table, dataset_name="German credit")
        .with_id_column("applicant_id")
        .with_scoring(scorer)
        .with_sensitive_attribute("AgeGroup")   # young vs adult
        .with_sensitive_attribute("sex")        # male vs female
        .with_diversity_attributes(["AgeGroup", "sex", "credit_risk"])
        .with_top_k(100)
        .with_monte_carlo_stability(trials=25, epsilons=[0.05, 0.1, 0.2])
        .build()
    )

    print(render_text(facts.label))

    print("detailed fairness picture (four audited groups):")
    for result in facts.label.fairness.results:
        print(
            f"  {result.measure:<12} {result.group_label:<18} "
            f"{result.verdict:<7} p={result.p_value:.3g}"
        )

    widget = facts.label.stability
    print("\nstability, two ways:")
    print(
        f"  score-slope method: {widget.verdict} "
        f"(top-100 slope {widget.slope_report.slope_top_k:.3f})"
    )
    for outcome in widget.perturbation:
        print(
            f"  weight jitter eps={outcome.epsilon:g}: "
            f"P[top-100 changes] = {outcome.change_probability:.2f}, "
            f"mean Kendall tau = {outcome.mean_kendall_tau:.3f}"
        )


if __name__ == "__main__":
    main()
