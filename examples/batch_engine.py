"""Batch labelling through the engine: cache, executor, statistics.

The seed tool built one label at a time, synchronously, from scratch.
The engine (`repro.engine`) turns labelling into a *service*: designs
are frozen value objects, identical requests are content-addressed
cache hits, and a batch of jobs runs through a worker pool in one call.

This walkthrough labels two built-in datasets under several recipes —
including a deliberately repeated one — and reads the engine's
statistics afterwards to show what was built versus served from cache.

Backend selection: the Monte-Carlo trials inside each build run on a
pluggable backend — ``serial``, ``thread`` (default), or ``process``
(GIL-free).  Pick one with ``LabelService(trial_backend="process")``
here, with ``ranking-facts batch --trial-backend process`` on the CLI,
or with ``REPRO_TRIAL_BACKEND=process`` for the server.  All three
serve byte-identical labels for equal seeds, and parallel backends
self-disable to serial on single-CPU hosts, so the setting is purely a
throughput knob.

Run:  PYTHONPATH=src python examples/batch_engine.py
"""

from repro.engine import JobStatus, LabelDesign, LabelJob, LabelService

# -- 1. designs are frozen, hashable recipes -----------------------------------
#
# LabelDesign captures everything the builder can be configured with.
# Equal designs (same weights *in the same order*, same k, same seed...)
# are literally the same computation, which is what the cache keys on.

figure1 = LabelDesign.create(
    weights={"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
    sensitive="DeptSizeBin",
    diversity=["DeptSizeBin", "Region"],
    id_column="DeptName",
    monte_carlo_trials=10,          # the expensive stability detail
    monte_carlo_epsilons=(0.1,),
)
gre_only = figure1.with_updates(weights=(("GRE", 1.0),))
credit = LabelDesign.create(
    weights={"credit_score": 0.7, "credit_amount": 0.3},
    sensitive="sex",
    id_column="applicant_id",
)

# -- 2. a batch is a list of jobs: dataset reference + design ---------------------
#
# The Figure-1 recipe appears twice, as popular recipes do in a real
# deployment; the engine will build it once and serve the repeat from
# cache (single-flight: even concurrent duplicates build only once).

jobs = [
    LabelJob(design=figure1, dataset="cs-departments"),
    LabelJob(design=gre_only, dataset="cs-departments"),
    LabelJob(design=figure1, dataset="cs-departments"),  # duplicate
    LabelJob(design=credit, dataset="german-credit"),
]

# -- 3. run everything through one service ----------------------------------------
#
# trial_backend picks how each build's Monte-Carlo trials execute;
# "thread" is the default — on a multi-core host try "process" and
# watch GET /engine/stats report the effective backend.

with LabelService(cache_size=32, trial_backend="thread") as service:
    results = service.run_batch(jobs)

    print("batch of", len(jobs), "jobs:")
    for result in results:
        source = "cache" if result.cached else "built"
        print(
            f"  {result.job_id}: {result.status.value:<6} "
            f"{result.dataset_name:<16} {source}  "
            f"({result.seconds * 1000:.1f} ms)"
        )
        assert result.status is JobStatus.DONE

    # the duplicate served the *same* label object, byte for byte
    assert results[2].facts is results[0].facts

    # -- 4. the engine explains itself ---------------------------------------------

    stats = service.stats()
    print(
        "engine: "
        f"{stats['service']['builds']} builds for "
        f"{stats['service']['requests']} requests, "
        f"cache hit rate {stats['cache']['hit_rate']:.0%}, "
        f"trials on the {stats['executor']['trial_backend_effective']} backend"
    )

    # -- 5. the async path the web server uses ---------------------------------------
    #
    # POST /jobs submits exactly like this and polls GET /jobs/<id>;
    # resubmitting the same designs is pure cache traffic.

    handle = service.submit_batch(jobs)
    resubmitted = handle.results()
    print(
        "resubmitted batch", handle.batch_id + ":",
        sum(1 for r in resubmitted if r.cached), "of", len(resubmitted),
        "jobs served from cache",
    )

print("done: the engine is the seam future scaling PRs plug into")
