"""Mitigation: from an unfair label to suggested fixes (paper §4).

The paper's roadmap: "we plan to include methods that help the user
mitigate lack of fairness and diversity by suggesting modified scoring
functions."  This example closes that loop on the CS-departments data:

1. build the Figure-1 label and observe `DeptSizeBin=small` is unfair;
2. ask for the nearest *recipes* (weight vectors) under which FA*IR
   passes — the pre-processing fix;
3. ask for the nearest recipes that merely restore small departments
   to the top-10 — the diversity fix;
4. compare with the post-processing fix: FA*IR re-ranking under the
   original recipe;
5. print the distance-vs-fairness frontier, the trade-off curve a
   richer design view would plot.

Run:
    python examples/mitigation_workflow.py
"""

from repro import LinearScoringFunction, RankingFactsBuilder
from repro.datasets import cs_departments
from repro.fairness import ProtectedGroup, fair_star_rerank
from repro.label import diff_labels
from repro.mitigation import (
    fairness_frontier,
    suggest_diverse_weights,
    suggest_fair_weights,
)


def describe_weights(weights):
    return ", ".join(f"{attr}={value:.2f}" for attr, value in weights.items())


def main() -> None:
    table = cs_departments()
    scorer = LinearScoringFunction({"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2})
    facts = (
        RankingFactsBuilder(table, dataset_name="CS departments")
        .with_id_column("DeptName")
        .with_scoring(scorer)
        .with_sensitive_attribute("DeptSizeBin")
        .build()
    )

    print("1. the audit: verdicts for DeptSizeBin=small")
    for result in facts.label.fairness.results:
        if result.group_label == "DeptSizeBin=small":
            print(f"   {result.measure:<12} {result.verdict} (p={result.p_value:.4f})")

    # mitigation searches run on the SAME preprocessed table the label used
    prepared = facts.scored_table

    print("\n2. nearest fair recipes (FA*IR passes at k=10):")
    for suggestion in suggest_fair_weights(
        prepared, scorer, "DeptSizeBin", "small",
        id_column="DeptName", max_suggestions=3,
    ):
        print(
            f"   {describe_weights(suggestion.weights)}   "
            f"change {suggestion.distance:.2f}, keeps "
            f"{suggestion.top_k_overlap:.0%} of the original top-10"
        )

    print("\n3. nearest recipes restoring >=2 small departments to the top-10:")
    for suggestion in suggest_diverse_weights(
        prepared, scorer, "DeptSizeBin", "small",
        minimum_count=2, id_column="DeptName", max_suggestions=3,
    ):
        print(
            f"   {describe_weights(suggestion.weights)}   "
            f"change {suggestion.distance:.2f}, small in top-10: "
            f"{suggestion.p_value * 10:.0f}"
        )

    print("\n4. the post-processing alternative: FA*IR re-ranking")
    group = ProtectedGroup(facts.ranking, "DeptSizeBin", "small")
    fair = fair_star_rerank(group, k=20, alpha=0.1)
    before = facts.ranking.group_count_at_k("DeptSizeBin", "small", 10)
    after = fair.group_count_at_k("DeptSizeBin", "small", 10)
    print(f"   small departments in top-10: {before} -> {after} "
          f"(recipe unchanged, positions adjusted)")

    print("\n5. the cost-of-fairness frontier (distance -> best p-value):")
    for point in fairness_frontier(
        prepared, scorer, "DeptSizeBin", "small", id_column="DeptName",
    ):
        marker = "PASS" if point.fair else "    "
        print(
            f"   change {point.distance:4.2f}  p={point.p_value:8.4f}  {marker}"
        )

    # adopt the best suggestion and diff the labels: the refinement's
    # effect, stated on the label's own terms
    best = suggest_fair_weights(
        prepared, scorer, "DeptSizeBin", "small",
        id_column="DeptName", max_suggestions=1,
    )[0]
    refined = (
        RankingFactsBuilder(table, dataset_name="CS departments")
        .with_id_column("DeptName")
        .with_scoring(LinearScoringFunction(best.weights))
        .with_sensitive_attribute("DeptSizeBin")
        .build()
    )
    print("\n6. before/after label diff for the adopted suggestion:")
    for line in diff_labels(facts.label, refined.label).summary_lines():
        print(f"   {line}")


if __name__ == "__main__":
    main()
