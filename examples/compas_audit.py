"""Auditing a criminal-risk ranking (the paper's COMPAS scenario).

Ranks defendants by a risk score built from the COMPAS decile and
priors count, audits the ranking for racial skew with all three
fairness measures, then uses the FA*IR re-ranker to construct a
statistically fair top-100 and shows the before/after contrast — the
mitigation direction the paper's §4 describes.

Run:
    python examples/compas_audit.py
"""

from repro import LinearScoringFunction, RankingFactsBuilder
from repro.datasets import compas
from repro.fairness import ProtectedGroup, fair_star_rerank, set_difference_scores
from repro.preprocess import binarize_categorical


def main() -> None:
    table = compas()
    print(f"loaded {table.num_rows} defendants (ProPublica schema, synthesized)")

    # fairness measures need a binary sensitive attribute (paper §3);
    # collapse race to African-American vs other, ProPublica's contrast
    table = binarize_categorical(
        table, "race", "RaceBin", ["African-American"],
        protected_label="African-American", other_label="other",
    )

    scorer = LinearScoringFunction({"decile_score": 0.7, "priors_count": 0.3})
    facts = (
        RankingFactsBuilder(table, dataset_name="COMPAS risk ranking")
        .with_id_column("defendant_id")
        .with_scoring(scorer)
        .with_sensitive_attribute("RaceBin")
        .with_diversity_attributes(["RaceBin", "sex"])
        .with_top_k(100)
        .build()
    )

    print("\nfairness verdicts at k=100 (alpha=0.05):")
    for result in facts.label.fairness.results:
        print(
            f"  {result.measure:<12} {result.group_label:<28} "
            f"{result.verdict:<7} (p={result.p_value:.2e})"
        )

    report = facts.label.diversity.reports[0]
    print("\nrepresentation, top-100 vs overall:")
    for category, share in report.overall.proportions.items():
        top = report.top_k.proportions.get(category, 0.0)
        print(f"  {category:<18} top-100 {top:6.1%}   overall {share:6.1%}")

    # rank-aware scores of [13] give a graded view of the same skew
    group = ProtectedGroup(facts.ranking, "RaceBin", "African-American")
    scores = set_difference_scores(group.mask)
    print(
        f"\nrank-aware fairness scores (0 = fair): "
        f"rND {scores.rnd:.3f}, rKL {scores.rkl:.3f}"
    )

    # mitigation: FA*IR builds a top-100 whose every prefix passes the test.
    # For a risk ranking the protected group is OVER-represented at the top,
    # so the meaningful FA*IR direction is guaranteeing the 'other' group
    # its share of the top positions.
    other = ProtectedGroup(facts.ranking, "RaceBin", "other")
    fair100 = fair_star_rerank(other, k=100, alpha=0.1)
    before = facts.ranking.group_count_at_k("RaceBin", "other", 100)
    after = fair100.group_count_at_k("RaceBin", "other", 100)
    print(
        f"\nFA*IR re-ranked top-100: 'other' defendants {before} -> {after} "
        f"(overall share {other.proportion:.1%})"
    )


if __name__ == "__main__":
    main()
