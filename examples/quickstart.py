"""Quickstart: generate your first nutritional label in ~20 lines.

Builds the paper's Figure-1 label for the CS-departments dataset and
prints it to the terminal.

Run:
    python examples/quickstart.py
"""

from repro import LinearScoringFunction, RankingFactsBuilder, render_text
from repro.datasets import cs_departments


def main() -> None:
    # 1. load a dataset (51 CS departments; see repro.datasets)
    table = cs_departments()

    # 2. design the scoring function: attributes and weights (the Recipe)
    scorer = LinearScoringFunction({"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2})

    # 3. build the label: rank, then compute every widget
    facts = (
        RankingFactsBuilder(table, dataset_name="CS departments")
        .with_id_column("DeptName")
        .with_scoring(scorer)                       # attributes are min-max
        .with_sensitive_attribute("DeptSizeBin")    # normalized by default
        .with_diversity_attributes(["DeptSizeBin", "Region"])
        .build()
    )

    # 4. render (render_html / render_json also available)
    print(render_text(facts.label))

    # the ranking itself is right there too:
    print("top-3 departments:", facts.ranking.item_ids()[:3])


if __name__ == "__main__":
    main()
