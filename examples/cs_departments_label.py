"""The full paper walkthrough on the CS-departments dataset.

Reproduces, step by step, the demo flow of §3 and the three figures:

1. the scoring-function design view (Figure 3): attribute overview,
   GRE histogram, normalization toggle, ranking preview;
2. the nutritional label (Figure 1), expanded to the detailed view;
3. the detailed Stability widget (Figure 2): slope fits at the top-10
   and over-all, plus the Monte-Carlo stability extensions;
4. the §3 narrated findings, checked programmatically.

Run:
    python examples/cs_departments_label.py
"""

from repro import render_text
from repro.app import DemoSession


def banner(title: str) -> None:
    print()
    print("=" * 70)
    print(title)
    print("=" * 70)


def main() -> None:
    session = DemoSession()
    session.load_builtin("cs-departments")

    # -- Figure 3: the design view -----------------------------------------
    banner("Design view (Figure 3): attribute overview")
    for entry in session.attribute_overview():
        if entry["kind"] == "numeric":
            print(
                f"  {entry['name']:<12} numeric     "
                f"min {entry['min']:8.1f}  median {entry['median']:8.1f}  "
                f"max {entry['max']:8.1f}"
            )
        else:
            print(
                f"  {entry['name']:<12} categorical {entry['num_categories']} "
                f"categories"
            )

    banner("Design view (Figure 3): distribution of GRE")
    print(session.attribute_histogram_ascii("GRE", bins=8))

    session.design_scoring(
        weights={"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
        sensitive_attribute="DeptSizeBin",
        diversity_attributes=["DeptSizeBin", "Region"],
        id_column="DeptName",
    )

    banner("Design view (Figure 3): ranking preview (normalized attributes)")
    for item in session.preview(5):
        print(f"  #{item.rank}  {item.item_id:<10} score {item.score:.4f}")

    banner("Design view: the same preview on raw attributes")
    session.set_normalization(False)
    for item in session.preview(5):
        print(f"  #{item.rank}  {item.item_id:<10} score {item.score:.4f}")
    session.set_normalization(True)

    # -- Figure 1: the nutritional label ------------------------------------
    facts = session.generate_label()
    banner("Ranking Facts (Figure 1), detailed view")
    print(render_text(facts.label, detailed=True))

    # -- Figure 2 + §3 findings ------------------------------------------------
    banner("Checked findings from the paper's narrative")
    label = facts.label

    report = label.diversity.reports[0]
    print(
        "  'only large departments are present in the top-10':",
        report.top_k.proportions.get("large", 0.0) == 1.0,
    )

    gre = label.ingredients.analysis.importance_of("GRE")
    print(
        f"  'GRE does not correlate with the ranked outcome': "
        f"importance {gre.importance:.3f} (weakest of the three)"
    )

    gre_stats = next(s for s in label.recipe.statistics if s.attribute == "GRE")
    print(
        f"  'range and median for GRE very similar in top-10 and overall': "
        f"top-10 median {gre_stats.top_k.median:.3f} vs "
        f"overall {gre_stats.overall.median:.3f}"
    )

    slope = label.stability.slope_report
    print(
        f"  stability (Figure 2): top-10 slope {slope.slope_top_k:.3f}, "
        f"overall {slope.slope_overall:.3f}, threshold {slope.threshold} "
        f"-> {slope.verdict}"
    )


if __name__ == "__main__":
    main()
