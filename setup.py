"""Setup shim: enables legacy editable installs in offline environments
where the `wheel` package (required for PEP-517 editable builds) is
unavailable.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
