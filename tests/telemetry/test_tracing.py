"""Tests for repro.telemetry.tracing: spans, ids, the trace buffer."""

import pytest

from repro.telemetry import (
    MetricsRegistry,
    TraceBuffer,
    current_span,
    current_trace_id,
    is_trace_id,
    new_span_id,
    new_trace_id,
    span,
)


class TestIds:
    def test_trace_ids_are_32_hex_chars(self):
        trace = new_trace_id()
        assert is_trace_id(trace)
        assert len(trace) == 32

    def test_span_ids_are_16_hex_chars(self):
        assert len(new_span_id()) == 16
        assert new_span_id() != new_span_id()

    def test_is_trace_id_rejects_malformed_values(self):
        assert not is_trace_id("abcd")  # too short
        assert not is_trace_id("Z" * 32)  # not hex
        assert not is_trace_id("AB" * 16)  # uppercase is not wire format
        assert not is_trace_id(None)
        assert not is_trace_id(123)


class TestSpan:
    def test_root_span_starts_a_fresh_trace(self):
        registry, buffer = MetricsRegistry(), TraceBuffer()
        assert current_span() is None
        with span("outer", registry=registry, buffer=buffer) as outer:
            assert is_trace_id(outer.trace_id)
            assert outer.parent_id is None
            assert current_trace_id() == outer.trace_id
        assert current_trace_id() is None  # context restored

    def test_children_join_the_parents_trace(self):
        registry, buffer = MetricsRegistry(), TraceBuffer()
        with span("outer", registry=registry, buffer=buffer) as outer:
            with span("inner", registry=registry, buffer=buffer) as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id

    def test_propagated_trace_id_is_adopted(self):
        registry, buffer = MetricsRegistry(), TraceBuffer()
        trace = "ab" * 16
        with span(
            "worker.chunk", trace_id=trace, registry=registry, buffer=buffer
        ) as entry:
            assert entry.trace_id == trace

    def test_propagated_id_wins_over_the_ambient_trace(self):
        registry, buffer = MetricsRegistry(), TraceBuffer()
        trace = "cd" * 16
        with span("outer", registry=registry, buffer=buffer) as outer:
            with span(
                "adopted", trace_id=trace, registry=registry, buffer=buffer
            ) as inner:
                assert inner.trace_id == trace
                assert inner.trace_id != outer.trace_id

    def test_malformed_propagated_id_is_ignored(self):
        registry, buffer = MetricsRegistry(), TraceBuffer()
        with span(
            "worker.chunk",
            trace_id="not-a-trace",
            registry=registry,
            buffer=buffer,
        ) as entry:
            assert is_trace_id(entry.trace_id)
            assert entry.trace_id != "not-a-trace"

    def test_tags_are_stringified(self):
        registry, buffer = MetricsRegistry(), TraceBuffer()
        with span("op", registry=registry, buffer=buffer, n=3) as entry:
            assert entry.tags == {"n": "3"}

    def test_exception_marks_the_span_error_and_reraises(self):
        registry, buffer = MetricsRegistry(), TraceBuffer()
        with pytest.raises(ValueError, match="boom"):
            with span("bad", registry=registry, buffer=buffer):
                raise ValueError("boom")
        [entry] = buffer.recent()
        assert entry["status"] == "error"
        assert entry["error"] == "ValueError: boom"
        assert entry["duration"] >= 0
        assert current_span() is None  # context restored despite the raise

    def test_completed_spans_feed_the_duration_histogram(self):
        registry, buffer = MetricsRegistry(), TraceBuffer()
        with span("op", registry=registry, buffer=buffer):
            pass
        family = registry.snapshot()["repro_span_seconds"]
        [series] = family["series"]
        assert series["tags"] == {"name": "op", "status": "ok"}
        assert series["count"] == 1


class TestTraceBuffer:
    def test_ring_keeps_only_the_newest_spans(self):
        registry = MetricsRegistry()
        buffer = TraceBuffer(capacity=2)
        for name in ("a", "b", "c"):
            with span(name, registry=registry, buffer=buffer):
                pass
        assert [entry["name"] for entry in buffer.recent()] == ["c", "b"]
        assert buffer.completed == 3  # the total survives the ring

    def test_recent_respects_the_limit(self):
        registry = MetricsRegistry()
        buffer = TraceBuffer()
        for name in ("a", "b", "c"):
            with span(name, registry=registry, buffer=buffer):
                pass
        assert [entry["name"] for entry in buffer.recent(1)] == ["c"]

    def test_clear_drops_spans_but_not_the_total(self):
        registry = MetricsRegistry()
        buffer = TraceBuffer()
        with span("a", registry=registry, buffer=buffer):
            pass
        buffer.clear()
        assert buffer.recent() == []
        assert buffer.completed == 1
