"""Tests for histogram exemplars and the OpenMetrics render dialect."""

from repro.telemetry import (
    OPENMETRICS_CONTENT_TYPE,
    MetricsRegistry,
    TraceBuffer,
    render_prometheus,
    span,
)

TRACE = "fe" * 16


def traced_registry() -> MetricsRegistry:
    """A registry with one observation recorded under an active trace."""
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "repro_http_request_seconds", "latency", ("route",)
    )
    with span(
        "http.request", trace_id=TRACE,
        registry=MetricsRegistry(), buffer=TraceBuffer(),
    ):
        histogram.observe(0.05, route="/label")
    return registry


class TestDefaultRender:
    def test_default_page_has_no_exemplar_annotations(self):
        page = render_prometheus(traced_registry())
        assert "trace_id" not in page
        assert "# EOF" not in page

    def test_default_page_is_byte_identical_with_and_without_trace(self):
        """Recording exemplars must not perturb the classic exposition."""
        plain = MetricsRegistry()
        plain.histogram(
            "repro_http_request_seconds", "latency", ("route",)
        ).observe(0.05, route="/label")
        assert render_prometheus(traced_registry()) == render_prometheus(plain)


class TestExemplarRender:
    def test_exemplars_annotate_the_observed_bucket(self):
        page = render_prometheus(traced_registry(), exemplars=True)
        annotated = [line for line in page.splitlines() if " # {" in line]
        assert annotated, page
        assert all(f'trace_id="{TRACE}"' in line for line in annotated)
        assert all("_bucket" in line for line in annotated)

    def test_exemplar_page_ends_with_eof(self):
        page = render_prometheus(traced_registry(), exemplars=True)
        assert page.rstrip("\n").endswith("# EOF")

    def test_untraced_observations_render_without_annotations(self):
        registry = MetricsRegistry()
        registry.histogram(
            "repro_http_request_seconds", "latency", ("route",)
        ).observe(0.05, route="/label")
        page = render_prometheus(registry, exemplars=True)
        assert "trace_id" not in page
        assert page.rstrip("\n").endswith("# EOF")

    def test_openmetrics_content_type_constant(self):
        assert "openmetrics-text" in OPENMETRICS_CONTENT_TYPE
