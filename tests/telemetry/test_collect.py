"""Tests for repro.telemetry.collect: revival, trees, sampling, collector."""

from repro.telemetry import (
    MAX_BACKHAUL_SPANS,
    SamplingPolicy,
    Span,
    TraceBuffer,
    TraceCollector,
    new_span_id,
    new_trace_id,
    revive_spans,
    span,
    span_tree,
)

TRACE = "ab" * 16


def worker_span_dict(name="worker.chunk", parent_id=None, **overrides):
    entry = {
        "name": name,
        "trace_id": "cd" * 16,  # workers echo their own copy; must be overridden
        "span_id": new_span_id(),
        "parent_id": parent_id,
        "started_at": 100.0,
        "duration": 0.25,
        "status": "ok",
    }
    entry.update(overrides)
    return entry


class RecordingArchive:
    """Duck-typed put_trace sink (what the LabelStore implements)."""

    def __init__(self, fail=False):
        self.traces = []
        self.fail = fail

    def put_trace(self, **kwargs):
        if self.fail:
            raise RuntimeError("disk on fire")
        self.traces.append(kwargs)


class TestReviveSpans:
    def test_trace_id_is_forced_to_the_coordinators(self):
        revived = revive_spans([worker_span_dict()], trace_id=TRACE)
        assert [entry.trace_id for entry in revived] == [TRACE]

    def test_worker_roots_are_reparented(self):
        attempt_id = new_span_id()
        revived = revive_spans(
            [worker_span_dict()], trace_id=TRACE, parent_id=attempt_id
        )
        assert revived[0].parent_id == attempt_id

    def test_intra_worker_nesting_is_preserved(self):
        root = worker_span_dict()
        child = worker_span_dict(name="store.get", parent_id=root["span_id"])
        revived = revive_spans([root, child], trace_id=TRACE, parent_id="ef" * 8)
        assert revived[0].parent_id == "ef" * 8
        assert revived[1].parent_id == root["span_id"]

    def test_extra_tags_are_merged(self):
        revived = revive_spans(
            [worker_span_dict(tags={"backend": "vectorized"})],
            trace_id=TRACE,
            extra_tags={"worker": "127.0.0.1:8101"},
        )
        assert revived[0].tags["worker"] == "127.0.0.1:8101"
        assert revived[0].tags["backend"] == "vectorized"

    def test_malformed_entries_are_skipped_not_raised(self):
        junk = [None, 42, {}, {"name": ""}, {"name": 7}, worker_span_dict()]
        assert len(revive_spans(junk, trace_id=TRACE)) == 1

    def test_invalid_span_ids_are_reminted(self):
        revived = revive_spans(
            [worker_span_dict(span_id="not-hex!")], trace_id=TRACE
        )
        assert len(revived[0].span_id) == 16

    def test_error_status_and_message_survive(self):
        revived = revive_spans(
            [worker_span_dict(status="error", error="boom " * 100)],
            trace_id=TRACE,
        )
        assert revived[0].status == "error"
        assert len(revived[0].error) <= 200

    def test_bad_trace_id_revives_nothing(self):
        assert revive_spans([worker_span_dict()], trace_id="nope") == []

    def test_limit_caps_the_batch(self):
        entries = [worker_span_dict() for _ in range(MAX_BACKHAUL_SPANS + 10)]
        assert len(revive_spans(entries, trace_id=TRACE)) == MAX_BACKHAUL_SPANS


class TestSpanTree:
    def test_nests_children_under_parents(self):
        root = worker_span_dict(name="http.request", started_at=1.0)
        child = worker_span_dict(
            name="cluster.dispatch", parent_id=root["span_id"], started_at=2.0
        )
        grandchild = worker_span_dict(
            name="cluster.chunk", parent_id=child["span_id"], started_at=3.0
        )
        tree = span_tree([grandchild, child, root])  # order must not matter
        assert [node["name"] for node in tree] == ["http.request"]
        assert tree[0]["children"][0]["name"] == "cluster.dispatch"
        assert tree[0]["children"][0]["children"][0]["name"] == "cluster.chunk"

    def test_orphans_are_promoted_to_roots(self):
        orphan = worker_span_dict(parent_id="99" * 8)
        assert [n["name"] for n in span_tree([orphan])] == ["worker.chunk"]

    def test_siblings_sort_by_start_time(self):
        root = worker_span_dict(name="root", started_at=0.0)
        late = worker_span_dict(
            name="late", parent_id=root["span_id"], started_at=5.0
        )
        early = worker_span_dict(
            name="early", parent_id=root["span_id"], started_at=1.0
        )
        tree = span_tree([root, late, early])
        assert [n["name"] for n in tree[0]["children"]] == ["early", "late"]

    def test_duplicate_span_ids_keep_the_first(self):
        entry = worker_span_dict(name="first")
        dupe = dict(entry, name="second")
        tree = span_tree([entry, dupe])
        assert [n["name"] for n in tree] == ["first"]


class TestSamplingPolicy:
    def test_rate_one_keeps_everything(self):
        policy = SamplingPolicy(sample_rate=1)
        assert policy.decide(new_trace_id(), "ok", 0.001) == "sampled"

    def test_errors_are_always_kept(self):
        policy = SamplingPolicy(sample_rate=1000)
        assert policy.decide(new_trace_id(), "error", 0.0) == "error"

    def test_slow_traces_are_always_kept(self):
        policy = SamplingPolicy(sample_rate=1000, slow_threshold=0.5)
        assert policy.decide(new_trace_id(), "ok", 0.75) == "slow"

    def test_sampling_is_deterministic_by_trace_id(self):
        policy = SamplingPolicy(sample_rate=7, slow_threshold=10.0)
        kept = "0000000e" + "0" * 24  # 14 % 7 == 0
        dropped = "0000000f" + "0" * 24  # 15 % 7 != 0
        assert policy.decide(kept, "ok", 0.0) == "sampled"
        assert policy.decide(dropped, "ok", 0.0) is None
        # same answer every time, in every process
        assert policy.decide(kept, "ok", 0.0) == "sampled"


def closed_span(trace_id, name="root", parent_id=None, duration=0.1,
                status="ok"):
    entry = Span(
        name=name, trace_id=trace_id, span_id=new_span_id(),
        parent_id=parent_id, tags={},
    )
    entry.duration = duration
    entry.status = status
    return entry


class TestTraceCollector:
    def test_root_close_finalizes_and_archives_the_whole_trace(self):
        buffer = TraceBuffer()
        archive = RecordingArchive()
        collector = TraceCollector(archive=archive, buffer=buffer).install()
        trace = new_trace_id()
        root = closed_span(trace)
        child = closed_span(trace, name="child", parent_id=root.span_id)
        buffer.record(child)  # children close before the root
        buffer.record(root)
        assert len(archive.traces) == 1
        archived = archive.traces[0]
        assert archived["trace_id"] == trace
        assert archived["root_name"] == "root"
        assert {s["name"] for s in archived["spans"]} == {"root", "child"}
        collector.close()

    def test_collector_via_span_context_manager(self):
        buffer = TraceBuffer()
        archive = RecordingArchive()
        collector = TraceCollector(archive=archive, buffer=buffer).install()
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        with span("outer", registry=registry, buffer=buffer):
            with span("inner", registry=registry, buffer=buffer):
                pass
        assert len(archive.traces) == 1
        assert archive.traces[0]["root_name"] == "outer"
        collector.close()

    def test_error_anywhere_marks_the_trace_error(self):
        buffer = TraceBuffer()
        archive = RecordingArchive()
        collector = TraceCollector(archive=archive, buffer=buffer).install()
        trace = new_trace_id()
        root = closed_span(trace)
        bad = closed_span(
            trace, name="chunk", parent_id=root.span_id, status="error"
        )
        buffer.record(bad)
        buffer.record(root)
        assert archive.traces[0]["status"] == "error"
        assert archive.traces[0]["sampled"] == "error"
        collector.close()

    def test_duplicate_span_ids_are_dropped(self):
        buffer = TraceBuffer()
        archive = RecordingArchive()
        collector = TraceCollector(archive=archive, buffer=buffer).install()
        trace = new_trace_id()
        root = closed_span(trace)
        child = closed_span(trace, name="child", parent_id=root.span_id)
        buffer.record(child)
        buffer.record(child)  # the same span backhauled twice
        buffer.record(root)
        assert len(archive.traces[0]["spans"]) == 2
        collector.close()

    def test_pending_traces_are_bounded(self):
        buffer = TraceBuffer()
        collector = TraceCollector(buffer=buffer, max_pending=4).install()
        for _ in range(10):  # children only: the traces never finalize
            trace = new_trace_id()
            buffer.record(
                closed_span(trace, name="child", parent_id=new_span_id())
            )
        stats = collector.stats()
        assert stats["pending"] == 4
        assert stats["evicted_pending"] == 6
        collector.close()

    def test_spans_per_trace_are_bounded(self):
        buffer = TraceBuffer()
        archive = RecordingArchive()
        collector = TraceCollector(
            archive=archive, buffer=buffer, max_spans_per_trace=3
        ).install()
        trace = new_trace_id()
        root = closed_span(trace)
        for index in range(5):
            buffer.record(
                closed_span(trace, name=f"child-{index}", parent_id=root.span_id)
            )
        buffer.record(root)
        assert len(archive.traces[0]["spans"]) == 3
        assert collector.stats()["span_overflow"] > 0
        collector.close()

    def test_sampled_out_traces_never_reach_the_archive(self):
        buffer = TraceBuffer()
        archive = RecordingArchive()
        policy = SamplingPolicy(sample_rate=2, slow_threshold=10.0)
        collector = TraceCollector(
            archive=archive, policy=policy, buffer=buffer
        ).install()
        kept_trace = "00000002" + "0" * 24
        dropped_trace = "00000003" + "0" * 24
        buffer.record(closed_span(kept_trace))
        buffer.record(closed_span(dropped_trace))
        assert [t["trace_id"] for t in archive.traces] == [kept_trace]
        assert collector.stats()["sampled_out"] == 1
        collector.close()

    def test_archive_failures_are_swallowed_and_counted(self):
        buffer = TraceBuffer()
        collector = TraceCollector(
            archive=RecordingArchive(fail=True), buffer=buffer
        ).install()
        buffer.record(closed_span(new_trace_id()))  # must not raise
        assert collector.stats()["archive_errors"] == 1
        collector.close()

    def test_close_detaches_the_listener(self):
        buffer = TraceBuffer()
        archive = RecordingArchive()
        collector = TraceCollector(archive=archive, buffer=buffer).install()
        collector.close()
        buffer.record(closed_span(new_trace_id()))
        assert archive.traces == []
