"""Tests for repro.telemetry.resources: the process resource observatory."""

import gc

import pytest

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.resources import ResourceCollector


@pytest.fixture()
def collector():
    collector = ResourceCollector().install()
    yield collector
    collector.close()


class TestSnapshot:
    def test_core_fields(self, collector):
        snap = collector.snapshot()
        assert snap["uptime_seconds"] >= 0.0
        assert snap["cpu_seconds"] >= 0.0
        assert snap["cpu_seconds"] == pytest.approx(
            snap["cpu_user_seconds"] + snap["cpu_system_seconds"], abs=0.01
        )
        assert snap["threads"] >= 1
        gc_block = snap["gc"]
        assert gc_block["pauses"] >= 0
        assert gc_block["pause_seconds"] >= 0.0
        assert len(gc_block["pending"]) == 3

    def test_memory_fields_are_present_or_absent_never_zero_lies(self, collector):
        snap = collector.snapshot()
        # on Linux procfs gives both; elsewhere the keys are simply absent
        if "rss_bytes" in snap:
            assert snap["rss_bytes"] > 0
        if "peak_rss_bytes" in snap:
            assert snap["peak_rss_bytes"] > 0
        if "open_fds" in snap:
            assert snap["open_fds"] > 0

    def test_allocations_are_opt_in(self, collector):
        assert "top_allocators" not in collector.snapshot()


class TestGcAccounting:
    def test_collections_are_counted_with_pause_time(self, collector):
        before = collector.snapshot()["gc"]["pauses"]
        for _ in range(3):
            gc.collect()
        after = collector.snapshot()["gc"]
        assert after["pauses"] >= before + 3

    def test_install_close_pairing(self):
        baseline = len(gc.callbacks)
        collector = ResourceCollector()
        collector.install()
        collector.install()  # idempotent: one callback, not two
        assert len(gc.callbacks) == baseline + 1
        collector.close()
        collector.close()
        assert len(gc.callbacks) == baseline


class TestRefresh:
    def test_gauges_exported(self, collector):
        registry = MetricsRegistry()
        collector.refresh(registry)
        names = {family.name for family in registry.families()}
        for expected in (
            "repro_process_cpu_seconds",
            "repro_process_uptime_seconds",
            "repro_process_threads",
            "repro_process_gc_pauses",
            "repro_process_gc_pause_seconds",
            "repro_process_gc_collected",
        ):
            assert expected in names
        assert registry.gauge("repro_process_threads").value() >= 1.0


class TestAllocations:
    def test_tracemalloc_top_allocators(self):
        import tracemalloc

        already = tracemalloc.is_tracing()
        collector = ResourceCollector(track_allocations=True, top_allocators=3)
        collector.install()
        try:
            hoard = [bytearray(4096) for _ in range(200)]
            snap = collector.snapshot()
            assert "top_allocators" in snap
            top = snap["top_allocators"]
            assert 0 < len(top) <= 3
            assert all(
                {"file", "line", "size_bytes", "count"} <= set(entry)
                for entry in top
            )
            del hoard
        finally:
            collector.close()
        # we only stop tracemalloc if we were the ones who started it
        assert tracemalloc.is_tracing() == already
