"""Tests for repro.telemetry.slo: objectives, burn states, health."""

import pytest

from repro.telemetry import (
    ErrorRateObjective,
    LatencyObjective,
    MetricsRegistry,
    SLOEngine,
    default_objectives,
)


def http_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.histogram(
        "repro_http_request_seconds", "latency", ("method", "route")
    )
    registry.counter(
        "repro_http_requests_total", "requests", ("method", "route", "status")
    )
    return registry


def observe(registry, seconds, status="200", n=1):
    histogram = registry.histogram(
        "repro_http_request_seconds", "latency", ("method", "route")
    )
    counter = registry.counter(
        "repro_http_requests_total", "requests", ("method", "route", "status")
    )
    for _ in range(n):
        histogram.observe(seconds, method="GET", route="/label")
        counter.inc(method="GET", route="/label", status=status)


class TestLatencyObjective:
    def test_counts_observations_within_threshold(self):
        registry = http_registry()
        observe(registry, 0.05, n=9)
        observe(registry, 9.0, n=1)  # beyond every sub-2.5s bucket
        objective = LatencyObjective(
            "lat", family="repro_http_request_seconds", threshold=2.5, target=0.9
        )
        families = registry.families()
        good, total = objective.measure(families)
        assert (good, total) == (9.0, 10.0)

    def test_target_validation(self):
        with pytest.raises(ValueError, match="target"):
            LatencyObjective("lat", family="f", threshold=1.0, target=1.5)


class TestErrorRateObjective:
    def test_bad_prefix_classification(self):
        registry = http_registry()
        observe(registry, 0.01, status="200", n=8)
        observe(registry, 0.01, status="503", n=2)
        objective = ErrorRateObjective(
            "err", family="repro_http_requests_total", tag="status",
            target=0.9, bad_prefixes=("5",),
        )
        good, total = objective.measure(registry.families())
        assert (good, total) == (8.0, 10.0)

    def test_bad_values_classification(self):
        registry = MetricsRegistry()
        streams = registry.counter("repro_streams_total", "streams", ("outcome",))
        streams.inc(3, outcome="completed")
        streams.inc(1, outcome="aborted")
        objective = ErrorRateObjective(
            "streams", family="repro_streams_total", tag="outcome",
            target=0.9, bad_values=("aborted", "rejected"),
        )
        assert objective.measure(registry.families()) == (3.0, 4.0)


class TestSLOEngine:
    def engine(self, registry, target=0.9):
        objective = ErrorRateObjective(
            "http-errors", family="repro_http_requests_total", tag="status",
            target=target, bad_prefixes=("5",),
        )
        return SLOEngine(objectives=[objective], registries=lambda: [registry])

    def test_no_traffic_reports_no_data(self):
        engine = self.engine(http_registry())
        [entry] = engine.evaluate()
        assert entry["state"] == "no_data"
        assert entry["burn"] is None

    def test_healthy_traffic_is_ok(self):
        registry = http_registry()
        observe(registry, 0.01, status="200", n=100)
        [entry] = self.engine(registry).evaluate()
        assert entry["state"] == "ok"
        assert entry["burn"] == 0.0

    def test_burn_math_and_breach(self):
        registry = http_registry()
        observe(registry, 0.01, status="200", n=8)
        observe(registry, 0.01, status="500", n=2)
        # attainment 0.8 against target 0.9 -> burn (1-.8)/(1-.9) = 2.0
        [entry] = self.engine(registry).evaluate()
        assert entry["burn"] == pytest.approx(2.0)
        assert entry["state"] == "breach"

    def test_warn_between_half_and_full_burn(self):
        registry = http_registry()
        observe(registry, 0.01, status="200", n=93)
        observe(registry, 0.01, status="500", n=7)
        # attainment 0.93 against 0.9 -> burn 0.7 -> warn
        [entry] = self.engine(registry).evaluate()
        assert entry["state"] == "warn"

    def test_window_reports_burn_since_last_evaluation(self):
        registry = http_registry()
        engine = self.engine(registry)
        observe(registry, 0.01, status="500", n=10)
        engine.evaluate()  # bad history absorbed into the baseline
        observe(registry, 0.01, status="200", n=100)
        [entry] = engine.evaluate()
        assert entry["window"]["total"] == 100.0
        assert entry["window"]["burn"] == 0.0
        assert entry["window"]["state"] == "ok"
        assert entry["state"] == "warn"  # lifetime still carries the damage

    def test_health_degrades_but_is_advisory(self):
        registry = http_registry()
        observe(registry, 0.01, status="500", n=10)
        health = self.engine(registry).health()
        assert health["status"] == "degraded"
        assert health["worst_state"] == "breach"
        assert len(health["objectives"]) == 1

    def test_health_ok_with_no_data(self):
        health = self.engine(http_registry()).health()
        assert health["status"] == "ok"
        assert health["worst_state"] == "ok"

    def test_duplicate_registries_counted_once(self):
        registry = http_registry()
        observe(registry, 0.01, status="200", n=10)
        objective = ErrorRateObjective(
            "e", family="repro_http_requests_total", tag="status",
            target=0.9, bad_prefixes=("5",),
        )
        engine = SLOEngine(
            objectives=[objective], registries=[registry, registry]
        )
        [entry] = engine.evaluate()
        assert entry["total"] == 10.0


class TestDefaults:
    def test_default_objectives_cover_the_served_families(self):
        names = {o.name for o in default_objectives()}
        assert names == {"http-latency", "http-errors", "stream-errors"}

    def test_default_declarations_are_json_safe(self):
        import json

        for objective in default_objectives():
            json.dumps(objective.declaration())
