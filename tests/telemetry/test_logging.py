"""Tests for repro.telemetry.logging: JSON records carrying trace ids."""

import io
import json
import logging

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    JSONLogFormatter,
    MetricsRegistry,
    TraceBuffer,
    configure_logging,
    get_logger,
    span,
)


@pytest.fixture()
def restored_logging():
    """Snapshot the ``repro`` logger and restore it after the test."""
    logger = logging.getLogger("repro")
    handlers = list(logger.handlers)
    level = logger.level
    propagate = logger.propagate
    yield logger
    logger.handlers[:] = handlers
    logger.setLevel(level)
    logger.propagate = propagate


def make_record(message, **attrs):
    record = logging.LogRecord(
        "repro.test", logging.INFO, __file__, 1, message, None, None
    )
    for key, value in attrs.items():
        setattr(record, key, value)
    return record


class TestGetLogger:
    def test_names_are_children_of_the_repro_tree(self):
        assert get_logger("cluster.worker").name == "repro.cluster.worker"
        assert get_logger("repro.app").name == "repro.app"
        assert get_logger("repro").name == "repro"

    def test_quiet_by_default(self):
        # a NullHandler keeps logging.lastResort from printing stray
        # warnings when nobody has called configure_logging
        handlers = logging.getLogger("repro").handlers
        assert any(
            isinstance(handler, logging.NullHandler) for handler in handlers
        )


class TestJSONLogFormatter:
    def test_renders_one_json_object(self):
        entry = json.loads(JSONLogFormatter().format(make_record("hello %s")))
        assert entry["message"] == "hello %s"
        assert entry["level"] == "INFO"
        assert entry["logger"] == "repro.test"
        assert "trace_id" not in entry  # no ambient span, no noise

    def test_ambient_trace_and_span_ids_are_injected(self):
        formatter = JSONLogFormatter()
        with span(
            "op", registry=MetricsRegistry(), buffer=TraceBuffer()
        ) as active:
            entry = json.loads(formatter.format(make_record("inside")))
        assert entry["trace_id"] == active.trace_id
        assert entry["span_id"] == active.span_id

    def test_explicit_ids_win_over_the_ambient_span(self):
        # cross-thread/cross-process call sites pass extra={"trace_id": ...}
        formatter = JSONLogFormatter()
        with span("op", registry=MetricsRegistry(), buffer=TraceBuffer()):
            entry = json.loads(
                formatter.format(make_record("explicit", trace_id="ff" * 16))
            )
        assert entry["trace_id"] == "ff" * 16

    def test_extra_fields_pass_through(self):
        entry = json.loads(
            JSONLogFormatter().format(make_record("payload", worker="w1"))
        )
        assert entry["worker"] == "w1"

    def test_exceptions_are_rendered(self):
        try:
            raise RuntimeError("kaput")
        except RuntimeError:
            import sys

            record = make_record("failed")
            record.exc_info = sys.exc_info()
        entry = json.loads(JSONLogFormatter().format(record))
        assert "RuntimeError: kaput" in entry["exception"]


class TestConfigureLogging:
    def test_writes_json_lines_at_the_requested_level(self, restored_logging):
        stream = io.StringIO()
        configure_logging("info", stream)
        logger = get_logger("test.sink")
        logger.debug("too quiet")
        logger.info("heard", extra={"worker": "w1"})
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["message"] == "heard"
        assert entry["worker"] == "w1"

    def test_reconfiguring_does_not_stack_handlers(self, restored_logging):
        configure_logging("info", io.StringIO())
        configure_logging("debug", io.StringIO())
        ours = [
            handler
            for handler in logging.getLogger("repro").handlers
            if getattr(handler, "_repro_telemetry", False)
        ]
        assert len(ours) == 1
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_unknown_level_is_rejected(self, restored_logging):
        with pytest.raises(TelemetryError, match="unknown log level"):
            configure_logging("loud", io.StringIO())
