"""Tests for repro.telemetry.exporters: Prometheus exposition text.

The rendering is validated by *parsing it back*: every sample line must
split into a metric name, a well-formed label set, and a float value,
and histogram bucket series must be cumulative and monotone — the
properties a real Prometheus scraper depends on.
"""

import re

from repro.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    render_prometheus,
)

_SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_samples(text):
    """``(name, labels, value)`` for every non-comment line."""
    samples = []
    for line in text.strip().splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, _, value = line.rpartition(" ")
        match = _SAMPLE.match(name_part)
        assert match, f"unparseable sample line: {line!r}"
        labels = dict(_LABEL.findall(match.group(2) or ""))
        samples.append((match.group(1), labels, float(value)))
    return samples


class TestCountersAndGauges:
    def test_counter_renders_help_type_and_series(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "jobs_total", "jobs executed", tag_names=("kind",)
        )
        counter.inc(kind="build")
        counter.inc(2, kind="probe")
        text = render_prometheus(registry)
        assert "# HELP jobs_total jobs executed\n" in text
        assert "# TYPE jobs_total counter\n" in text
        assert 'jobs_total{kind="build"} 1\n' in text
        assert 'jobs_total{kind="probe"} 2\n' in text

    def test_gauge_renders_its_current_value(self):
        registry = MetricsRegistry()
        registry.gauge("inflight", "in-flight requests").set(3)
        text = render_prometheus(registry)
        assert "# TYPE inflight gauge\n" in text
        assert "inflight 3\n" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", "odd", tag_names=("path",)).inc(
            path='a"b\\c\nd'
        )
        text = render_prometheus(registry)
        assert 'odd_total{path="a\\"b\\\\c\\nd"} 1\n' in text
        # and the escape round-trips through the parser
        [(_, labels, _)] = parse_samples(text)
        assert labels["path"] == 'a\\"b\\\\c\\nd'


class TestHistograms:
    def test_buckets_are_cumulative_and_inf_equals_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_seconds", "latency", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        samples = parse_samples(render_prometheus(registry))
        buckets = {
            labels["le"]: value
            for name, labels, value in samples
            if name == "lat_seconds_bucket"
        }
        assert buckets == {"0.1": 1, "1": 2, "+Inf": 3}
        by_name = {
            name: value for name, labels, value in samples if not labels
        }
        assert by_name["lat_seconds_count"] == 3
        assert abs(by_name["lat_seconds_sum"] - 5.55) < 1e-9

    def test_bucket_counts_are_monotone(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_seconds", "latency", buckets=(0.01, 0.1, 1.0, 10.0)
        )
        for value in (0.005, 0.05, 0.05, 0.5, 2.0, 20.0):
            histogram.observe(value)
        counts = [
            value
            for name, labels, value in parse_samples(
                render_prometheus(registry)
            )
            if name == "lat_seconds_bucket"
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 6  # +Inf is last and equals the observation count


class TestMultiRegistry:
    def test_duplicate_registry_objects_render_once(self):
        registry = MetricsRegistry()
        registry.counter("once_total", "once").inc()
        text = render_prometheus(registry, registry)
        assert text.count("once_total 1") == 1

    def test_family_series_union_across_registries(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("hits_total", "hits", tag_names=("tier",)).inc(tier="l1")
        second.counter("hits_total", "hits", tag_names=("tier",)).inc(
            tier="l2"
        )
        text = render_prometheus(first, second)
        assert text.count("# TYPE hits_total counter") == 1
        assert 'hits_total{tier="l1"} 1\n' in text
        assert 'hits_total{tier="l2"} 1\n' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


def test_content_type_is_the_prometheus_exposition_one():
    assert PROMETHEUS_CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"
