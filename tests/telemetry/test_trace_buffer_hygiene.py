"""Tests for TraceBuffer hygiene: tag caps, drop counters, listeners."""

import pytest

from repro.telemetry import (
    MAX_SPAN_TAGS,
    MAX_TAG_VALUE_CHARS,
    MetricsRegistry,
    TraceBuffer,
    clamp_tags,
    span,
)


class TestClampTags:
    def test_passthrough_under_the_caps(self):
        assert clamp_tags({"worker": "w1", "n": 3}) == {"worker": "w1", "n": "3"}

    def test_tag_count_is_capped_keeping_the_first(self):
        tags = {f"t{i:03d}": i for i in range(MAX_SPAN_TAGS + 10)}
        clamped = clamp_tags(tags)
        assert len(clamped) == MAX_SPAN_TAGS
        assert list(clamped) == [f"t{i:03d}" for i in range(MAX_SPAN_TAGS)]

    def test_long_values_are_truncated_with_a_marker(self):
        clamped = clamp_tags({"query": "x" * 1000})
        assert len(clamped["query"]) == MAX_TAG_VALUE_CHARS
        assert clamped["query"].endswith("…")

    def test_values_are_stringified(self):
        assert clamp_tags({"ok": True, "ratio": 0.5}) == {
            "ok": "True", "ratio": "0.5",
        }


class TestSpanTagBudget:
    def test_span_applies_the_budget_at_open_time(self):
        buffer = TraceBuffer()
        registry = MetricsRegistry()
        tags = {f"t{i:03d}": "v" for i in range(MAX_SPAN_TAGS + 5)}
        with span("op", registry=registry, buffer=buffer, **tags):
            pass
        [entry] = buffer.recent()
        assert len(entry["tags"]) == MAX_SPAN_TAGS


class TestRingCounters:
    def test_dropped_spans_counts_ring_overflow(self):
        buffer = TraceBuffer(capacity=2)
        registry = MetricsRegistry()
        for index in range(5):
            with span(f"op-{index}", registry=registry, buffer=buffer):
                pass
        assert buffer.dropped_spans == 3
        assert buffer.completed == 5
        assert [entry["name"] for entry in buffer.recent()] == ["op-4", "op-3"]

    def test_snapshot_shape(self):
        buffer = TraceBuffer(capacity=8)
        registry = MetricsRegistry()
        with span("op", registry=registry, buffer=buffer):
            pass
        assert buffer.snapshot() == {
            "capacity": 8,
            "buffered": 1,
            "completed": 1,
            "dropped_spans": 0,
        }

    def test_clear_keeps_lifetime_counters(self):
        buffer = TraceBuffer(capacity=4)
        registry = MetricsRegistry()
        with span("op", registry=registry, buffer=buffer):
            pass
        buffer.clear()
        assert buffer.recent() == []
        assert buffer.completed == 1


class TestListeners:
    def test_listeners_see_every_recorded_span(self):
        buffer = TraceBuffer()
        seen = []
        buffer.add_listener(seen.append)
        registry = MetricsRegistry()
        with span("op", registry=registry, buffer=buffer):
            pass
        assert [entry.name for entry in seen] == ["op"]

    def test_removed_listener_stops_seeing_spans(self):
        buffer = TraceBuffer()
        seen = []
        buffer.add_listener(seen.append)
        buffer.remove_listener(seen.append)
        registry = MetricsRegistry()
        with span("op", registry=registry, buffer=buffer):
            pass
        assert seen == []

    def test_broken_listener_does_not_break_recording(self):
        buffer = TraceBuffer()

        def explode(entry):
            raise RuntimeError("listener bug")

        buffer.add_listener(explode)
        registry = MetricsRegistry()
        with span("op", registry=registry, buffer=buffer):
            pass  # must not raise
        assert buffer.completed == 1

    def test_error_spans_carry_status_and_message(self):
        buffer = TraceBuffer()
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            with span("op", registry=registry, buffer=buffer):
                raise ValueError("bad input")
        [entry] = buffer.recent()
        assert entry["status"] == "error"
        assert "ValueError" in entry["error"]
