"""Tests for repro.telemetry.registry: metric families and merged_stats."""

import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    MetricsRegistry,
    get_default_registry,
    merged_stats,
    set_default_registry,
)


class TestCounter:
    def test_increment_and_read(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_series_are_keyed_by_tags(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits", tag_names=("tier",))
        counter.inc(tier="l1")
        counter.inc(tier="l1")
        counter.inc(tier="l2")
        assert counter.value(tier="l1") == 2
        assert counter.value(tier="l2") == 1

    def test_undeclared_tag_is_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits", tag_names=("tier",))
        with pytest.raises(TelemetryError):
            counter.inc(level="l1")

    def test_missing_tag_is_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits", tag_names=("tier",))
        with pytest.raises(TelemetryError):
            counter.inc()

    def test_negative_increment_is_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits")
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_concurrent_increments_do_not_lose_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("spins_total", "spins", tag_names=("who",))
        rounds, workers = 2000, 8

        def spin(who: str) -> None:
            for _ in range(rounds):
                counter.inc(who=who)

        threads = [
            threading.Thread(target=spin, args=(f"t{i % 2}",))
            for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(who="t0") == rounds * workers / 2
        assert counter.value(who="t1") == rounds * workers / 2


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight", "inflight")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4


class TestHistogram:
    def test_value_on_bucket_edge_lands_in_that_bucket(self):
        # Prometheus `le` is <=: an observation exactly on a bound
        # belongs to that bound's bucket
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", "lat", buckets=(0.1, 1.0, 10.0))
        histogram.observe(0.1)
        snapshot = histogram.snapshot_series()
        assert snapshot["counts"] == [1, 0, 0, 0]

    def test_observation_past_every_bound_is_overflow(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", "lat", buckets=(0.1, 1.0))
        histogram.observe(5.0)
        snapshot = histogram.snapshot_series()
        assert snapshot["counts"] == [0, 0, 1]
        assert snapshot["sum"] == 5.0
        assert snapshot["count"] == 1

    def test_interior_values_bucket_correctly(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", "lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 2.0):
            histogram.observe(value)
        snapshot = histogram.snapshot_series()
        assert snapshot["counts"] == [1, 2, 1, 0]
        assert snapshot["count"] == 4

    def test_unsorted_buckets_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError):
            registry.histogram("lat", "lat", buckets=(1.0, 0.1))


class TestRegistry:
    def test_get_or_register_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "a")
        second = registry.counter("a_total", "a")
        assert first is second

    def test_kind_mismatch_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a")
        with pytest.raises(TelemetryError):
            registry.gauge("a_total", "a")

    def test_tag_mismatch_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a", tag_names=("x",))
        with pytest.raises(TelemetryError):
            registry.counter("a_total", "a", tag_names=("y",))

    def test_snapshot_is_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c_total", "c", tag_names=("t",)).inc(t="x")
        registry.histogram("h", "h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["c_total"] == {
            "kind": "counter",
            "series": [{"tags": {"t": "x"}, "value": 1.0}],
        }
        assert snapshot["h"] == {
            "kind": "histogram",
            "series": [{"tags": {}, "count": 1, "sum": 0.5}],
        }

    def test_default_registry_is_swappable(self):
        original = get_default_registry()
        replacement = MetricsRegistry()
        try:
            set_default_registry(replacement)
            assert get_default_registry() is replacement
        finally:
            set_default_registry(original)


class TestMergedStats:
    def test_merges_base_and_sections(self):
        merged = merged_stats(
            {"a": 1},
            section={"b": 2},
            callable_section=lambda: {"c": 3},
        )
        assert merged == {
            "a": 1, "section": {"b": 2}, "callable_section": {"c": 3}
        }

    def test_callable_base(self):
        assert merged_stats(lambda: {"a": 1}) == {"a": 1}

    def test_none_sections_are_skipped(self):
        assert merged_stats({"a": 1}, gone=None, also_gone=lambda: None) == {
            "a": 1
        }

    def test_non_mapping_sections_pass_through(self):
        merged = merged_stats({}, workers=[{"address": "x"}])
        assert merged == {"workers": [{"address": "x"}]}
