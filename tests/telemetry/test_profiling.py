"""Tests for repro.telemetry.profiling: the sampling wall-clock profiler.

The contract under test: start/stop is idempotent and the sampler
thread only exists while someone is listening; the folded-stack table
stays bounded no matter how hot the loop; samples land under the
active span (innermost wins) so ``trace show`` can name the code a
slow span was running; and turning the profiler on never changes a
label's bytes.
"""

import threading
import time

import pytest

from repro.telemetry import span
from repro.telemetry.profiling import (
    _OVERFLOW_KEY,
    _ProfileSink,
    ProfileReport,
    SamplingProfiler,
    active_span_name,
    env_profile_enabled,
    note_span_enter,
    note_span_exit,
)


def spin(stop: threading.Event) -> None:
    """A recognizable busy loop for the sampler to catch."""
    while not stop.is_set():
        sum(i * i for i in range(2_000))


@pytest.fixture()
def busy_thread():
    stop = threading.Event()
    thread = threading.Thread(target=spin, args=(stop,), daemon=True)
    thread.start()
    yield thread
    stop.set()
    thread.join(timeout=5)


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestWindow:
    def test_window_captures_a_busy_thread(self, busy_thread):
        profiler = SamplingProfiler()
        report = profiler.window(0.3, hz=200)
        assert report.samples > 0
        assert any("spin" in stack for stack in report.stacks)

    def test_window_excludes_its_own_calling_thread(self, busy_thread):
        # the caller blocks inside window(); its wait must not pollute
        # the capture it asked for
        report = SamplingProfiler().window(0.2, hz=200)
        assert not any(":window" in stack for stack in report.stacks)

    def test_window_clamps_pathological_parameters(self, busy_thread):
        report = SamplingProfiler().window(-1.0, hz=1e9)
        assert 0.0 < report.duration <= 1.0
        assert report.hz <= 500.0

    def test_sampler_thread_exits_when_idle(self, busy_thread):
        profiler = SamplingProfiler()
        profiler.window(0.1, hz=100)
        # no sinks left: the daemon thread must wind itself down
        assert wait_until(lambda: not profiler.running)
        assert profiler.stats()["sinks"] == 0


class TestContinuous:
    def test_start_stop_idempotency(self):
        profiler = SamplingProfiler()
        assert profiler.start_continuous(hz=50) is True
        assert profiler.start_continuous(hz=50) is False  # already on
        assert profiler.continuous
        report = profiler.stop_continuous()
        assert report is not None
        assert profiler.stop_continuous() is None  # already off
        assert wait_until(lambda: not profiler.running)

    def test_rotate_drains_without_stopping(self, busy_thread):
        profiler = SamplingProfiler()
        profiler.start_continuous(hz=100)
        try:
            assert wait_until(
                lambda: (profiler.continuous_report() or ProfileReport()).samples > 0
            )
            first = profiler.rotate_continuous()
            assert first is not None and first.samples > 0
            # still continuous: a fresh sink keeps accumulating
            assert profiler.continuous
            assert wait_until(
                lambda: (profiler.continuous_report() or ProfileReport()).samples > 0
            )
        finally:
            profiler.stop_continuous()

    def test_rotate_without_continuous_returns_none(self):
        assert SamplingProfiler().rotate_continuous() is None


class TestBoundedTable:
    def test_sink_folds_excess_stacks_into_overflow(self):
        sink = _ProfileSink(hz=10.0, max_stacks=4)
        for index in range(100):
            sink.add(f"mod.py:f{index}", f"mod.py:f{index}", None)
        # 4 distinct stacks + the overflow bucket; nothing unbounded
        assert len(sink.stacks) == 5
        assert sink.stacks[_OVERFLOW_KEY] == 96
        assert sink.stack_overflow == 96
        assert sink.samples == 100

    def test_hot_loop_report_stays_bounded(self, busy_thread):
        profiler = SamplingProfiler(max_stacks=8)
        report = profiler.window(0.3, hz=300)
        assert report.samples > 0
        assert len(report.stacks) <= 9  # 8 + overflow


class TestSpanAttribution:
    def test_nested_spans_attribute_to_the_innermost(self):
        stop = threading.Event()
        ready = threading.Event()

        def traced():
            with span("outer.zone"):
                with span("inner.zone"):
                    ready.set()
                    spin(stop)

        thread = threading.Thread(target=traced, daemon=True)
        thread.start()
        try:
            assert ready.wait(timeout=5)
            report = SamplingProfiler().window(0.3, hz=200)
        finally:
            stop.set()
            thread.join(timeout=5)
        assert report.span_samples.get("inner.zone", 0) > 0
        assert report.span_frames["inner.zone"]
        # the outer span was never the *active* one while sampling
        assert report.span_samples.get("outer.zone", 0) == 0
        # and the per-span view surfaces the hot frame
        top = report.span_top_frames(3)["inner.zone"]
        assert any("spin" in frame or "genexpr" in frame for frame, _ in top)

    def test_note_enter_exit_balance(self):
        tid = threading.get_ident()
        assert active_span_name(tid) is None
        note_span_enter("a")
        note_span_enter("b")
        assert active_span_name(tid) == "b"
        note_span_exit()
        assert active_span_name(tid) == "a"
        note_span_exit()
        assert active_span_name(tid) is None
        note_span_exit()  # over-exit must not raise
        assert active_span_name(tid) is None

    def test_tracing_span_drives_the_hooks(self):
        tid = threading.get_ident()
        with span("zone.one"):
            assert active_span_name(tid) == "zone.one"
        assert active_span_name(tid) is None


class TestReport:
    def test_round_trip_through_dict(self, busy_thread):
        report = SamplingProfiler().window(0.2, hz=200)
        revived = ProfileReport.from_dict(report.as_dict())
        assert revived.stacks == report.stacks
        assert revived.samples == report.samples
        assert revived.span_samples == report.span_samples
        assert revived.span_frames == report.span_frames
        assert revived.hz == report.hz

    def test_from_dict_survives_garbage(self):
        assert ProfileReport.from_dict(None).is_empty
        assert ProfileReport.from_dict({"stacks": "nope", "spans": 7}).is_empty

    def test_collapsed_format(self):
        report = ProfileReport(
            samples=3, stacks={"a.py:f;a.py:g": 2, "a.py:f": 1}
        )
        lines = report.to_collapsed().strip().splitlines()
        assert lines[0] == "a.py:f;a.py:g 2"
        assert lines[1] == "a.py:f 1"

    def test_render_empty_and_busy(self, busy_thread):
        assert "no samples" in ProfileReport().render()
        report = SamplingProfiler().window(0.2, hz=200)
        text = report.render()
        assert "top frames" in text
        assert str(report.samples) in text


class TestEnvFlag:
    def test_env_profile_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert env_profile_enabled() is False
        assert env_profile_enabled(default=True) is True
        for value in ("1", "true", "YES", "On"):
            monkeypatch.setenv("REPRO_PROFILE", value)
            assert env_profile_enabled() is True
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert env_profile_enabled() is False


class TestLabelNeutrality:
    def test_labels_are_byte_identical_with_profiling_on(self):
        from repro.app.session import DemoSession
        from repro.label.render_json import render_json

        def build() -> str:
            session = DemoSession()
            session.load_builtin("cs-departments")
            session.set_monte_carlo(20)
            session.design_scoring(
                weights={"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
                sensitive_attribute="DeptSizeBin",
                id_column="DeptName",
            )
            return render_json(session.generate_label().label)

        baseline = build()
        profiler = SamplingProfiler()
        profiler.start_continuous(hz=200)
        try:
            profiled = build()
        finally:
            profiler.stop_continuous()
        assert profiled == baseline
