"""The server's observability face: trace routes, /healthz, exemplars.

Covers satellite 1 (malformed ``X-Trace-Id`` handling), the ``/traces``
archive routes against a store-backed server, the always-200
``/healthz`` SLO payload, the exemplars flag's dialect switch, and the
CLI's pure waterfall/listing/stats renderers.
"""

import json
import re
import time
import urllib.error
import urllib.request

import pytest

from repro.app.cli import (
    _format_slo_summary,
    _format_stats,
    _format_trace_listing,
    _format_waterfall,
)
from repro.app.server import make_server
from repro.telemetry import (
    OPENMETRICS_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    is_trace_id,
    new_trace_id,
)

DESIGN = {
    "weights": {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
    "sensitive": ["DeptSizeBin"],
    "id_column": "DeptName",
    "monte_carlo_trials": 5,
    "monte_carlo_epsilons": [0.1],
}


def fetch(handle, path, headers=None):
    request = urllib.request.Request(handle.url + path, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, dict(response.headers), response.read()


def get_json(handle, path, headers=None):
    status, _, body = fetch(handle, path, headers)
    return status, json.loads(body)


def run_job(handle, design=DESIGN):
    request = urllib.request.Request(
        handle.url + "/jobs",
        data=json.dumps(
            {"jobs": [{"dataset": "cs-departments", "design": design}]}
        ).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        reply = json.loads(response.read())
    deadline = time.time() + 30
    while time.time() < deadline:
        _, status = get_json(handle, f"/jobs/{reply['batch_id']}")
        if status["done"]:
            return status["jobs"][0]
        time.sleep(0.05)
    raise AssertionError("batch did not finish in time")


def counter_value(handle, family):
    _, _, body = fetch(handle, "/metrics")
    for line in body.decode("utf-8").splitlines():
        if line.startswith(family + " ") or line.startswith(family + "{"):
            return float(line.rpartition(" ")[2])
    return 0.0


class TestBadTraceIdHeader:
    """Satellite 1: junk X-Trace-Id values are dropped, counted, replaced."""

    JUNK = [
        "not-a-trace",
        "1234",                      # too short
        "zz" * 16,                   # right length, not hex
        "ab" * 16 + "cd",            # too long
        "<script>alert(1)</script>",
        "ab" * 15 + "a_",
    ]

    def test_junk_header_is_counted_and_replaced(self):
        with make_server(metrics_registry=MetricsRegistry()) as handle:
            for junk in self.JUNK:
                _, headers, _ = fetch(
                    handle, "/health", headers={"X-Trace-Id": junk}
                )
                minted = headers.get("X-Trace-Id", "")
                assert is_trace_id(minted), minted
                assert minted != junk

            def read():
                return counter_value(handle, "repro_http_bad_trace_id_total")

            deadline = time.monotonic() + 5
            while read() < len(self.JUNK) and time.monotonic() < deadline:
                time.sleep(0.02)
            assert read() == len(self.JUNK)

    def test_valid_header_still_adopted_and_not_counted(self):
        with make_server(metrics_registry=MetricsRegistry()) as handle:
            trace = new_trace_id()
            _, headers, _ = fetch(
                handle, "/health", headers={"X-Trace-Id": trace}
            )
            assert headers["X-Trace-Id"] == trace
            assert counter_value(handle, "repro_http_bad_trace_id_total") == 0.0

    def test_absent_header_mints_a_fresh_id(self):
        with make_server(metrics_registry=MetricsRegistry()) as handle:
            _, headers, _ = fetch(handle, "/health")
            assert is_trace_id(headers.get("X-Trace-Id", ""))


class TestHealthz:
    def test_healthz_is_200_with_slo_block(self):
        with make_server(metrics_registry=MetricsRegistry()) as handle:
            status, body = get_json(handle, "/healthz")
            assert status == 200
            assert body["status"] in ("ok", "degraded")
            assert "sessions" in body
            slo = body["slo"]
            assert slo["status"] in ("ok", "degraded")
            names = {o["name"] for o in slo["objectives"]}
            assert names == {"http-latency", "http-errors", "stream-errors"}

    def test_healthz_stays_200_while_degraded(self):
        with make_server(metrics_registry=MetricsRegistry()) as handle:
            # mint guaranteed 5xx traffic: unknown routes are 404 (fine),
            # so poison the error-rate family directly via its registry
            for _ in range(5):
                with pytest.raises(urllib.error.HTTPError):
                    fetch(handle, "/jobs/not-a-batch")
            status, body = get_json(handle, "/healthz")
            assert status == 200  # degraded or not, never an error code


class TestTraceRoutes:
    def test_traces_require_a_store(self):
        with make_server(metrics_registry=MetricsRegistry()) as handle:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(handle, "/traces")
            assert excinfo.value.code == 400

    def test_archived_request_trace_is_listed_and_browsable(self, tmp_path):
        path = str(tmp_path / "labels.db")
        with make_server(
            store_path=path, metrics_registry=MetricsRegistry()
        ) as handle:
            run_job(handle)
            deadline = time.time() + 10
            listed = []
            while time.time() < deadline:
                _, listing = get_json(handle, "/traces")
                listed = listing["traces"]
                if listed:
                    break
                time.sleep(0.05)
            assert listed, "no trace was archived after a served request"
            newest = listed[0]
            assert is_trace_id(newest["trace_id"])
            assert newest["span_count"] >= 1

            _, detail = get_json(handle, f"/traces/{newest['trace_id']}")
            assert detail["trace_id"] == newest["trace_id"]
            assert len(detail["spans"]) == newest["span_count"]
            assert detail["tree"], "span tree is empty"
            roots = [node["name"] for node in detail["tree"]]
            assert any(name == "http.request" for name in roots)

            # prefix lookup and a clean 404 for the unknown
            _, by_prefix = get_json(
                handle, f"/traces/{newest['trace_id'][:12]}"
            )
            assert by_prefix["trace_id"] == newest["trace_id"]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(handle, "/traces/feedfacefeedface")
            assert excinfo.value.code == 404

    def test_trace_archive_survives_server_restart(self, tmp_path):
        path = str(tmp_path / "labels.db")
        with make_server(
            store_path=path, metrics_registry=MetricsRegistry()
        ) as handle:
            run_job(handle)
            deadline = time.time() + 10
            traces = []
            while time.time() < deadline:
                _, listing = get_json(handle, "/traces")
                traces = listing["traces"]
                if traces:
                    break
                time.sleep(0.05)
            assert traces
            trace_id = traces[0]["trace_id"]
            _, before = get_json(handle, f"/traces/{trace_id}")
        with make_server(
            store_path=path, metrics_registry=MetricsRegistry()
        ) as restarted:
            _, after = get_json(restarted, f"/traces/{trace_id}")
            assert after["spans"] == before["spans"]


class TestExemplarsFlag:
    def test_default_scrape_is_classic_prometheus(self):
        with make_server(metrics_registry=MetricsRegistry()) as handle:
            fetch(handle, "/health")
            _, headers, body = fetch(handle, "/metrics")
            text = body.decode("utf-8")
            assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            assert "# EOF" not in text
            assert 'trace_id="' not in text

    def test_query_flag_switches_to_openmetrics(self):
        with make_server(metrics_registry=MetricsRegistry()) as handle:
            fetch(handle, "/health")  # a traced request seeds an exemplar
            _, headers, body = fetch(handle, "/metrics?exemplars=1")
            text = body.decode("utf-8")
            assert headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
            assert text.rstrip("\n").endswith("# EOF")
            assert re.search(r'# \{trace_id="[0-9a-f]{32}"\}', text)

    def test_server_flag_makes_openmetrics_the_default(self):
        with make_server(
            metrics_registry=MetricsRegistry(), metrics_exemplars=True
        ) as handle:
            _, headers, body = fetch(handle, "/metrics")
            assert headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
            assert body.decode("utf-8").rstrip("\n").endswith("# EOF")


WATERFALL_TRACE = {
    "trace_id": "ab" * 16,
    "root_name": "http.request",
    "status": "ok",
    "started_at": 100.0,
    "duration": 1.0,
    "span_count": 4,
    "sampled": "sampled",
}

WATERFALL_SPANS = [
    {
        "name": "http.request", "trace_id": "ab" * 16, "span_id": "01" * 8,
        "parent_id": None, "started_at": 100.0, "duration": 1.0,
        "status": "ok",
    },
    {
        "name": "cluster.chunk", "trace_id": "ab" * 16, "span_id": "02" * 8,
        "parent_id": "01" * 8, "started_at": 100.1, "duration": 0.2,
        "status": "error",
        "tags": {"worker": "127.0.0.1:9001", "outcome": "failed",
                 "failure_class": "dead_at_dispatch"},
    },
    {
        "name": "cluster.chunk", "trace_id": "ab" * 16, "span_id": "03" * 8,
        "parent_id": "01" * 8, "started_at": 100.4, "duration": 0.5,
        "status": "ok", "tags": {"worker": "127.0.0.1:9002", "outcome": "ok"},
    },
    {
        "name": "worker.chunk", "trace_id": "ab" * 16, "span_id": "04" * 8,
        "parent_id": "03" * 8, "started_at": 100.5, "duration": 0.4,
        "status": "ok", "tags": {"worker": "127.0.0.1:9002"},
    },
]


class TestWaterfallRendering:
    def render(self):
        from repro.telemetry import span_tree

        return _format_waterfall(
            WATERFALL_TRACE, WATERFALL_SPANS, span_tree(WATERFALL_SPANS)
        )

    def test_every_span_prints_a_row(self):
        text = self.render()
        assert text.count("http.request") >= 1
        assert text.count("cluster.chunk") == 2
        assert text.count("worker.chunk") == 1

    def test_failure_class_and_worker_are_visible(self):
        text = self.render()
        assert "dead_at_dispatch" in text
        assert "127.0.0.1:9001" in text
        assert "127.0.0.1:9002" in text

    def test_children_indent_under_parents(self):
        lines = self.render().splitlines()
        [worker_line] = [l for l in lines if "worker.chunk" in l]
        [root_line] = [l for l in lines if "http.request" in l and "|" in l]
        root_indent = root_line.index("http.request")
        worker_indent = worker_line.index("worker.chunk")
        assert worker_indent > root_indent

    def test_timeline_bars_are_proportional(self):
        lines = self.render().splitlines()
        [root_line] = [l for l in lines if "http.request" in l and "#" in l]
        [worker_line] = [l for l in lines if "worker.chunk" in l]
        assert root_line.count("#") > worker_line.count("#")


class TestListingAndStatsRendering:
    def test_trace_listing_renders_rows(self):
        now = time.time()
        text = _format_trace_listing("labels.db", [
            {
                "trace_id": "ab" * 16, "root_name": "http.request",
                "status": "ok", "span_count": 4, "duration": 0.25,
                "created_at": now - 30, "sampled": "slow",
            },
        ])
        assert "1 trace(s)" in text
        assert ("ab" * 16)[:16] in text
        assert "slow" in text

    def test_empty_listing(self):
        assert "empty" in _format_trace_listing("labels.db", [])

    def test_stats_renders_new_telemetry_families(self):
        text = _format_stats({
            "service": {"requests": 3, "builds": 1},
            "executor": {
                "jobs_submitted": 1, "batches_submitted": 1,
                "trial_backend_effective": "vectorized",
                "trial_cluster": {
                    "workers_alive": 1, "workers_configured": 2,
                    "workers": [
                        {"breaker": {"state": "closed"}},
                        {"breaker": {"state": "open"}},
                    ],
                },
            },
            "telemetry": {
                "metrics": {
                    "repro_streams_active": {"series": [{"value": 2}]},
                    "repro_streams_total": {"series": [
                        {"tags": {"outcome": "completed"}, "value": 5},
                        {"tags": {"outcome": "aborted"}, "value": 1},
                    ]},
                    "repro_registry_workers": {"series": [{"value": 2}]},
                },
                "trace_buffer": {
                    "capacity": 256, "buffered": 10,
                    "completed": 42, "dropped_spans": 3,
                },
                "trace_collector": {
                    "archived": 7, "sampled_out": 2, "pending": 1,
                },
                "recent_traces": [],
            },
            "slo": [
                {"name": "http-errors", "state": "ok", "burn": 0.0},
            ],
        })
        assert "breakers: 1 closed, 1 open" in text
        assert "streams:   2 active" in text
        assert "5 completed" in text and "1 aborted" in text
        assert "registry:  2 live worker lease(s)" in text
        assert "buffer 10/256" in text and "3 span(s) dropped" in text
        assert "7 trace(s) archived" in text
        assert "slo:       http-errors ok (burn 0.00)" in text

    def test_slo_summary_handles_missing_burn(self):
        assert _format_slo_summary(
            [{"name": "x", "state": "no_data", "burn": None}]
        ) == "x no_data (burn -)"
