"""Tests for the ``ranking-facts store`` subcommands."""

import json

import pytest

from repro.app.cli import main
from repro.datasets import cs_departments
from repro.engine.jobs import LabelDesign
from repro.engine.service import LabelService

DESIGN = LabelDesign.create(
    weights={"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
    sensitive="DeptSizeBin",
    id_column="DeptName",
)

SHIFTED = DESIGN.with_updates(
    weights=(("PubCount", 0.7), ("Faculty", 0.1), ("GRE", 0.2))
)


@pytest.fixture(scope="module")
def seeded_store(tmp_path_factory):
    """A store file holding two cs-departments labels."""
    path = str(tmp_path_factory.mktemp("cli-store") / "labels.db")
    table = cs_departments()
    with LabelService(store_path=path) as service:
        first = service.build_label(table, DESIGN, "CS departments")
        second = service.build_label(table, SHIFTED, "CS departments")
    return path, first.fingerprint, second.fingerprint


class TestLs:
    def test_lists_both_labels(self, seeded_store, capsys):
        path, fp_a, fp_b = seeded_store
        assert main(["store", "ls", "--path", path]) == 0
        out = capsys.readouterr().out
        assert "2 label(s)" in out
        assert fp_a[:16] in out and fp_b[:16] in out
        assert "CS departments" in out

    def test_limit(self, seeded_store, capsys):
        path, _, _ = seeded_store
        assert main(["store", "ls", "--path", path, "--limit", "1"]) == 0
        out = capsys.readouterr().out
        # header + summary + exactly one row mentioning the dataset
        assert out.count("CS departments") == 1

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["store", "ls", "--path", str(tmp_path / "nope.db")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_no_path_no_env_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_LABEL_STORE", raising=False)
        assert main(["store", "ls"]) == 2
        assert "REPRO_LABEL_STORE" in capsys.readouterr().err

    def test_env_var_names_the_store(self, seeded_store, capsys, monkeypatch):
        path, _, _ = seeded_store
        monkeypatch.setenv("REPRO_LABEL_STORE", path)
        assert main(["store", "ls"]) == 0
        assert "2 label(s)" in capsys.readouterr().out


class TestShow:
    def test_text_includes_provenance_and_label(self, seeded_store, capsys):
        path, fp_a, _ = seeded_store
        assert main(["store", "show", "--path", path, fp_a[:10]]) == 0
        out = capsys.readouterr().out
        assert f"fingerprint: {fp_a}" in out
        assert "RANKING FACTS" in out  # the rendered label rides along
        assert "vectorized" in out  # backend provenance

    def test_json_format_round_trips(self, seeded_store, capsys):
        path, fp_a, _ = seeded_store
        assert main([
            "store", "show", "--path", path, fp_a, "--format", "json",
        ]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["fingerprint"] == fp_a
        assert body["label"]["dataset"] == "CS departments"
        assert body["provenance"]["design"]["k"] == 10

    def test_unknown_prefix_fails_cleanly(self, seeded_store, capsys):
        path, _, _ = seeded_store
        assert main(["store", "show", "--path", path, "feedface"]) == 2
        assert "no stored label" in capsys.readouterr().err

    def test_non_hex_prefix_fails_cleanly(self, seeded_store, capsys):
        path, _, _ = seeded_store
        assert main(["store", "show", "--path", path, "%"]) == 2
        assert "not hex" in capsys.readouterr().err


class TestDiff:
    def test_weight_drift_reported(self, seeded_store, capsys):
        path, fp_a, fp_b = seeded_store
        assert main([
            "store", "diff", "--path", path, fp_a[:12], fp_b[:12],
        ]) == 0
        out = capsys.readouterr().out
        assert "weight PubCount: 0.4 -> 0.7" in out

    def test_diff_against_itself_is_empty(self, seeded_store, capsys):
        path, fp_a, _ = seeded_store
        assert main(["store", "diff", "--path", path, fp_a, fp_a]) == 0
        assert "no differences" in capsys.readouterr().out


class TestGc:
    def test_needs_a_bound(self, seeded_store, capsys):
        path, _, _ = seeded_store
        assert main(["store", "gc", "--path", path]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_trims_to_budget(self, tmp_path, capsys):
        # a dedicated store so the module fixture stays intact
        path = str(tmp_path / "gc.db")
        table = cs_departments()
        with LabelService(store_path=path) as service:
            service.build_label(table, DESIGN, "CS departments")
            service.build_label(table, SHIFTED, "CS departments")
        assert main(["store", "gc", "--path", path, "--max-bytes", "1"]) == 0
        out = capsys.readouterr().out
        assert "evicted 1 label(s)" in out
        assert "1 label(s)" in out
