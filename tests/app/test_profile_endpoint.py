"""Tests for the server's profiling surface: /debug/profile, /profiles,
the /engine/stats profiles+resources blocks, and profile-linked traces."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.app import DemoSession
from repro.app.server import make_server
from repro.engine.service import LabelService


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    store_path = tmp_path_factory.mktemp("profile-server") / "labels.db"
    session = DemoSession(service=LabelService(store_path=str(store_path)))
    session.load_builtin("cs-departments")
    session.set_monte_carlo(20)
    session.design_scoring(
        weights={"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
        sensitive_attribute="DeptSizeBin",
        id_column="DeptName",
    )
    with make_server(session, profile=True, trace_slow_threshold=0.0) as handle:
        yield handle


def get(handle, path):
    with urllib.request.urlopen(handle.url + path, timeout=30) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


class TestDebugProfile:
    def test_json_window(self, served):
        # sample while another request is in flight so stacks exist
        noise = threading.Thread(
            target=lambda: get(served, "/label?format=json"), daemon=True
        )
        noise.start()
        status, content_type, body = get(
            served, "/debug/profile?seconds=0.4&hz=200&format=json"
        )
        noise.join()
        assert status == 200
        assert "application/json" in content_type
        payload = json.loads(body)
        assert payload["source"] == "server"
        assert payload["hz"] == 200
        assert payload["samples"] > 0
        assert payload["stacks"]
        assert "spans" in payload

    def test_collapsed_window(self, served):
        status, content_type, body = get(
            served, "/debug/profile?seconds=0.2&format=collapsed"
        )
        assert status == 200
        assert "text/plain" in content_type
        for line in body.decode().strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and count.isdigit()

    def test_bad_parameters_rejected(self, served):
        for query in ("seconds=nope", "format=flame", "hz=abc"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(served, f"/debug/profile?seconds=0.1&{query}")
            assert excinfo.value.code == 400

    def test_archive_persists_a_capture(self, served):
        _, _, body = get(
            served, "/debug/profile?seconds=0.2&format=json&archive=1"
        )
        payload = json.loads(body)
        profile_id = payload["profile_id"]
        status, _, body = get(served, f"/profiles/{profile_id}")
        assert status == 200
        record = json.loads(body)
        assert record["profile_id"] == profile_id
        assert record["report"]["samples"] == payload["samples"]

    def test_profiles_listing(self, served):
        get(served, "/debug/profile?seconds=0.1&format=json&archive=1")
        status, _, body = get(served, "/profiles?limit=10")
        assert status == 200
        listing = json.loads(body)
        assert listing["count"] >= 1
        assert all("payload" not in row for row in listing["profiles"])

    def test_unknown_profile_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(served, "/profiles/feedfeed")
        assert excinfo.value.code == 404


class TestStatsBlocks:
    def test_engine_stats_has_profiles_and_resources(self, served):
        _, _, body = get(served, "/engine/stats")
        stats = json.loads(body)
        profiler = stats["profiles"]["profiler"]
        assert profiler["running"] is True
        assert profiler["continuous"] is not None
        resources = stats["resources"]
        assert resources["threads"] >= 1
        assert resources["cpu_seconds"] >= 0.0
        assert "gc" in resources

    def test_metrics_export_process_families(self, served):
        _, _, body = get(served, "/metrics")
        text = body.decode()
        assert "repro_process_cpu_seconds" in text
        assert "repro_process_threads" in text
        assert "repro_process_gc_pauses" in text


class TestTraceLinking:
    def test_slow_trace_carries_a_linked_profile(self, served):
        # threshold 0.0: every archived trace counts as slow and gets
        # the continuous window rotated in behind it
        get(served, "/label?format=json")
        _, _, body = get(served, "/traces?limit=20")
        rows = json.loads(body)["traces"]
        assert rows
        linked = None
        for row in rows:
            _, _, detail_body = get(served, "/traces/" + row["trace_id"])
            detail = json.loads(detail_body)
            if detail.get("profile"):
                linked = detail
                break
        assert linked is not None
        assert linked["profile"]["samples"] > 0
        assert linked["profile_id"]
