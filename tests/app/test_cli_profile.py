"""CLI tests for the profiling surface: the `profile` subcommand, the
stats resources pane, profile-aware waterfalls, and the ambiguous
trace-prefix listing (regression)."""

import json

import pytest

from repro.app.cli import (
    _format_stats,
    _format_waterfall,
    build_parser,
    main,
)
from repro.store.store import LabelStore


def sample_profile_dict():
    return {
        "source": "server",
        "started_at": 100.0,
        "duration": 2.0,
        "hz": 97.0,
        "samples": 10,
        "stacks": {"a.py:main;a.py:hot": 10},
        "spans": {
            "engine.label": {"samples": 8, "frames": {"a.py:hot": 8}},
        },
    }


class TestParser:
    def test_profile_subcommand_registered(self):
        args = build_parser().parse_args(
            ["profile", "--fleet", "--worker", "h:1", "--worker", "h:2",
             "--seconds", "0.5", "--format", "collapsed"]
        )
        assert args.command == "profile"
        assert args.worker == ["h:1", "h:2"]
        assert args.fleet is True
        assert args.seconds == 0.5

    def test_serve_profile_flag(self):
        argv = ["serve", "--dataset", "cs-departments", "--profile"]
        assert build_parser().parse_args(argv).profile is True
        assert build_parser().parse_args(argv[:-1]).profile is None


class TestStatsResourcesPane:
    def test_resources_and_profiler_lines(self):
        stats = {
            "service": {"requests": 1, "builds": 1},
            "resources": {
                "uptime_seconds": 100.0,
                "cpu_seconds": 5.0,
                "threads": 7,
                "rss_bytes": 50 * 1048576,
                "peak_rss_bytes": 64 * 1048576,
                "open_fds": 12,
                "gc": {"pauses": 3, "pause_seconds": 0.004},
            },
            "profiles": {
                "profiler": {
                    "windows": 2,
                    "samples_total": 123,
                    "continuous": {"hz": 19.0, "samples": 40},
                }
            },
        }
        text = _format_stats(stats)
        assert "resources: rss 50.0 MB (peak 64.0)" in text
        # first frame: lifetime average 5s over 100s = 5%
        assert "cpu 5.0s (5.0%)" in text
        assert "7 thread(s), 12 fd(s), gc 3 pause(s) / 4.0 ms" in text
        assert "profiler:  continuous at 19 hz, 40 sample(s) buffered" in text
        assert "2 window(s), 123 sample(s) ever" in text

    def test_watch_delta_turns_cpu_into_a_rate(self):
        previous = {
            "resources": {"uptime_seconds": 100.0, "cpu_seconds": 5.0,
                          "threads": 7, "gc": {}},
        }
        current = {
            "resources": {"uptime_seconds": 102.0, "cpu_seconds": 6.0,
                          "threads": 7, "gc": {}},
        }
        text = _format_stats(current, previous)
        # 1 cpu-second over a 2-second interval = 50%
        assert "cpu 6.0s (50.0%)" in text

    def test_no_resources_block_no_pane(self):
        assert "resources:" not in _format_stats({"service": {}})


class TestWaterfallProfileSection:
    def summary_and_spans(self):
        summary = {
            "trace_id": "ab" * 16, "root_name": "http.request",
            "status": "ok", "duration": 2.0, "span_count": 1,
            "sampled": "slow",
        }
        spans = [{
            "name": "http.request", "started_at": 100.0, "duration": 2.0,
            "status": "ok",
        }]
        tree = [dict(spans[0], children=[])]
        return summary, spans, tree

    def test_linked_profile_prints_span_frames(self):
        summary, spans, tree = self.summary_and_spans()
        text = _format_waterfall(
            summary, spans, tree, profile=sample_profile_dict()
        )
        assert "top frames by span" in text
        assert "engine.label  (8 samples)" in text
        assert "a.py:hot" in text

    def test_spanless_profile_falls_back_to_process_frames(self):
        summary, spans, tree = self.summary_and_spans()
        profile = sample_profile_dict()
        profile["spans"] = {}
        text = _format_waterfall(summary, spans, tree, profile=profile)
        assert "top frames by span" in text
        assert "a.py:hot" in text

    def test_no_profile_no_section(self):
        summary, spans, tree = self.summary_and_spans()
        assert "linked profile" not in _format_waterfall(summary, spans, tree)


class TestAmbiguousTraceShow:
    """Regression: `trace show <prefix>` on an ambiguous prefix must list
    the matching trace ids, not die with a bare error."""

    def make_store(self, tmp_path):
        path = tmp_path / "labels.db"
        with LabelStore(path) as store:
            for suffix in ("0", "1"):
                trace_id = "ab" + suffix * 30
                store.put_trace(
                    trace_id, root_name="http.request", status="ok",
                    started_at=100.0, duration=1.0,
                    spans=[{"name": "root", "trace_id": trace_id}],
                    sampled="sampled",
                )
        return path

    def test_store_path_lists_candidates(self, tmp_path, capsys):
        path = self.make_store(tmp_path)
        rc = main(["trace", "show", "--path", str(path), "ab"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "ambiguous" in err
        assert "ab" + "0" * 30 in err
        assert "ab" + "1" * 30 in err
        assert "longer prefix" in err

    def test_unique_prefix_still_resolves(self, tmp_path, capsys):
        path = self.make_store(tmp_path)
        rc = main(["trace", "show", "--path", str(path), "ab0"])
        assert rc == 0
        assert "http.request" in capsys.readouterr().out


class TestProfileCommandLive:
    @pytest.fixture()
    def served(self):
        from repro.app import DemoSession
        from repro.app.server import make_server

        session = DemoSession()
        session.load_builtin("cs-departments")
        session.set_monte_carlo(20)
        session.design_scoring(
            weights={"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
            sensitive_attribute="DeptSizeBin",
            id_column="DeptName",
        )
        with make_server(session) as handle:
            yield handle

    def test_summary_capture_from_server(self, served, capsys):
        rc = main(["profile", "--url", served.url, "--seconds", "0.3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile server" in out
        assert "samples=" in out

    def test_collapsed_sections_per_target(self, served, capsys):
        from repro.cluster.worker import make_worker

        with make_worker(port=0) as worker:
            rc = main([
                "profile", "--url", served.url,
                "--worker", worker.address,
                "--seconds", "0.3", "--format", "collapsed",
            ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("# ====") == 2
        assert f"worker:{worker.address.rsplit(':', 1)[1]}" in out

    def test_json_format(self, served, capsys):
        rc = main([
            "profile", "--url", served.url, "--seconds", "0.2",
            "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profiles"]["server"]["samples"] >= 0

    def test_unreachable_target_fails_cleanly(self, capsys):
        rc = main([
            "profile", "--url", "http://127.0.0.1:1",
            "--seconds", "0.1",
        ])
        assert rc == 2
        assert "no profile captured" in capsys.readouterr().err
