"""Tests for the demo HTTP server (ephemeral port, real requests)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.app import DemoSession
from repro.app.server import make_server
from repro.errors import EngineError, RankingFactsError


@pytest.fixture(scope="module")
def served():
    session = DemoSession()
    session.load_builtin("cs-departments")
    session.design_scoring(
        weights={"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
        sensitive_attribute="DeptSizeBin",
        id_column="DeptName",
    )
    with make_server(session) as handle:
        yield handle


def get(handle, path):
    with urllib.request.urlopen(handle.url + path, timeout=10) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


def post(handle, path, body):
    request = urllib.request.Request(
        handle.url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestRoutes:
    def test_landing_page(self, served):
        status, content_type, body = get(served, "/")
        assert status == 200
        assert "text/html" in content_type
        assert b"Ranking Facts" in body

    def test_health(self, served):
        status, _, body = get(served, "/health")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_datasets(self, served):
        _, _, body = get(served, "/datasets")
        assert "compas" in json.loads(body)["datasets"]

    def test_label_json(self, served):
        status, content_type, body = get(served, "/label")
        assert status == 200
        assert "application/json" in content_type
        data = json.loads(body)
        assert data["dataset"] == "cs-departments"
        assert data["fairness"]["verdicts"]["DeptSizeBin=small"]["FA*IR"] == "unfair"

    def test_label_html(self, served):
        status, content_type, body = get(served, "/label.html")
        assert status == 200
        assert "text/html" in content_type
        assert body.startswith(b"<!DOCTYPE html>")

    def test_preview(self, served):
        _, _, body = get(served, "/preview")
        preview = json.loads(body)["preview"]
        assert len(preview) == 10
        assert preview[0]["rank"] == 1

    def test_unknown_path_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(served, "/nope")
        assert excinfo.value.code == 404
        assert "unknown path" in json.loads(excinfo.value.read())["error"]

    def test_query_strings_ignored(self, served):
        status, _, _ = get(served, "/health?probe=1")
        assert status == 200


class TestPostEndpoints:
    @pytest.fixture()
    def fresh(self):
        session = DemoSession()
        session.load_builtin("cs-departments")
        session.design_scoring(
            weights={"GRE": 1.0}, sensitive_attribute="DeptSizeBin",
            id_column="DeptName",
        )
        with make_server(session) as handle:
            yield handle

    def test_attributes_endpoint(self, fresh):
        status, _, body = get(fresh, "/attributes")
        assert status == 200
        names = {entry["name"] for entry in json.loads(body)["attributes"]}
        assert "GRE" in names and "Region" in names

    def test_redesign_changes_the_label(self, fresh):
        _, _, before = get(fresh, "/label")
        status, reply = post(fresh, "/design", {
            "weights": {"PubCount": 0.5, "Faculty": 0.5},
            "sensitive": "DeptSizeBin",
            "id_column": "DeptName",
        })
        assert status == 200 and reply["ok"]
        _, _, after = get(fresh, "/label")
        before_weights = json.loads(before)["recipe"]["weights"]
        after_weights = json.loads(after)["recipe"]["weights"]
        assert "GRE" in before_weights
        assert set(after_weights) == {"PubCount", "Faculty"}

    def test_switch_dataset(self, fresh):
        status, reply = post(fresh, "/dataset", {"name": "german-credit"})
        assert status == 200 and reply["dataset"] == "german-credit"
        # a new dataset resets the design: /label now fails cleanly
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(fresh, "/label")
        assert excinfo.value.code == 400

    def test_design_validation_errors_are_400(self, fresh):
        for body in (
            {},  # no weights
            {"weights": {"GRE": 1.0}},  # no sensitive
            {"weights": {"zz": 1.0}, "sensitive": "DeptSizeBin"},  # bad attr
        ):
            request = urllib.request.Request(
                fresh.url + "/design",
                data=json.dumps(body).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400

    def test_non_numeric_design_values_are_400_not_500(self, fresh):
        """Regression: these used to hit the defensive 500 boundary."""
        for body in (
            {"weights": {"GRE": "abc"}, "sensitive": "DeptSizeBin"},
            {"weights": {"GRE": None}, "sensitive": "DeptSizeBin"},
            {"weights": {"GRE": 1.0}, "sensitive": "DeptSizeBin", "k": "ten"},
            {"weights": {"GRE": 1.0}, "sensitive": "DeptSizeBin", "k": [5]},
            {"weights": {"GRE": 1.0}, "sensitive": "DeptSizeBin", "alpha": "tiny"},
            {"weights": {"GRE": 1.0}, "sensitive": "DeptSizeBin", "alpha": {}},
        ):
            request = urllib.request.Request(
                fresh.url + "/design",
                data=json.dumps(body).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400
            error = json.loads(excinfo.value.read())["error"]
            assert "bad design" in error
            assert "internal error" not in error

    def test_unknown_post_path(self, fresh):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(fresh, "/nope", {})
        assert excinfo.value.code == 404

    def test_raw_design_over_http(self, fresh):
        status, _ = post(fresh, "/design", {
            "weights": {"PubCount": 1.0},
            "sensitive": ["DeptSizeBin"],
            "id_column": "DeptName",
            "normalize": False,
            "k": 5,
        })
        assert status == 200
        _, _, body = get(fresh, "/label")
        label = json.loads(body)
        assert label["k"] == 5
        assert label["recipe"]["normalization"]["PubCount"] == "identity"


class TestTrialBackendEnv:
    def test_env_var_selects_the_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIAL_BACKEND", "serial")
        with make_server() as handle:
            executor = handle.registry.service.stats()["executor"]
            assert executor["trial_backend"] == "serial"
            assert executor["trial_backend_effective"] == "serial"

    def test_unknown_env_backend_fails_at_startup(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIAL_BACKEND", "quantum")
        with pytest.raises(EngineError, match="unknown trial backend"):
            make_server()

    def test_bound_session_service_wins_over_env(self, served, monkeypatch):
        # the default session brought its own service; the env var only
        # applies when the server builds the service itself
        monkeypatch.setenv("REPRO_TRIAL_BACKEND", "quantum")
        status, _, _ = get(served, "/engine/stats")
        assert status == 200


class TestServerLifecycle:
    def test_empty_session_rejected(self):
        with pytest.raises(RankingFactsError, match="no dataset"):
            make_server(DemoSession())

    def test_label_generated_lazily(self):
        session = DemoSession()
        session.load_builtin("german-credit")
        session.design_scoring(
            weights={"credit_score": 1.0},
            sensitive_attribute="sex",
            id_column="applicant_id",
        )
        with make_server(session) as handle:
            _, _, body = get(handle, "/label")
            assert json.loads(body)["dataset"] == "german-credit"

    def test_two_servers_coexist(self, served):
        session = DemoSession()
        session.load_builtin("cs-departments")
        session.design_scoring(
            weights={"GRE": 1.0}, sensitive_attribute="DeptSizeBin",
            id_column="DeptName",
        )
        with make_server(session) as other:
            assert other.address[1] != served.address[1]
            status, _, _ = get(other, "/health")
            assert status == 200


class TestCacheBoundsWiring:
    """serve --cache-max-bytes/--cache-ttl must reach /engine/stats."""

    def test_flags_surface_in_engine_stats(self):
        with make_server(cache_max_bytes=1 << 20, cache_ttl=900.0) as handle:
            _, _, body = get(handle, "/engine/stats")
            cache = json.loads(body)["cache"]
            assert cache["max_bytes"] == 1 << 20
            assert cache["ttl"] == 900.0

    def test_env_vars_apply_when_flags_absent(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "2048")
        monkeypatch.setenv("REPRO_CACHE_TTL", "30.5")
        with make_server() as handle:
            _, _, body = get(handle, "/engine/stats")
            cache = json.loads(body)["cache"]
            assert cache["max_bytes"] == 2048
            assert cache["ttl"] == 30.5

    def test_unbounded_by_default(self):
        with make_server() as handle:
            _, _, body = get(handle, "/engine/stats")
            cache = json.loads(body)["cache"]
            assert cache["max_bytes"] is None
            assert cache["ttl"] is None
