"""Tests for repro.app.session (the Figure-3 workflow state machine)."""

import pytest

from repro.app import DemoSession, SessionStage
from repro.errors import SessionStateError, WeightError
from repro.tabular import Table, write_csv


@pytest.fixture()
def designed_session():
    session = DemoSession()
    session.load_builtin("cs-departments")
    session.design_scoring(
        weights={"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
        sensitive_attribute="DeptSizeBin",
        id_column="DeptName",
    )
    return session


class TestStageProgression:
    def test_initial_stage(self):
        assert DemoSession().stage is SessionStage.EMPTY

    def test_load_advances(self):
        session = DemoSession()
        session.load_builtin("cs-departments")
        assert session.stage is SessionStage.DATA_LOADED

    def test_design_advances(self, designed_session):
        assert designed_session.stage is SessionStage.SCORER_DESIGNED

    def test_preview_advances(self, designed_session):
        designed_session.preview()
        assert designed_session.stage is SessionStage.PREVIEWED

    def test_label_advances(self, designed_session):
        designed_session.generate_label()
        assert designed_session.stage is SessionStage.LABELED

    def test_preview_before_design_rejected(self):
        session = DemoSession()
        session.load_builtin("cs-departments")
        with pytest.raises(SessionStateError, match="requires stage"):
            session.preview()

    def test_label_before_design_rejected(self):
        session = DemoSession()
        session.load_builtin("cs-departments")
        with pytest.raises(SessionStateError):
            session.generate_label()

    def test_inspect_before_load_rejected(self):
        with pytest.raises(SessionStateError, match="no dataset"):
            DemoSession().attribute_overview()

    def test_last_label_before_generation_rejected(self, designed_session):
        with pytest.raises(SessionStateError, match="no label"):
            designed_session.last_label()

    def test_dataset_load_resets_the_seed(self, designed_session):
        """Regression: a stale seed survived the documented reset and
        silently changed label bytes (and cache fingerprints) for
        designs that never mentioned a seed."""
        designed_session.set_seed(1)
        designed_session.load_builtin("cs-departments")
        designed_session.design_scoring(
            weights={"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
            sensitive_attribute="DeptSizeBin",
            id_column="DeptName",
        )
        assert designed_session.current_design().seed == 20180610

    @pytest.mark.parametrize("invalidate", ["seed", "monte_carlo"])
    def test_invalidating_a_label_demotes_the_stage(self, designed_session, invalidate):
        """Regression: set_seed/set_monte_carlo dropped the cached label
        but left the stage LABELED, so last_label() raised on a session
        that reported itself labeled."""
        designed_session.generate_label()
        assert designed_session.stage is SessionStage.LABELED
        if invalidate == "seed":
            designed_session.set_seed(7)
        else:
            designed_session.set_monte_carlo(5)
        assert designed_session.stage is SessionStage.SCORER_DESIGNED
        facts = designed_session.generate_label()  # the design is still committed
        assert designed_session.stage is SessionStage.LABELED
        assert facts is designed_session.last_label()

    def test_reload_resets_design(self, designed_session):
        designed_session.load_builtin("german-credit")
        assert designed_session.stage is SessionStage.DATA_LOADED
        with pytest.raises(SessionStateError):
            designed_session.preview()

    def test_redesign_after_label_allowed(self, designed_session):
        designed_session.generate_label()
        designed_session.design_scoring(
            weights={"PubCount": 1.0},
            sensitive_attribute="DeptSizeBin",
            id_column="DeptName",
        )
        assert designed_session.stage is SessionStage.SCORER_DESIGNED


class TestDesignValidation:
    @pytest.fixture()
    def loaded(self):
        session = DemoSession()
        session.load_builtin("cs-departments")
        return session

    def test_empty_weights_rejected(self, loaded):
        with pytest.raises(WeightError):
            loaded.design_scoring({}, "DeptSizeBin")

    def test_unknown_scoring_attribute_rejected(self, loaded):
        from repro.errors import MissingColumnError

        with pytest.raises(MissingColumnError):
            loaded.design_scoring({"zz": 1.0}, "DeptSizeBin")

    def test_categorical_scoring_attribute_rejected(self, loaded):
        from repro.errors import ColumnTypeError

        with pytest.raises(ColumnTypeError):
            loaded.design_scoring({"Region": 1.0}, "DeptSizeBin")

    def test_no_sensitive_attribute_rejected(self, loaded):
        with pytest.raises(SessionStateError, match="sensitive"):
            loaded.design_scoring({"GRE": 1.0}, [])

    def test_numeric_sensitive_attribute_rejected(self, loaded):
        from repro.errors import ColumnTypeError

        with pytest.raises(ColumnTypeError):
            loaded.design_scoring({"GRE": 1.0}, "GRE")

    def test_bad_id_column_rejected(self, loaded):
        with pytest.raises(SessionStateError, match="id column"):
            loaded.design_scoring({"GRE": 1.0}, "DeptSizeBin", id_column="zz")


class TestWorkflowOutputs:
    def test_preview_rows(self, designed_session):
        top = designed_session.preview(5)
        assert top.size == 5
        assert top.item_ids()[0].startswith("Dept")

    def test_preview_respects_normalization_toggle(self, designed_session):
        normalized = designed_session.preview(51)
        designed_session.set_normalization(False)
        raw = designed_session.preview(51)
        assert raw.scores.max() > normalized.scores.max()

    def test_generate_label_contents(self, designed_session):
        facts = designed_session.generate_label()
        assert facts.label.dataset_name == "cs-departments"
        assert designed_session.last_label() is facts

    def test_preview_data(self, designed_session):
        rows = designed_session.preview_data(3)
        assert len(rows) == 3
        assert "PubCount" in rows[0]

    def test_attribute_overview(self, designed_session):
        overview = designed_session.attribute_overview()
        kinds = {entry["name"]: entry["kind"] for entry in overview}
        assert kinds["GRE"] == "numeric"
        assert kinds["Region"] == "categorical"

    def test_attribute_histogram(self, designed_session):
        hist = designed_session.attribute_histogram("GRE", bins=5)
        assert hist.total == 51
        ascii_art = designed_session.attribute_histogram_ascii("GRE", bins=5)
        assert "GRE (n=51)" in ascii_art

    def test_load_csv(self, tmp_path, cs_table):
        path = tmp_path / "mine.csv"
        write_csv(cs_table, path)
        session = DemoSession()
        session.load_csv(path)
        assert session.dataset_name() == "mine"

    def test_load_table(self, small_table):
        session = DemoSession()
        session.load_table(small_table, name="tiny")
        assert session.dataset_name() == "tiny"

    def test_available_datasets(self):
        assert "compas" in DemoSession.available_datasets()

    def test_raw_label_records_identity_normalization(self, designed_session):
        designed_session.set_normalization(False)
        facts = designed_session.generate_label()
        assert facts.label.recipe.normalization["GRE"] == "identity"


class TestConcurrentDesignSafety:
    """The design race: redesign + label build must serialize.

    ``ThreadingHTTPServer`` drives one session from many threads; a
    ``POST /design`` racing a ``GET /label`` must never observe a
    half-committed design (e.g. design A's weights with design B's k).
    """

    # both designs use the binary sensitive attribute: generate_label
    # builds the fairness widget, which rejects multi-valued attributes
    DESIGN_A = dict(
        weights={"PubCount": 1.0}, sensitive_attribute="DeptSizeBin",
        id_column="DeptName", k=5,
    )
    DESIGN_B = dict(
        weights={"GRE": 1.0}, sensitive_attribute="DeptSizeBin",
        id_column="DeptName", k=7,
    )

    def test_design_commits_are_atomic_under_concurrency(self):
        import threading

        session = DemoSession()
        session.load_builtin("cs-departments")
        session.design_scoring(**self.DESIGN_A)
        stop = threading.Event()
        torn: list[tuple] = []

        def redesigner():
            flip = False
            while not stop.is_set():
                session.design_scoring(**(self.DESIGN_B if flip else self.DESIGN_A))
                flip = not flip

        def observer():
            for _ in range(300):
                design = session.current_design()
                observed = (
                    tuple(dict(design.weights)), design.sensitive, design.k
                )
                if observed not in (
                    (("PubCount",), ("DeptSizeBin",), 5),
                    (("GRE",), ("DeptSizeBin",), 7),
                ):
                    torn.append(observed)

        writer = threading.Thread(target=redesigner)
        writer.start()
        try:
            observer()
        finally:
            stop.set()
            writer.join(timeout=10)
        assert torn == [], f"observed half-committed designs: {torn[:3]}"

    def test_generate_label_serializes_with_redesign(self):
        import threading

        session = DemoSession()
        session.load_builtin("cs-departments")
        session.design_scoring(**self.DESIGN_A)
        stop = threading.Event()
        failures: list[str] = []

        def redesigner():
            flip = False
            while not stop.is_set():
                session.design_scoring(**(self.DESIGN_B if flip else self.DESIGN_A))
                flip = not flip

        def labeler():
            for _ in range(20):
                facts = session.generate_label()
                weights = frozenset(facts.label.recipe.weights)
                k = facts.label.k
                if (weights, k) not in (
                    (frozenset({"PubCount"}), 5),
                    (frozenset({"GRE"}), 7),
                ):
                    failures.append(f"{set(weights)} k={k}")

        writer = threading.Thread(target=redesigner)
        writer.start()
        try:
            labeler()
        finally:
            stop.set()
            writer.join(timeout=10)
        assert failures == [], failures
