"""Tests for the CLI's ``batch`` command (the engine's CLI entry)."""

import json

import pytest

from repro.app.cli import main

DESIGN = {
    "weights": {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
    "sensitive": ["DeptSizeBin"],
    "id_column": "DeptName",
}


def write_spec(tmp_path, jobs):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps({"jobs": jobs}), encoding="utf-8")
    return spec


class TestBatchCommand:
    def test_batch_runs_and_reports(self, tmp_path, capsys):
        spec = write_spec(tmp_path, [
            {"dataset": "cs-departments", "design": DESIGN},
            {"dataset": "german-credit", "design": {
                "weights": {"credit_score": 1.0}, "sensitive": ["sex"],
                "id_column": "applicant_id",
            }},
        ])
        assert main(["batch", "--spec", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "2/2 job(s) succeeded" in out
        assert "cs-departments" in out and "german-credit" in out

    def test_batch_writes_labels_and_dedupes(self, tmp_path, capsys):
        spec = write_spec(
            tmp_path,
            [{"dataset": "cs-departments", "design": DESIGN}] * 3,
        )
        out_dir = tmp_path / "labels"
        code = main([
            "batch", "--spec", str(spec),
            "--output-dir", str(out_dir), "--stats",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 build(s) for 3 request(s)" in out
        payloads = {
            (out_dir / f"job-{i}.json").read_text(encoding="utf-8")
            for i in range(3)
        }
        assert len(payloads) == 1  # identical designs -> identical bytes
        assert json.loads(payloads.pop())["dataset"] == "cs-departments"

    def test_batch_failure_exits_nonzero(self, tmp_path, capsys):
        spec = write_spec(tmp_path, [
            {"dataset": "no-such-dataset", "design": DESIGN},
        ])
        assert main(["batch", "--spec", str(spec)]) == 2
        err = capsys.readouterr().err
        assert "FAILED" in err and "no-such-dataset" in err

    def test_missing_spec_is_an_error(self, capsys):
        assert main(["batch", "--spec", "/nonexistent.json"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_invalid_spec_shape_is_an_error(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text('{"not_jobs": []}', encoding="utf-8")
        assert main(["batch", "--spec", str(spec)]) == 2
        assert '"jobs"' in capsys.readouterr().err

    def test_no_cache_flag_builds_every_job(self, tmp_path, capsys):
        spec = write_spec(
            tmp_path, [{"dataset": "cs-departments", "design": DESIGN}] * 2
        )
        assert main([
            "batch", "--spec", str(spec), "--no-cache", "--stats",
        ]) == 0
        assert "2 build(s) for 2 request(s)" in capsys.readouterr().out


class TestEntryPointDeclaration:
    def test_console_script_declared(self):
        # the satellite task: `ranking-facts` installs as a command
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
        text = pyproject.read_text(encoding="utf-8")
        assert 'ranking-facts = "repro.app.cli:main"' in text


class TestTrialBackendFlag:
    MC_DESIGN = DESIGN | {
        "monte_carlo_trials": 4, "monte_carlo_epsilons": [0.1], "seed": 3,
    }

    def test_vectorized_backend_accepted_and_byte_identical(
        self, tmp_path, capsys
    ):
        spec = write_spec(
            tmp_path, [{"dataset": "cs-departments", "design": self.MC_DESIGN}]
        )
        serial_dir = tmp_path / "serial"
        vector_dir = tmp_path / "vectorized"
        assert main([
            "batch", "--spec", str(spec), "--output-dir", str(serial_dir),
            "--trial-backend", "serial",
        ]) == 0
        assert main([
            "batch", "--spec", str(spec), "--output-dir", str(vector_dir),
            "--trial-backend", "vectorized", "--stats",
        ]) == 0
        out = capsys.readouterr().out
        assert "trials on the vectorized backend" in out
        serial_bytes = (serial_dir / "job-0.json").read_text(encoding="utf-8")
        vector_bytes = (vector_dir / "job-0.json").read_text(encoding="utf-8")
        assert serial_bytes == vector_bytes

    def test_unknown_backend_rejected_by_the_parser(self, tmp_path, capsys):
        spec = write_spec(tmp_path, [{"dataset": "cs-departments", "design": DESIGN}])
        with pytest.raises(SystemExit):
            main(["batch", "--spec", str(spec), "--trial-backend", "quantum"])

    def test_serve_parser_accepts_hardening_flags(self):
        from repro.app.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--dataset", "cs-departments",
            "--weight", "GRE=1.0", "--sensitive", "DeptSizeBin",
            "--trial-backend", "vectorized", "--allow-local-paths", "/data",
            "--store", "labels.db",
            "--cache-max-bytes", "1048576", "--cache-ttl", "600",
        ])
        assert args.trial_backend == "vectorized"
        assert args.allow_local_paths == "/data"
        assert args.store == "labels.db"
        assert args.cache_max_bytes == 1048576
        assert args.cache_ttl == 600.0
        defaults = build_parser().parse_args([
            "serve", "--dataset", "cs-departments",
            "--weight", "GRE=1.0", "--sensitive", "DeptSizeBin",
        ])
        assert defaults.allow_local_paths is None
        assert defaults.store is None
        assert defaults.cache_max_bytes is None
        assert defaults.cache_ttl is None
