"""Tests for GET /metrics and the server's HTTP request telemetry."""

import contextlib
import re
import time
import urllib.error
import urllib.request

import pytest

from repro.app.server import make_server
from repro.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    is_trace_id,
)

_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


@pytest.fixture(scope="module")
def served():
    # a module-private registry keeps the assertions below independent
    # of whatever other test modules did to the process-wide default
    with make_server(metrics_registry=MetricsRegistry()) as handle:
        yield handle


def fetch(handle, path, headers=None):
    request = urllib.request.Request(handle.url + path, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, dict(response.headers), response.read()


def request_samples(text, family="repro_http_requests_total"):
    """``(labels, value)`` for each series of ``family`` in the page."""
    samples = []
    for line in text.splitlines():
        if not line.startswith(family + "{"):
            continue
        labeled, _, value = line.rpartition(" ")
        samples.append((dict(_LABEL.findall(labeled)), float(value)))
    return samples


def settle(read, target, timeout=5.0):
    """Poll ``read()`` until it reaches ``target``: request counters are
    incremented after the response is flushed, so a scrape racing the
    previous request's bookkeeping may briefly run one behind."""
    deadline = time.monotonic() + timeout
    value = read()
    while value < target and time.monotonic() < deadline:
        time.sleep(0.02)
        value = read()
    return value


class TestMetricsEndpoint:
    def test_scrape_returns_prometheus_exposition_text(self, served):
        fetch(served, "/health")  # mint at least one request sample

        def health_series():
            _, _, body = fetch(served, "/metrics")
            return len(
                [
                    labels
                    for labels, _ in request_samples(body.decode("utf-8"))
                    if labels.get("route") == "/health"
                ]
            )

        assert settle(health_series, 1) >= 1
        status, headers, body = fetch(served, "/metrics")
        text = body.decode("utf-8")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert "# TYPE repro_http_inflight_requests gauge" in text
        assert "repro_http_request_seconds_bucket" in text
        health = [
            labels
            for labels, _ in request_samples(text)
            if labels.get("route") == "/health"
        ]
        assert health and all(
            labels["method"] == "GET" and labels["status"] == "200"
            for labels in health
        )

    def test_request_counters_are_monotone_across_scrapes(self, served):
        def health_count():
            _, _, body = fetch(served, "/metrics")
            return sum(
                value
                for labels, value in request_samples(body.decode("utf-8"))
                if labels.get("route") == "/health"
            )

        fetch(served, "/health")
        before = settle(health_count, 1)
        fetch(served, "/health")
        fetch(served, "/health")
        assert settle(health_count, before + 2) == before + 2

    def test_every_response_carries_a_trace_id(self, served):
        _, headers, _ = fetch(served, "/health")
        assert is_trace_id(headers["X-Trace-Id"])

    def test_a_valid_client_trace_id_is_adopted(self, served):
        trace = "ab" * 16
        _, headers, _ = fetch(served, "/health", {"X-Trace-Id": trace})
        assert headers["X-Trace-Id"] == trace

    def test_a_malformed_client_trace_id_is_replaced(self, served):
        _, headers, _ = fetch(served, "/health", {"X-Trace-Id": "nonsense"})
        assert is_trace_id(headers["X-Trace-Id"])
        assert headers["X-Trace-Id"] != "nonsense"

    def test_routes_are_templated_not_raw_paths(self, served):
        # attacker-controlled path segments must not mint new series
        for token in ("tok-one", "tok-two"):
            with contextlib.suppress(urllib.error.HTTPError):
                fetch(served, f"/session/{token}/label")
        for path in ("/no-such-page", "/another-miss"):
            with contextlib.suppress(urllib.error.HTTPError):
                fetch(served, path)
        _, _, body = fetch(served, "/metrics")
        routes = {
            labels["route"]
            for labels, _ in request_samples(body.decode("utf-8"))
        }
        assert "/session/{token}/label" in routes
        assert "{unknown}" in routes
        assert not any("tok-one" in route for route in routes)
        assert not any("no-such-page" in route for route in routes)
