"""Tests for the server's multi-session registry and batch endpoints."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.app.server import SessionRegistry, make_server
from repro.errors import EngineError

DESIGN = {
    "weights": {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
    "sensitive": ["DeptSizeBin"],
    "id_column": "DeptName",
}


def get(handle, path):
    with urllib.request.urlopen(handle.url + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def post(handle, path, body):
    request = urllib.request.Request(
        handle.url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def wait_for_batch(handle, batch_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, status = get(handle, f"/jobs/{batch_id}")
        if status["done"]:
            return status
        time.sleep(0.05)
    raise AssertionError(f"batch {batch_id} did not finish within {timeout}s")


@pytest.fixture(scope="module")
def served():
    with make_server() as handle:
        yield handle


class TestSessionRegistry:
    def test_create_get_close(self):
        registry = SessionRegistry()
        token, session = registry.create()
        assert registry.get(token) is session
        assert registry.tokens() == {token: "empty"}
        assert registry.close(token) is True
        assert registry.close(token) is False

    def test_sessions_share_the_service(self):
        registry = SessionRegistry()
        _, one = registry.create()
        _, two = registry.create()
        assert one.service is two.service is registry.service


class TestSessionEndpoints:
    def test_open_bare_session_then_configure(self, served):
        status, reply = post(served, "/session", {})
        assert status == 201 and reply["stage"] == "empty"
        token = reply["token"]
        status, reply = post(
            served, f"/session/{token}/dataset", {"name": "cs-departments"}
        )
        assert status == 200 and reply["stage"] == "data-loaded"
        status, reply = post(served, f"/session/{token}/design", DESIGN)
        assert status == 200 and reply["stage"] == "scorer-designed"
        status, label = get(served, f"/session/{token}/label")
        assert status == 200 and label["dataset"] == "cs-departments"

    def test_open_preloaded_session(self, served):
        status, reply = post(
            served, "/session", {"dataset": "cs-departments", "design": DESIGN}
        )
        assert status == 201 and reply["stage"] == "scorer-designed"
        token = reply["token"]
        _, overview = get(served, f"/session/{token}/attributes")
        assert any(entry["name"] == "GRE" for entry in overview["attributes"])
        _, preview = get(served, f"/session/{token}/preview")
        assert preview["preview"][0]["rank"] == 1

    def test_invalid_preload_does_not_leak_a_session(self, served):
        _, before = get(served, "/sessions")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(served, "/session", {"dataset": "no-such-dataset"})
        assert excinfo.value.code == 400
        _, after = get(served, "/sessions")
        assert len(after["sessions"]) == len(before["sessions"])

    def test_unknown_token_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(served, "/session/deadbeef/label")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(served, "/session/deadbeef/design", DESIGN)
        assert excinfo.value.code == 404

    def test_two_sessions_are_isolated(self, served):
        _, one = post(
            served, "/session", {"dataset": "cs-departments", "design": DESIGN}
        )
        _, two = post(served, "/session", {
            "dataset": "cs-departments",
            "design": DESIGN | {"weights": {"GRE": 1.0}, "k": 5},
        })
        _, label_one = get(served, f"/session/{one['token']}/label")
        _, label_two = get(served, f"/session/{two['token']}/label")
        assert set(label_one["recipe"]["weights"]) == set(DESIGN["weights"])
        assert set(label_two["recipe"]["weights"]) == {"GRE"}
        assert label_one["k"] == 10 and label_two["k"] == 5

    def test_identical_designs_hit_the_shared_cache(self, served):
        body = {"dataset": "cs-departments", "design": DESIGN | {"seed": 99}}
        _, one = post(served, "/session", body)
        _, two = post(served, "/session", body)
        get(served, f"/session/{one['token']}/label")
        _, stats_before = get(served, "/engine/stats")
        get(served, f"/session/{two['token']}/label")
        _, stats_after = get(served, "/engine/stats")
        assert (
            stats_after["service"]["builds"] == stats_before["service"]["builds"]
        )
        _, status = get(served, f"/session/{two['token']}/status")
        assert status["cached"] is True

    def test_session_status_view(self, served):
        _, reply = post(served, "/session", {"dataset": "cs-departments"})
        _, status = get(served, f"/session/{reply['token']}/status")
        assert status == {"stage": "data-loaded", "cached": False}

    def test_monte_carlo_design_over_http(self, served):
        _, reply = post(served, "/session", {
            "dataset": "cs-departments",
            "design": DESIGN | {
                "monte_carlo_trials": 3, "monte_carlo_epsilons": [0.1],
            },
        })
        _, label = get(served, f"/session/{reply['token']}/label")
        perturbation = label["stability"]["weight_perturbation"]
        assert perturbation and perturbation[0]["trials"] == 3

    def test_redesign_without_monte_carlo_disables_it(self, served):
        _, reply = post(served, "/session", {
            "dataset": "cs-departments",
            "design": DESIGN | {
                "monte_carlo_trials": 3, "monte_carlo_epsilons": [0.1],
            },
        })
        token = reply["token"]
        _, label = get(served, f"/session/{token}/label")
        assert label["stability"]["weight_perturbation"]
        post(served, f"/session/{token}/design", DESIGN)  # no MC fields
        _, label = get(served, f"/session/{token}/label")
        assert label["stability"]["weight_perturbation"] == []

    def test_malformed_monte_carlo_epsilons_is_400(self, served):
        _, reply = post(served, "/session", {"dataset": "cs-departments"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(served, f"/session/{reply['token']}/design", DESIGN | {
                "monte_carlo_trials": 3, "monte_carlo_epsilons": 0.1,
            })
        assert excinfo.value.code == 400

    def test_close_session(self, served):
        _, reply = post(served, "/session", {"dataset": "cs-departments"})
        token = reply["token"]
        status, closed = post(served, f"/session/{token}/close", {})
        assert status == 200 and closed["closed"] == token
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(served, f"/session/{token}/status")
        assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(served, f"/session/{token}/close", {})
        assert excinfo.value.code == 404


class TestBatchEndpoints:
    def test_submit_and_poll(self, served):
        status, reply = post(served, "/jobs", {"jobs": [
            {"dataset": "cs-departments", "design": DESIGN},
            {"dataset": "german-credit", "design": {
                "weights": {"credit_score": 1.0}, "sensitive": ["sex"],
                "id_column": "applicant_id",
            }},
        ]})
        assert status == 202 and reply["total"] == 2
        final = wait_for_batch(served, reply["batch_id"])
        assert final["completed"] == 2
        assert [row["status"] for row in final["jobs"]] == ["done", "done"]

    def test_include_labels(self, served):
        _, reply = post(served, "/jobs", {"jobs": [
            {"dataset": "cs-departments", "design": DESIGN, "id": "mine"},
        ]})
        wait_for_batch(served, reply["batch_id"])
        _, status = get(served, f"/jobs/{reply['batch_id']}?include=labels")
        # the spec's own "id" names the job (it used to be shadowed by job-0)
        assert status["labels"]["mine"]["dataset"] == "cs-departments"

    def test_failed_job_visible_in_status(self, served):
        _, reply = post(served, "/jobs", {"jobs": [
            {"dataset": "no-such-dataset", "design": DESIGN},
        ]})
        final = wait_for_batch(served, reply["batch_id"])
        assert final["jobs"][0]["status"] == "failed"
        assert "no-such-dataset" in final["jobs"][0]["error"]

    def test_unknown_batch_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(served, "/jobs/batch-9999")
        assert excinfo.value.code == 404

    def test_empty_batch_400(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(served, "/jobs", {"jobs": []})
        assert excinfo.value.code == 400


class TestEngineStats:
    def test_stats_endpoint_shape(self, served):
        status, stats = get(served, "/engine/stats")
        assert status == 200
        assert set(stats) == {
            "service", "cache", "executor", "telemetry", "slo",
            "profiles", "resources",
        }
        assert set(stats["telemetry"]) >= {"metrics", "recent_traces", "trace_buffer"}

    def test_health_reports_session_count(self, served):
        _, health = get(served, "/health")
        assert health["status"] == "ok"
        assert health["sessions"] >= 0


class TestHeadlessServer:
    def test_default_routes_without_bound_session_are_400(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(served, "/label")
        assert excinfo.value.code == 400
        assert "no default session" in json.loads(excinfo.value.read())["error"]

    def test_post_to_root_is_404_not_500(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(served, "/", {})
        assert excinfo.value.code == 404

    def test_bad_job_design_value_is_400(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(served, "/jobs", {"jobs": [
                {"dataset": "compas", "design": {
                    "weights": {"x": 1.0}, "sensitive": ["g"], "k": "ten",
                }},
            ]})
        assert excinfo.value.code == 400
        assert "bad design value" in json.loads(excinfo.value.read())["error"]


class TestRegistryBounds:
    """The session cap: oldest-idle eviction, pinned defaults survive."""

    def test_cap_evicts_oldest_idle(self):
        registry = SessionRegistry(max_sessions=3)
        tokens = [registry.create()[0] for _ in range(3)]
        registry.get(tokens[0])  # touch: no longer the eviction victim
        overflow, _ = registry.create()
        assert registry.evicted == 1
        with pytest.raises(Exception, match="unknown session token"):
            registry.get(tokens[1])  # the untouched oldest went
        for token in (tokens[0], tokens[2], overflow):
            registry.get(token)  # everyone else survives

    def test_adopted_default_session_is_never_evicted(self):
        from repro.app.session import DemoSession

        registry = SessionRegistry(max_sessions=2)
        default = DemoSession(service=registry.service)
        pinned = registry.adopt(default)
        for _ in range(5):
            registry.create()
        assert registry.get(pinned) is default
        assert len(registry.tokens()) == 2  # cap held despite the pin

    def test_close_unpins(self):
        from repro.app.session import DemoSession

        registry = SessionRegistry(max_sessions=1)
        token = registry.adopt(DemoSession(service=registry.service))
        assert registry.close(token) is True
        fresh, _ = registry.create()
        registry.create()
        assert registry.evicted == 1
        assert fresh not in registry.tokens()

    def test_invalid_cap_rejected(self):
        with pytest.raises(Exception, match="max_sessions"):
            SessionRegistry(max_sessions=0)

    def test_session_churn_over_http_stays_bounded(self):
        with make_server(max_sessions=4) as handle:
            for _ in range(10):
                post(handle, "/session", {})
            _, listing = get(handle, "/sessions")
            assert len(listing["sessions"]) == 4


class TestLocalPathPolicy:
    """POST /jobs must not read server-side files unless explicitly allowed."""

    def test_csv_jobs_rejected_by_default(self, served, tmp_path):
        target = tmp_path / "data.csv"
        target.write_text("name,x\na,1\nb,2\n", encoding="utf-8")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(served, "/jobs", {"jobs": [{
                "csv": str(target),
                "design": {"weights": {"x": 1.0}, "sensitive": ["name"]},
            }]})
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "--allow-local-paths" in body["error"]

    def test_rejection_queues_nothing(self, served):
        _, stats_before = get(served, "/engine/stats")
        with pytest.raises(urllib.error.HTTPError):
            post(served, "/jobs", {"jobs": [
                {"dataset": "cs-departments", "design": DESIGN},
                {"csv": "/etc/passwd", "design": DESIGN},
            ]})
        _, stats_after = get(served, "/engine/stats")
        assert (
            stats_after["executor"]["jobs_submitted"]
            == stats_before["executor"]["jobs_submitted"]
        )

    def test_flag_restores_csv_jobs(self, tmp_path):
        target = tmp_path / "data.csv"
        target.write_text(
            "name,group,x\na,g1,1\nb,g2,2\nc,g1,3\nd,g2,4\n", encoding="utf-8"
        )
        with make_server(allow_local_paths=tmp_path) as handle:
            status, reply = post(handle, "/jobs", {"jobs": [{
                "csv": str(target),
                "design": {
                    "weights": {"x": 1.0}, "sensitive": ["group"],
                    "id_column": "name", "k": 2,
                },
            }]})
            assert status == 202
            final = wait_for_batch(handle, reply["batch_id"])
            assert [row["status"] for row in final["jobs"]] == ["done"]

    def test_paths_outside_the_sandbox_rejected(self, tmp_path):
        sandbox = tmp_path / "allowed"
        sandbox.mkdir()
        (sandbox / "ok.csv").write_text(
            "name,x\na,1\nb,2\n", encoding="utf-8"
        )
        secret = tmp_path / "secret.csv"
        secret.write_text("name,x\na,1\n", encoding="utf-8")
        with make_server(allow_local_paths=sandbox) as handle:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(handle, "/jobs", {"jobs": [{
                    "csv": str(secret),
                    "design": {"weights": {"x": 1.0}, "sensitive": ["name"]},
                }]})
            assert excinfo.value.code == 400
            body = json.loads(excinfo.value.read())
            assert "outside the allowed directory" in body["error"]

    def test_dotdot_escape_rejected(self, tmp_path):
        sandbox = tmp_path / "allowed"
        sandbox.mkdir()
        secret = tmp_path / "secret.csv"
        secret.write_text("name,x\na,1\n", encoding="utf-8")
        with make_server(allow_local_paths=sandbox) as handle:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(handle, "/jobs", {"jobs": [{
                    "csv": str(sandbox / ".." / "secret.csv"),
                    "design": {"weights": {"x": 1.0}, "sensitive": ["name"]},
                }]})
            assert excinfo.value.code == 400

    def test_symlink_escaping_the_sandbox_rejected(self, tmp_path):
        sandbox = tmp_path / "allowed"
        sandbox.mkdir()
        secret = tmp_path / "secret.csv"
        secret.write_text("name,x\na,1\n", encoding="utf-8")
        link = sandbox / "innocent.csv"
        link.symlink_to(secret)
        with make_server(allow_local_paths=sandbox) as handle:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(handle, "/jobs", {"jobs": [{
                    "csv": str(link),
                    "design": {"weights": {"x": 1.0}, "sensitive": ["name"]},
                }]})
            assert excinfo.value.code == 400
            body = json.loads(excinfo.value.read())
            assert "outside the allowed directory" in body["error"]

    def test_boolean_true_no_longer_accepted(self):
        with pytest.raises(EngineError, match="directory"):
            make_server(allow_local_paths=True)

    def test_missing_sandbox_directory_rejected(self, tmp_path):
        with pytest.raises(EngineError, match="not a directory"):
            make_server(allow_local_paths=tmp_path / "does-not-exist")

    def test_fresh_token_survives_even_when_everything_else_is_pinned(self):
        """create() must never evict the session it just handed out."""
        from repro.app.session import DemoSession

        registry = SessionRegistry(max_sessions=1)
        registry.adopt(DemoSession(service=registry.service))  # pinned at cap
        token, session = registry.create()
        assert registry.get(token) is session  # token must be live


class TestSessionTTL:
    """Idle-time expiry beside the count cap; the pinned default survives."""

    @staticmethod
    def ticking(ttl, max_sessions=256):
        clock = {"now": 0.0}
        registry = SessionRegistry(
            max_sessions=max_sessions, session_ttl=ttl,
            clock=lambda: clock["now"],
        )
        return clock, registry

    def test_idle_sessions_expire(self):
        clock, registry = self.ticking(ttl=60.0)
        stale, _ = registry.create()
        clock["now"] = 30.0
        fresh, _ = registry.create()
        clock["now"] = 70.0  # stale idle 70s, fresh idle 40s
        assert set(registry.tokens()) == {fresh}
        assert registry.expired == 1
        with pytest.raises(Exception, match="unknown session token"):
            registry.get(stale)

    def test_a_lookup_resets_the_idle_clock(self):
        clock, registry = self.ticking(ttl=60.0)
        token, _ = registry.create()
        clock["now"] = 50.0
        registry.get(token)  # touched: idle clock restarts
        clock["now"] = 100.0  # 50s since the touch, 100s since creation
        assert registry.get(token) is not None
        assert registry.expired == 0

    def test_adopted_default_session_never_expires(self):
        from repro.app.session import DemoSession

        clock, registry = self.ticking(ttl=10.0)
        default = DemoSession(service=registry.service)
        pinned = registry.adopt(default)
        doomed, _ = registry.create()
        clock["now"] = 1000.0
        assert set(registry.tokens()) == {pinned}
        assert registry.get(pinned) is default
        assert registry.expired == 1  # only the unpinned session went

    def test_expiry_and_cap_count_separately(self):
        clock, registry = self.ticking(ttl=10.0, max_sessions=2)
        registry.create()
        registry.create()
        registry.create()  # cap eviction
        assert registry.evicted == 1
        clock["now"] = 20.0
        registry.tokens()  # lazy sweep
        assert registry.expired == 2
        assert registry.tokens() == {}

    def test_no_ttl_means_sessions_never_expire(self):
        clock, registry = self.ticking(ttl=None)
        token, _ = registry.create()
        clock["now"] = 1e9
        assert token in registry.tokens()

    def test_invalid_ttl_rejected(self):
        with pytest.raises(Exception, match="session_ttl"):
            SessionRegistry(session_ttl=0)

    def test_make_server_passes_the_ttl_through(self):
        with make_server(session_ttl=123.0) as handle:
            assert handle.registry.session_ttl == 123.0
