"""Tests for the ranking-facts CLI."""

import json

import pytest

from repro.app.cli import main
from repro.tabular import write_csv

CS_ARGS = [
    "--dataset", "cs-departments",
    "--weight", "PubCount=0.4",
    "--weight", "Faculty=0.4",
    "--weight", "GRE=0.2",
    "--sensitive", "DeptSizeBin",
    "--id-column", "DeptName",
]


class TestDatasets:
    def test_lists_builtins(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cs-departments" in out and "compas" in out


class TestInspect:
    def test_overview(self, capsys):
        assert main(["inspect", "--dataset", "cs-departments"]) == 0
        out = capsys.readouterr().out
        assert "GRE" in out and "categorical" in out

    def test_histogram_flag(self, capsys):
        code = main(
            ["inspect", "--dataset", "cs-departments", "--histogram", "GRE"]
        )
        assert code == 0
        assert "GRE (n=51)" in capsys.readouterr().out

    def test_csv_source(self, tmp_path, cs_table, capsys):
        path = tmp_path / "cs.csv"
        write_csv(cs_table, path)
        assert main(["inspect", "--csv", str(path)]) == 0
        assert "PubCount" in capsys.readouterr().out

    def test_unknown_dataset_fails_cleanly(self, capsys):
        assert main(["inspect", "--dataset", "imagenet"]) == 2
        assert "error:" in capsys.readouterr().err


class TestPreview:
    def test_prints_ranked_rows(self, capsys):
        assert main(["preview", *CS_ARGS, "--rows", "5"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].split() == ["rank", "score", "item"]
        assert len(out) == 6

    def test_bad_weight_syntax(self, capsys):
        code = main(["preview", "--dataset", "cs-departments",
                     "--weight", "PubCount", "--sensitive", "DeptSizeBin"])
        assert code == 2
        assert "name=value" in capsys.readouterr().err

    def test_non_numeric_weight(self, capsys):
        code = main(["preview", "--dataset", "cs-departments",
                     "--weight", "PubCount=abc", "--sensitive", "DeptSizeBin"])
        assert code == 2


class TestLabel:
    def test_text_format(self, capsys):
        assert main(["label", *CS_ARGS]) == 0
        out = capsys.readouterr().out
        assert "RANKING FACTS" in out and "Fairness" in out

    def test_detailed_format(self, capsys):
        assert main(["label", *CS_ARGS, "--format", "detailed"]) == 0
        assert "median" in capsys.readouterr().out

    def test_json_format_is_valid(self, capsys):
        assert main(["label", *CS_ARGS, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["dataset"] == "cs-departments"

    def test_html_format(self, capsys):
        assert main(["label", *CS_ARGS, "--format", "html"]) == 0
        assert capsys.readouterr().out.startswith("<!DOCTYPE html>")

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "label.json"
        code = main(["label", *CS_ARGS, "--format", "json",
                     "--output", str(target)])
        assert code == 0
        assert "wrote json label" in capsys.readouterr().out
        json.loads(target.read_text())

    def test_raw_flag(self, capsys):
        assert main(["label", *CS_ARGS, "--raw"]) == 0
        assert "identity" in capsys.readouterr().out

    def test_diversity_flag(self, capsys):
        assert main(["label", *CS_ARGS, "--diversity", "Region"]) == 0
        assert "Region" in capsys.readouterr().out

    def test_top_k_and_alpha(self, capsys):
        assert main(["label", *CS_ARGS, "--top-k", "5", "--alpha", "0.01"]) == 0
        assert "top-k: 5" in capsys.readouterr().out

    def test_missing_sensitive_fails(self, capsys):
        code = main(["label", "--dataset", "cs-departments",
                     "--weight", "GRE=1.0"])
        assert code == 2


class TestMitigate:
    def test_suggests_recipes(self, capsys):
        code = main(["mitigate", *CS_ARGS, "--protected", "small"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pass FA*IR" in out
        assert "GRE=" in out  # suggested recipes shift weight to GRE

    def test_suggestion_count_respected(self, capsys):
        code = main(["mitigate", *CS_ARGS, "--protected", "small",
                     "--suggestions", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "  1. " in out
        assert "  2. " not in out

    def test_unknown_protected_category_fails(self, capsys):
        code = main(["mitigate", *CS_ARGS, "--protected", "tiny"])
        assert code == 2


class TestMarkdownFormat:
    def test_markdown_label(self, capsys):
        assert main(["label", *CS_ARGS, "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Ranking Facts")
        assert "| attribute | weight |" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_dataset_and_csv_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["inspect", "--dataset", "compas", "--csv", "x.csv"])


class TestWorkerCommand:
    """The worker daemon subcommand and the remote backend's CLI plumbing."""

    def test_worker_parser_defaults(self):
        from repro.app.cli import build_parser

        args = build_parser().parse_args(["worker"])
        assert args.command == "worker"
        assert args.port == 8101
        assert args.backend == "vectorized"

    def test_worker_refuses_remote_backend_choice(self):
        with pytest.raises(SystemExit):
            main(["worker", "--backend", "remote"])

    def test_workers_from_requires_remote_backend(self, tmp_path, capsys):
        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps({"jobs": [{"dataset": "compas", "design": {
            "weights": {"age": 1.0}, "sensitive": ["race"],
        }}]}))
        code = main([
            "batch", "--spec", str(spec),
            "--trial-backend", "serial", "--workers-from", "env",
        ])
        assert code == 2
        assert "--trial-backend remote" in capsys.readouterr().err

    def test_workers_from_env_requires_the_variable(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_TRIAL_WORKERS", raising=False)
        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps({"jobs": [{"dataset": "compas", "design": {
            "weights": {"age": 1.0}, "sensitive": ["race"],
        }}]}))
        code = main([
            "batch", "--spec", str(spec),
            "--trial-backend", "remote", "--workers-from", "env",
        ])
        assert code == 2
        assert "REPRO_TRIAL_WORKERS" in capsys.readouterr().err

    def test_workers_from_missing_file_fails_cleanly(self, tmp_path, capsys):
        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps({"jobs": [{"dataset": "compas", "design": {
            "weights": {"age": 1.0}, "sensitive": ["race"],
        }}]}))
        code = main([
            "batch", "--spec", str(spec),
            "--trial-backend", "remote",
            "--workers-from", str(tmp_path / "nope.txt"),
        ])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_batch_runs_on_a_real_cluster_from_a_workers_file(
        self, tmp_path, capsys
    ):
        from repro.cluster.worker import make_worker

        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps({"jobs": [{
            "dataset": "cs-departments",
            "design": {
                "weights": {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
                "sensitive": ["DeptSizeBin"],
                "id_column": "DeptName",
                "monte_carlo_trials": 4,
                "monte_carlo_epsilons": [0.1],
            },
        }]}))
        with make_worker() as one, make_worker() as two:
            workers = tmp_path / "workers.txt"
            workers.write_text(f"{one.address}\n{two.address}\n")
            code = main([
                "batch", "--spec", str(spec), "--stats",
                "--trial-backend", "remote", "--workers-from", str(workers),
            ])
            out = capsys.readouterr().out
        assert code == 0
        assert "1/1 job(s) succeeded" in out
        assert "remote" in out


BATCH_SPEC = {"jobs": [{
    "dataset": "cs-departments",
    "design": {
        "weights": {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
        "sensitive": ["DeptSizeBin"],
        "id_column": "DeptName",
        "monte_carlo_trials": 4,
        "monte_carlo_epsilons": [0.1],
    },
}]}


class TestRegistryAndFleetCommands:
    """The fleet-facing subcommands: registry, fleet status, --registry."""

    def test_registry_parser_defaults(self):
        from repro.app.cli import build_parser

        args = build_parser().parse_args(["registry"])
        assert args.command == "registry"
        assert args.port == 8100

    def test_registry_flag_requires_remote_backend(self, tmp_path, capsys):
        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps(BATCH_SPEC))
        code = main([
            "batch", "--spec", str(spec),
            "--trial-backend", "serial",
            "--registry", "http://127.0.0.1:8100",
        ])
        assert code == 2
        assert "--trial-backend remote" in capsys.readouterr().err

    def test_batch_runs_on_a_registry_discovered_fleet(self, tmp_path, capsys):
        from repro.cluster.registry import make_registry
        from repro.cluster.worker import make_worker

        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps(BATCH_SPEC))
        with make_registry() as registry:
            with make_worker(register_url=registry.url):
                code = main([
                    "batch", "--spec", str(spec), "--stats",
                    "--trial-backend", "remote",
                    "--registry", registry.url,
                ])
                out = capsys.readouterr().out
        assert code == 0
        assert "1/1 job(s) succeeded" in out
        assert "remote" in out

    def test_fleet_status_needs_a_source(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_TRIAL_REGISTRY", raising=False)
        assert main(["fleet", "status"]) == 2
        assert "--registry" in capsys.readouterr().err

    def test_fleet_status_lists_registered_workers(self, capsys):
        from repro.cluster.registry import make_registry
        from repro.cluster.worker import make_worker

        with make_registry() as registry:
            with make_worker(register_url=registry.url) as worker:
                code = main(["fleet", "status", "--registry", registry.url])
                out = capsys.readouterr().out
        assert code == 0
        assert "1 worker(s)" in out
        assert worker.address in out

    def test_fleet_status_raw_is_json(self, capsys):
        from repro.cluster.registry import make_registry

        with make_registry() as registry:
            code = main([
                "fleet", "status", "--registry", registry.url, "--raw",
            ])
            out = capsys.readouterr().out
        assert code == 0
        assert json.loads(out)["registry"]["workers"]["count"] == 0

    def test_fleet_status_registry_from_the_environment(
        self, capsys, monkeypatch
    ):
        from repro.cluster.registry import make_registry

        with make_registry() as registry:
            monkeypatch.setenv("REPRO_TRIAL_REGISTRY", registry.url)
            assert main(["fleet", "status"]) == 0
            assert "0 worker(s)" in capsys.readouterr().out

    def test_fleet_status_unreachable_registry_fails_cleanly(self, capsys):
        from tests.cluster.faults import dead_address

        code = main([
            "fleet", "status", "--registry", f"http://{dead_address()}",
        ])
        assert code == 2
        assert "cannot fetch" in capsys.readouterr().err


class TestFleetFormatting:
    """Pure formatter coverage: dicts in, readable lines out."""

    CLUSTER = {
        "workers_alive": 1,
        "workers_configured": 2,
        "breakers_open": 1,
        "retries_spent": 3,
        "retry_budget": None,
        "budget_exhausted_runs": 0,
        "chunks_remote": 8,
        "chunks_failed_over": 2,
        "chunks_recovered_locally": 0,
        "workers": [
            {
                "address": "127.0.0.1:8101", "source": "registry",
                "chunks": 8, "failures": 0,
                "breaker": {"state": "closed", "retry_in": 0.0},
            },
            {
                "address": "127.0.0.1:8102", "source": "static",
                "chunks": 0, "failures": 3,
                "breaker": {"state": "open", "retry_in": 12.5},
            },
        ],
        "membership": {
            "registry": "http://127.0.0.1:8100",
            "workers_joined": 3, "workers_left": 1, "poll_failures": 0,
        },
    }

    def test_fleet_cluster_view_shows_breakers_and_membership(self):
        from repro.app.cli import _format_fleet_cluster

        text = "\n".join(
            _format_fleet_cluster("http://127.0.0.1:8000", self.CLUSTER)
        )
        assert "1/2 worker(s) alive" in text
        assert "1 breaker(s) open" in text
        assert "open" in text and "reprobe in 12.5s" in text
        assert "3 joined, 1 left" in text

    def test_fleet_cluster_view_without_a_cluster(self):
        from repro.app.cli import _format_fleet_cluster

        text = "\n".join(_format_fleet_cluster("http://x:1", None))
        assert "no remote trial cluster" in text

    def test_stats_summary_includes_breakers_and_membership(self):
        from repro.app.cli import _format_stats

        text = _format_stats({
            "executor": {
                "jobs_submitted": 1, "batches_submitted": 1,
                "trial_backend_effective": "remote",
                "trial_cluster": self.CLUSTER,
            },
        })
        assert "1 breaker(s) open" in text
        assert "membership via http://127.0.0.1:8100" in text
