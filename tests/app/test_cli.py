"""Tests for the ranking-facts CLI."""

import json

import pytest

from repro.app.cli import main
from repro.tabular import write_csv

CS_ARGS = [
    "--dataset", "cs-departments",
    "--weight", "PubCount=0.4",
    "--weight", "Faculty=0.4",
    "--weight", "GRE=0.2",
    "--sensitive", "DeptSizeBin",
    "--id-column", "DeptName",
]


class TestDatasets:
    def test_lists_builtins(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cs-departments" in out and "compas" in out


class TestInspect:
    def test_overview(self, capsys):
        assert main(["inspect", "--dataset", "cs-departments"]) == 0
        out = capsys.readouterr().out
        assert "GRE" in out and "categorical" in out

    def test_histogram_flag(self, capsys):
        code = main(
            ["inspect", "--dataset", "cs-departments", "--histogram", "GRE"]
        )
        assert code == 0
        assert "GRE (n=51)" in capsys.readouterr().out

    def test_csv_source(self, tmp_path, cs_table, capsys):
        path = tmp_path / "cs.csv"
        write_csv(cs_table, path)
        assert main(["inspect", "--csv", str(path)]) == 0
        assert "PubCount" in capsys.readouterr().out

    def test_unknown_dataset_fails_cleanly(self, capsys):
        assert main(["inspect", "--dataset", "imagenet"]) == 2
        assert "error:" in capsys.readouterr().err


class TestPreview:
    def test_prints_ranked_rows(self, capsys):
        assert main(["preview", *CS_ARGS, "--rows", "5"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].split() == ["rank", "score", "item"]
        assert len(out) == 6

    def test_bad_weight_syntax(self, capsys):
        code = main(["preview", "--dataset", "cs-departments",
                     "--weight", "PubCount", "--sensitive", "DeptSizeBin"])
        assert code == 2
        assert "name=value" in capsys.readouterr().err

    def test_non_numeric_weight(self, capsys):
        code = main(["preview", "--dataset", "cs-departments",
                     "--weight", "PubCount=abc", "--sensitive", "DeptSizeBin"])
        assert code == 2


class TestLabel:
    def test_text_format(self, capsys):
        assert main(["label", *CS_ARGS]) == 0
        out = capsys.readouterr().out
        assert "RANKING FACTS" in out and "Fairness" in out

    def test_detailed_format(self, capsys):
        assert main(["label", *CS_ARGS, "--format", "detailed"]) == 0
        assert "median" in capsys.readouterr().out

    def test_json_format_is_valid(self, capsys):
        assert main(["label", *CS_ARGS, "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["dataset"] == "cs-departments"

    def test_html_format(self, capsys):
        assert main(["label", *CS_ARGS, "--format", "html"]) == 0
        assert capsys.readouterr().out.startswith("<!DOCTYPE html>")

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "label.json"
        code = main(["label", *CS_ARGS, "--format", "json",
                     "--output", str(target)])
        assert code == 0
        assert "wrote json label" in capsys.readouterr().out
        json.loads(target.read_text())

    def test_raw_flag(self, capsys):
        assert main(["label", *CS_ARGS, "--raw"]) == 0
        assert "identity" in capsys.readouterr().out

    def test_diversity_flag(self, capsys):
        assert main(["label", *CS_ARGS, "--diversity", "Region"]) == 0
        assert "Region" in capsys.readouterr().out

    def test_top_k_and_alpha(self, capsys):
        assert main(["label", *CS_ARGS, "--top-k", "5", "--alpha", "0.01"]) == 0
        assert "top-k: 5" in capsys.readouterr().out

    def test_missing_sensitive_fails(self, capsys):
        code = main(["label", "--dataset", "cs-departments",
                     "--weight", "GRE=1.0"])
        assert code == 2


class TestMitigate:
    def test_suggests_recipes(self, capsys):
        code = main(["mitigate", *CS_ARGS, "--protected", "small"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pass FA*IR" in out
        assert "GRE=" in out  # suggested recipes shift weight to GRE

    def test_suggestion_count_respected(self, capsys):
        code = main(["mitigate", *CS_ARGS, "--protected", "small",
                     "--suggestions", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "  1. " in out
        assert "  2. " not in out

    def test_unknown_protected_category_fails(self, capsys):
        code = main(["mitigate", *CS_ARGS, "--protected", "tiny"])
        assert code == 2


class TestMarkdownFormat:
    def test_markdown_label(self, capsys):
        assert main(["label", *CS_ARGS, "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Ranking Facts")
        assert "| attribute | weight |" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_dataset_and_csv_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["inspect", "--dataset", "compas", "--csv", "x.csv"])


class TestWorkerCommand:
    """The worker daemon subcommand and the remote backend's CLI plumbing."""

    def test_worker_parser_defaults(self):
        from repro.app.cli import build_parser

        args = build_parser().parse_args(["worker"])
        assert args.command == "worker"
        assert args.port == 8101
        assert args.backend == "vectorized"

    def test_worker_refuses_remote_backend_choice(self):
        with pytest.raises(SystemExit):
            main(["worker", "--backend", "remote"])

    def test_workers_from_requires_remote_backend(self, tmp_path, capsys):
        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps({"jobs": [{"dataset": "compas", "design": {
            "weights": {"age": 1.0}, "sensitive": ["race"],
        }}]}))
        code = main([
            "batch", "--spec", str(spec),
            "--trial-backend", "serial", "--workers-from", "env",
        ])
        assert code == 2
        assert "--trial-backend remote" in capsys.readouterr().err

    def test_workers_from_env_requires_the_variable(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_TRIAL_WORKERS", raising=False)
        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps({"jobs": [{"dataset": "compas", "design": {
            "weights": {"age": 1.0}, "sensitive": ["race"],
        }}]}))
        code = main([
            "batch", "--spec", str(spec),
            "--trial-backend", "remote", "--workers-from", "env",
        ])
        assert code == 2
        assert "REPRO_TRIAL_WORKERS" in capsys.readouterr().err

    def test_workers_from_missing_file_fails_cleanly(self, tmp_path, capsys):
        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps({"jobs": [{"dataset": "compas", "design": {
            "weights": {"age": 1.0}, "sensitive": ["race"],
        }}]}))
        code = main([
            "batch", "--spec", str(spec),
            "--trial-backend", "remote",
            "--workers-from", str(tmp_path / "nope.txt"),
        ])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_batch_runs_on_a_real_cluster_from_a_workers_file(
        self, tmp_path, capsys
    ):
        from repro.cluster.worker import make_worker

        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps({"jobs": [{
            "dataset": "cs-departments",
            "design": {
                "weights": {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
                "sensitive": ["DeptSizeBin"],
                "id_column": "DeptName",
                "monte_carlo_trials": 4,
                "monte_carlo_epsilons": [0.1],
            },
        }]}))
        with make_worker() as one, make_worker() as two:
            workers = tmp_path / "workers.txt"
            workers.write_text(f"{one.address}\n{two.address}\n")
            code = main([
                "batch", "--spec", str(spec), "--stats",
                "--trial-backend", "remote", "--workers-from", str(workers),
            ])
            out = capsys.readouterr().out
        assert code == 0
        assert "1/1 job(s) succeeded" in out
        assert "remote" in out
