"""Tests for repro.app.design."""

import pytest

from repro.app import attribute_preview, histogram_ascii, suggest_weights
from repro.errors import RankingFactsError
from repro.tabular import Table, histogram


class TestAttributePreview:
    def test_numeric_entries(self, small_table):
        entries = {e["name"]: e for e in attribute_preview(small_table)}
        assert entries["x"]["kind"] == "numeric"
        assert entries["x"]["min"] == 1.0
        assert entries["x"]["max"] == 6.0

    def test_categorical_entries(self, small_table):
        entries = {e["name"]: e for e in attribute_preview(small_table)}
        assert entries["group"]["num_categories"] == 2
        assert entries["group"]["categories"] == ["g1", "g2"]

    def test_missing_counts(self, missing_table):
        entries = {e["name"]: e for e in attribute_preview(missing_table)}
        assert entries["x"]["missing"] == 1
        assert entries["cat"]["missing"] == 1

    def test_categories_truncated_at_eight(self):
        t = Table.from_dict({"c": [f"cat{i}" for i in range(20)]})
        entry = attribute_preview(t)[0]
        assert entry["num_categories"] == 20
        assert len(entry["categories"]) == 8


class TestHistogramAscii:
    def test_bars_scale_to_peak(self):
        t = Table.from_dict({"x": [1.0, 1.0, 1.0, 2.0]})
        art = histogram_ascii(histogram(t.column("x"), bins=2), width=10)
        lines = art.splitlines()
        assert lines[0] == "x (n=4)"
        assert lines[1].count("#") == 10  # the full-peak bin
        assert 0 < lines[2].count("#") < 10

    def test_width_validation(self):
        t = Table.from_dict({"x": [1.0, 2.0]})
        with pytest.raises(RankingFactsError):
            histogram_ascii(histogram(t.column("x")), width=0)

    def test_counts_appear(self):
        t = Table.from_dict({"x": [1.0, 2.0, 3.0]})
        art = histogram_ascii(histogram(t.column("x"), bins=3))
        assert art.rstrip().endswith("1")


class TestSuggestWeights:
    def test_equal_scheme(self, small_table):
        weights = suggest_weights(small_table, ["x", "y"])
        assert weights == {"x": 0.5, "y": 0.5}

    def test_variance_scheme_sums_to_one(self, small_table):
        weights = suggest_weights(small_table, ["x", "y"], scheme="variance")
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_variance_prefers_dispersed_attributes(self):
        t = Table.from_dict(
            {"flat": [100.0, 100.1, 99.9], "spread": [1.0, 100.0, 50.0]}
        )
        weights = suggest_weights(t, ["flat", "spread"], scheme="variance")
        assert weights["spread"] > weights["flat"]

    def test_empty_attributes_rejected(self, small_table):
        with pytest.raises(RankingFactsError):
            suggest_weights(small_table, [])

    def test_unknown_scheme_rejected(self, small_table):
        with pytest.raises(RankingFactsError, match="unknown weight scheme"):
            suggest_weights(small_table, ["x"], scheme="random")

    def test_unknown_attribute_rejected(self, small_table):
        from repro.errors import MissingColumnError

        with pytest.raises(MissingColumnError):
            suggest_weights(small_table, ["zz"])
