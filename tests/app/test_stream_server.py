"""Tests for the server's SSE streaming front end.

The wire-format satellites live here: SSE framing (including
multi-line ``data:`` reassembly), byte-identity of the streamed final
label against ``GET /label``, widget events arriving *before* the
label on a Monte-Carlo-heavy design, admission control past
``max_streams``, a disconnecting client releasing its slot, and
graceful shutdown draining in-flight streams.
"""

import http.client
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.app import DemoSession
from repro.app.server import _StreamGate, make_server
from repro.app.sse import format_sse_comment, format_sse_event


def _mc_session(trials: int = 120) -> DemoSession:
    session = DemoSession()
    session.load_builtin("cs-departments")
    session.design_scoring(
        weights={"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
        sensitive_attribute="DeptSizeBin",
        id_column="DeptName",
    )
    session.set_monte_carlo(trials=trials)
    return session


def parse_sse(body: str):
    """Decode an SSE body into ``(event, data)`` pairs, skipping
    comments; consecutive ``data:`` lines re-join with newlines per
    the spec."""
    frames = []
    for block in body.split("\n\n"):
        if not block.strip() or block.startswith(":"):
            continue
        event = None
        data_lines = []
        for line in block.split("\n"):
            if line.startswith("event: "):
                event = line[len("event: "):]
            elif line.startswith("data: "):
                data_lines.append(line[len("data: "):])
        if event is not None:
            frames.append((event, "\n".join(data_lines)))
    return frames


def open_stream(handle, path, timeout=60):
    conn = http.client.HTTPConnection(*handle.address, timeout=timeout)
    conn.request("GET", path)
    return conn, conn.getresponse()


class TestSSEFormat:
    def test_single_line_event(self):
        assert format_sse_event("widget", "hello") == (
            b"event: widget\ndata: hello\n\n"
        )

    def test_multi_line_data_splits_per_spec(self):
        payload = json.dumps({"a": 1}, indent=2)
        raw = format_sse_event("label", payload).decode()
        frames = parse_sse(raw)
        assert frames == [("label", payload)]  # round-trips exactly

    def test_comment_frame(self):
        assert format_sse_comment("ping") == b": ping\n\n"


class TestStreamGate:
    def test_cap_enforced(self):
        gate = _StreamGate(max_streams=2)
        assert gate.acquire() and gate.acquire()
        assert not gate.acquire()  # at the cap
        gate.release()
        assert gate.acquire()
        assert gate.active == 2

    def test_draining_rejects_new_streams(self):
        gate = _StreamGate(max_streams=4)
        gate.draining.set()
        assert not gate.acquire()
        assert gate.active == 0

    def test_wait_idle(self):
        gate = _StreamGate(max_streams=4)
        assert gate.wait_idle(0.1)  # already idle
        gate.acquire()
        assert not gate.wait_idle(0.2)
        threading.Timer(0.1, gate.release).start()
        assert gate.wait_idle(5.0)


class TestLabelStream:
    @pytest.fixture(scope="class")
    def served(self):
        with make_server(_mc_session()) as handle:
            yield handle

    def test_headers_and_framing(self, served):
        conn, resp = open_stream(served, "/label.stream")
        assert resp.status == 200
        assert resp.getheader("Content-Type").startswith("text/event-stream")
        body = resp.read().decode()
        conn.close()
        frames = parse_sse(body)
        assert all(event in ("widget", "label", "error") for event, _ in frames)
        # every data payload is valid JSON after multi-line reassembly
        for _, data in frames:
            json.loads(data)

    def test_widget_events_precede_the_label(self):
        # a fresh server: the first stream must be a *live* build, so
        # the cheapest-first ordering (stability last) is observable
        with make_server(_mc_session()) as handle:
            conn, resp = open_stream(handle, "/label.stream")
            frames = parse_sse(resp.read().decode())
            conn.close()
        kinds = [event for event, _ in frames]
        assert kinds[-1] == "label"
        assert kinds.count("widget") == 5
        assert kinds.index("widget") < kinds.index("label")
        widgets = [json.loads(data) for event, data in frames
                   if event == "widget"]
        assert all(w["streamed"] for w in widgets)  # live, not replayed
        names = [w["name"] for w in widgets]
        assert names[-1] == "stability"  # the MC-heavy widget comes last

    def test_streamed_label_byte_identical_to_get_label(self, served):
        conn, resp = open_stream(served, "/label.stream")
        frames = parse_sse(resp.read().decode())
        conn.close()
        final = json.loads(frames[-1][1])
        streamed = json.dumps(final["label"], indent=2)
        with urllib.request.urlopen(served.url + "/label", timeout=30) as r:
            plain = r.read().decode()
        assert streamed == plain

    def test_session_scoped_route(self, served):
        request = urllib.request.Request(
            served.url + "/session",
            data=json.dumps({"dataset": "cs-departments", "design": {
                "weights": {"PubCount": 1.0}, "sensitive": "DeptSizeBin",
                "id_column": "DeptName",
            }}).encode(),
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            token = json.loads(response.read())["token"]
        conn, resp = open_stream(served, f"/session/{token}/label.stream")
        frames = parse_sse(resp.read().decode())
        conn.close()
        assert frames[-1][0] == "label"

    def test_jobs_stream_carries_job_ids(self, served):
        conn = http.client.HTTPConnection(*served.address, timeout=60)
        body = json.dumps({"jobs": [
            {"dataset": "cs-departments", "design": {
                "weights": {"PubCount": 1.0}, "sensitive": "DeptSizeBin",
                "id_column": "DeptName",
            }},
        ]}).encode()
        conn.request("POST", "/jobs?stream=1", body=body,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        assert resp.status == 200
        assert resp.getheader("Content-Type").startswith("text/event-stream")
        frames = parse_sse(resp.read().decode())
        conn.close()
        labels = [json.loads(d) for e, d in frames if e == "label"]
        assert [l["job_id"] for l in labels] == ["job-0"]

    def test_jobs_without_stream_still_returns_202(self, served):
        request = urllib.request.Request(
            served.url + "/jobs",
            data=json.dumps({"jobs": [{"dataset": "cs-departments", "design": {
                "weights": {"PubCount": 1.0}, "sensitive": "DeptSizeBin",
                "id_column": "DeptName",
            }}]}).encode(),
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 202
            assert "batch_id" in json.loads(response.read())


class TestAdmissionControl:
    def test_past_the_cap_is_503_not_queued(self):
        with make_server(_mc_session(), max_streams=2) as handle:
            gate = handle.stream_gate
            assert gate.acquire() and gate.acquire()  # fill the cap
            try:
                started = time.perf_counter()
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(
                        handle.url + "/label.stream", timeout=10
                    )
                assert excinfo.value.code == 503
                assert time.perf_counter() - started < 5.0  # immediate
                detail = json.loads(excinfo.value.read())
                assert "too many concurrent streams" in detail["error"]
            finally:
                gate.release()
                gate.release()
            # with slots free the same request streams fine
            conn, resp = open_stream(handle, "/label.stream")
            assert resp.status == 200
            resp.read()
            conn.close()

    def test_client_disconnect_releases_the_slot(self):
        # enough trials that the stream is still mid-build when we bail;
        # a raw socket because http.client detaches from Connection:
        # close responses, hiding the socket we need to sever
        with make_server(_mc_session(trials=4000), max_streams=2) as handle:
            sock = socket.create_connection(handle.address, timeout=10)
            sock.sendall(
                b"GET /label.stream HTTP/1.1\r\nHost: test\r\n\r\n"
            )
            assert sock.recv(64)  # response head: the stream is live
            assert handle.stream_gate.active == 1
            sock.shutdown(socket.SHUT_RDWR)
            sock.close()
            # the next heartbeat/event write hits EPIPE and the handler
            # must release its admission slot
            deadline = time.monotonic() + 30
            while handle.stream_gate.active and time.monotonic() < deadline:
                time.sleep(0.05)
            assert handle.stream_gate.active == 0


class TestGracefulShutdown:
    def test_stop_drains_open_streams(self):
        handle = make_server(_mc_session(trials=4000), max_streams=4)
        handle.__enter__()
        conn, resp = open_stream(handle, "/label.stream")
        resp.read(1)
        stopper = threading.Thread(target=handle.stop, kwargs={"grace": 10})
        stopper.start()
        # the open stream is told the server is draining, then closed
        body = resp.read().decode()
        conn.close()
        stopper.join(timeout=30)
        assert not stopper.is_alive()
        assert handle.stream_gate.draining.is_set()
        assert "draining" in body or body == ""

    def test_stop_is_idempotent_and_rejects_new_streams(self):
        handle = make_server(_mc_session(), max_streams=4)
        handle.__enter__()
        url = handle.url
        handle.stop()
        handle.stop()  # second call is a no-op, not an error
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(url + "/label.stream", timeout=5)
