"""Cross-process safety: one store file, concurrent readers/writers.

The store's whole point is to be shared — by a restarted server, and by
several server processes on one host.  These tests assert the WAL-mode
guarantees with *real* concurrency: a child process hammers the same
file while the parent reads and writes through its own connection, and
every label written by either side must come back intact.
"""

import os
import pickle
import subprocess
import sys
import threading
from pathlib import Path

import repro
from repro.store.store import PICKLE_PROTOCOL, LabelStore

#: the child must import repro however the parent did (editable install
#: or a bare PYTHONPATH=src checkout)
CHILD_ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        [str(Path(repro.__file__).parents[1]), os.environ.get("PYTHONPATH", "")]
    ),
}


def fp(prefix: str, index: int) -> str:
    return (f"{prefix}{index:04d}" + "0" * 64)[:64]


#: the child's half of the workload: write N labels, read the parent's
CHILD_SCRIPT = """
import pickle, sys
from repro.store.store import LabelStore

path, count = sys.argv[1], int(sys.argv[2])
with LabelStore(path) as store:
    for index in range(count):
        key = (f"child{index:04d}" + "0" * 64)[:64]
        store.put(key, {"from": "child", "index": index, "pad": "x" * 256})
    # read whatever the parent has managed to write so far — these must
    # unpickle cleanly or not be visible at all, never half-written
    seen = 0
    for index in range(count):
        key = (f"parent{index:04d}" + "0" * 64)[:64]
        value = store.get(key)
        if value is not None:
            assert value["from"] == "parent", value
            assert value["index"] == index, value
            seen += 1
print("child-ok", seen)
"""

COUNT = 25


class TestTwoProcesses:
    def test_concurrent_writers_no_corruption(self, tmp_path):
        path = tmp_path / "shared.db"
        parent = LabelStore(path)
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SCRIPT, str(path), str(COUNT)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=CHILD_ENV,
        )
        # write the parent's labels while the child writes its own
        for index in range(COUNT):
            parent.put(
                fp("parent", index),
                {"from": "parent", "index": index, "pad": "y" * 256},
            )
        out, err = child.communicate(timeout=60)
        assert child.returncode == 0, f"child failed:\n{out}\n{err}"
        assert "child-ok" in out

        # every label from both processes is present and intact
        for index in range(COUNT):
            assert parent.get(fp("parent", index))["index"] == index
            child_value = parent.get(fp("child", index))
            assert child_value == {
                "from": "child", "index": index, "pad": "x" * 256,
            }
        assert len(parent) == 2 * COUNT
        parent.close()

    def test_wal_mode_is_actually_on(self, tmp_path):
        with LabelStore(tmp_path / "wal.db") as store:
            mode = store._connection.execute(
                "PRAGMA journal_mode"
            ).fetchone()[0]
            assert mode.lower() == "wal"

    def test_second_connection_sees_first_writes(self, tmp_path):
        path = tmp_path / "pair.db"
        writer = LabelStore(path)
        reader = LabelStore(path)
        writer.put(fp("w", 1), "written by the first connection")
        assert reader.get(fp("w", 1)) == "written by the first connection"
        # and byte-identically so
        assert reader.get_bytes(fp("w", 1)) == pickle.dumps(
            "written by the first connection", protocol=PICKLE_PROTOCOL
        )
        writer.close()
        reader.close()


class TestTwoThreadsOneStore:
    def test_shared_instance_is_thread_safe(self, tmp_path):
        store = LabelStore(tmp_path / "threads.db")
        errors = []

        def hammer(prefix):
            try:
                for index in range(50):
                    store.put(fp(prefix, index), {"p": prefix, "i": index})
                    assert store.get(fp(prefix, index)) == {
                        "p": prefix, "i": index,
                    }
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(prefix,))
            for prefix in ("aa", "bb", "cc", "dd")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(store) == 200
        store.close()
