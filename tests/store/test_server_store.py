"""The HTTP archive routes and the restart warm-hit contract.

These are the acceptance tests for the durable store's server face:
``GET /labels`` (+ fingerprint and diff forms) against a real server,
and a server "restart" — a second ``make_server`` over the same store
file — whose first label fetch must be an L2 hit serving byte-identical
label JSON.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.app.server import make_server

DESIGN = {
    "weights": {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
    "sensitive": ["DeptSizeBin"],
    "id_column": "DeptName",
    "monte_carlo_trials": 5,
    "monte_carlo_epsilons": [0.1],
}

SHIFTED_DESIGN = {**DESIGN, "weights": {"PubCount": 0.7, "Faculty": 0.1, "GRE": 0.2}}


def get(handle, path):
    with urllib.request.urlopen(handle.url + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def post(handle, path, body):
    request = urllib.request.Request(
        handle.url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def run_job(handle, design):
    """Submit one cs-departments job and wait for it; returns the row."""
    _, reply = post(handle, "/jobs", {
        "jobs": [{"dataset": "cs-departments", "design": design}],
    })
    import time

    deadline = time.time() + 30
    while time.time() < deadline:
        _, status = get(handle, f"/jobs/{reply['batch_id']}")
        if status["done"]:
            return status["jobs"][0]
        time.sleep(0.05)
    raise AssertionError("batch did not finish in time")


@pytest.fixture()
def stored(tmp_path):
    """A server with a store that has two labels archived."""
    path = str(tmp_path / "labels.db")
    with make_server(store_path=path) as handle:
        first = run_job(handle, DESIGN)
        second = run_job(handle, SHIFTED_DESIGN)
        yield handle, path, first["fingerprint"], second["fingerprint"]


class TestArchiveRoutes:
    def test_listing(self, stored):
        handle, _, fp_a, fp_b = stored
        _, body = get(handle, "/labels")
        assert body["count"] == 2
        assert {row["fingerprint"] for row in body["labels"]} == {fp_a, fp_b}
        assert all(
            row["dataset_name"] == "cs-departments" for row in body["labels"]
        )

    def test_single_label_with_provenance(self, stored):
        handle, _, fp_a, _ = stored
        _, body = get(handle, f"/labels/{fp_a}")
        assert body["fingerprint"] == fp_a
        assert body["label"]["dataset"] == "cs-departments"
        assert body["provenance"]["dataset_name"] == "cs-departments"
        assert body["provenance"]["monte_carlo_trials"] == 5

    def test_prefix_lookup(self, stored):
        handle, _, fp_a, _ = stored
        _, body = get(handle, f"/labels/{fp_a[:12]}")
        assert body["fingerprint"] == fp_a

    def test_unknown_fingerprint_404(self, stored):
        handle, _, _, _ = stored
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(handle, "/labels/feedfacefeedface")
        assert excinfo.value.code == 404

    def test_diff_reports_weight_drift(self, stored):
        handle, _, fp_a, fp_b = stored
        _, body = get(handle, f"/labels/{fp_a}/diff/{fp_b}")
        assert body["before"] == fp_a and body["after"] == fp_b
        assert body["diff"]["weight_changes"]["PubCount"] == [0.4, 0.7]
        assert any("weight PubCount" in line for line in body["summary"])

    def test_no_store_is_a_clear_400(self):
        with make_server() as handle:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(handle, "/labels")
            assert excinfo.value.code == 400
            assert "--store" in json.loads(excinfo.value.read())["error"]


class TestRestartWarmHit:
    def test_second_server_serves_the_stored_label_from_l2(self, tmp_path):
        path = str(tmp_path / "labels.db")
        with make_server(store_path=path) as handle:
            first_row = run_job(handle, DESIGN)
            assert first_row["cached"] is False
            _, first_label = get(handle, f"/labels/{first_row['fingerprint']}")

        # restart: a fresh server process-equivalent on the same file
        with make_server(store_path=path) as reborn:
            row = run_job(reborn, DESIGN)
            assert row["fingerprint"] == first_row["fingerprint"]
            assert row["cached"] is True  # no rebuild happened
            _, stats = get(reborn, "/engine/stats")
            assert stats["tiers"]["l2_hits"] == 1
            assert stats["tiers"]["promotions"] == 1
            assert stats["tiers"]["builds"] == 0
            assert stats["service"]["builds"] == 0
            # the archived label is byte-identical JSON across restarts
            _, second_label = get(reborn, f"/labels/{row['fingerprint']}")
            assert second_label["label"] == first_label["label"]

    def test_stats_expose_all_tier_counters(self, stored):
        handle, _, _, _ = stored
        _, stats = get(handle, "/engine/stats")
        tiers = stats["tiers"]
        for counter in (
            "l1_hits", "l1_misses", "l2_hits", "l2_misses",
            "promotions", "builds", "writes",
        ):
            assert counter in tiers
        assert stats["store"]["labels"] == 2
        assert stats["store"]["puts"] == 2
