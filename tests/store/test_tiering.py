"""Tests for repro.store.tiering: the L1-over-L2 routing and counters."""

import threading

from repro.engine.cache import LabelCache
from repro.store.store import LabelStore
from repro.store.tiering import TieredLabelCache


def make_tiers(tmp_path, **store_kwargs):
    store = LabelStore(tmp_path / "tier.db", **store_kwargs)
    return TieredLabelCache(LabelCache(max_size=8), store)


class TestTierRouting:
    def test_build_then_l1_hit(self, tmp_path):
        tiers = make_tiers(tmp_path)
        value, tier = tiers.get_or_build("k", lambda: ("built", None))
        assert (value, tier) == ("built", "build")
        value, tier = tiers.get_or_build("k", lambda: ("never", None))
        assert (value, tier) == ("built", "l1")
        stats = tiers.stats()
        assert stats["l1_hits"] == 1
        assert stats["builds"] == 1
        assert stats["writes"] == 1
        tiers.l2.close()

    def test_l2_hit_promotes_into_l1(self, tmp_path):
        first = make_tiers(tmp_path)
        first.get_or_build("k", lambda: ("durable", None))
        first.l2.close()

        # a fresh process: empty L1, same store file
        fresh = make_tiers(tmp_path)
        value, tier = fresh.get_or_build("k", lambda: ("never built", None))
        assert (value, tier) == ("durable", "l2")
        # promotion happened: the next lookup is pure memory
        value, tier = fresh.get_or_build("k", lambda: ("never built", None))
        assert (value, tier) == ("durable", "l1")
        stats = fresh.stats()
        assert stats["l2_hits"] == 1
        assert stats["promotions"] == 1
        assert stats["builds"] == 0
        fresh.l2.close()

    def test_build_writes_through_to_both_tiers(self, tmp_path):
        tiers = make_tiers(tmp_path)
        tiers.get_or_build("k", lambda: ({"big": "label"}, None))
        assert tiers.l1.get("k") == {"big": "label"}
        assert tiers.l2.get("k") == {"big": "label"}
        tiers.l2.close()

    def test_distinct_keys_are_distinct_entries(self, tmp_path):
        tiers = make_tiers(tmp_path)
        tiers.get_or_build("a", lambda: (1, None))
        tiers.get_or_build("b", lambda: (2, None))
        assert tiers.stats()["builds"] == 2
        assert len(tiers.l2) == 2
        tiers.l2.close()


class TestSingleFlight:
    def test_thundering_herd_builds_once_and_writes_once(self, tmp_path):
        tiers = make_tiers(tmp_path)
        builds = []
        barrier = threading.Barrier(8)
        results = []

        def build():
            builds.append(1)
            return "value", None

        def worker():
            barrier.wait()
            results.append(tiers.get_or_build("hot", build))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(builds) == 1
        assert {value for value, _ in results} == {"value"}
        # exactly one thread saw the build; the waiters were L1 hits
        tiers_stats = tiers.stats()
        assert tiers_stats["builds"] == 1
        assert tiers_stats["writes"] == 1
        assert tiers_stats["l1_hits"] == 7
        # only the building thread touched the store at all
        assert tiers.l2.stats()["gets"] == 1
        tiers.l2.close()
