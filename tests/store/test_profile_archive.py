"""The durable profile archive: round trips, GC order, migration, prefixes.

Profiles share the trace archive's file, TTL, and ``max_bytes`` budget;
under pressure they are the *first* casualties — diagnostics die before
the traces they explain, and traces die before labels.  Ambiguous
prefix resolution (traces and profiles both) must name its candidates
so the CLI can list them.
"""

import json
import sqlite3

import pytest

from repro.errors import StoreError
from repro.store.schema import DDL, MIGRATIONS, SCHEMA_VERSION
from repro.store.store import LabelStore, StoredProfile


def fp(seed: str) -> str:
    return (seed * 64)[:64]


def tid(seed: str) -> str:
    return (seed * 32)[:32]


def pid(seed: str) -> str:
    return (seed * 32)[:32]


def sample_report(samples: int = 5) -> dict:
    return {
        "source": "server",
        "started_at": 100.0,
        "duration": 2.0,
        "hz": 97.0,
        "samples": samples,
        "stacks": {"a.py:main;a.py:hot": samples},
        "spans": {"engine.label": {"samples": samples, "frames": {"a.py:hot": samples}}},
    }


def put_profile(store, profile_id, **overrides):
    kwargs = {
        "source": "server",
        "started_at": 100.0,
        "duration": 2.0,
        "hz": 97.0,
        "sample_count": 5,
        "report": sample_report(),
        "trace_id": None,
    }
    kwargs.update(overrides)
    return store.put_profile(profile_id, **kwargs)


def put_trace(store, trace_id, **overrides):
    kwargs = {
        "root_name": "http.request",
        "status": "ok",
        "started_at": 100.0,
        "duration": 1.5,
        "spans": [{"name": "root", "trace_id": trace_id}],
        "sampled": "slow",
    }
    kwargs.update(overrides)
    return store.put_trace(trace_id, **kwargs)


class FakeClock:
    def __init__(self, now: float = 1_000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def store(tmp_path):
    with LabelStore(tmp_path / "labels.db") as open_store:
        yield open_store


class TestRoundTrip:
    def test_put_get(self, store):
        put_profile(store, pid("a"), trace_id=tid("1"))
        record = store.get_profile(pid("a"))
        assert isinstance(record, StoredProfile)
        assert record.profile_id == pid("a")
        assert record.trace_id == tid("1")
        assert record.source == "server"
        assert record.sample_count == 5
        assert record.report == sample_report()

    def test_miss_is_none(self, store):
        assert store.get_profile(pid("9")) is None

    def test_payload_is_canonical_json(self, store):
        put_profile(store, pid("a"))
        record = store.get_profile(pid("a"))
        assert record.payload == json.dumps(
            sample_report(), sort_keys=True,
            separators=(",", ":"), ensure_ascii=True,
        ).encode("ascii")

    def test_summary_is_json_safe_without_payload(self, store):
        put_profile(store, pid("a"))
        summary = store.get_profile(pid("a")).summary()
        json.dumps(summary)
        assert "payload" not in summary
        assert summary["sample_count"] == 5

    def test_listing_newest_first(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", clock=clock) as store:
            put_profile(store, pid("a"))
            clock.advance(5)
            put_profile(store, pid("b"))
            records = store.profile_records()
            assert [r["profile_id"] for r in records] == [pid("b"), pid("a")]
            assert all("payload" not in r for r in records)

    def test_profile_for_trace_returns_newest(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", clock=clock) as store:
            put_profile(store, pid("a"), trace_id=tid("1"))
            clock.advance(5)
            put_profile(store, pid("b"), trace_id=tid("1"))
            linked = store.profile_for_trace(tid("1"))
            assert linked.profile_id == pid("b")
            assert store.profile_for_trace(tid("9")) is None


class TestPrefixes:
    def test_unique_prefix_resolves(self, store):
        put_profile(store, pid("a"))
        assert store.resolve_profile_prefix(pid("a")[:6]) == pid("a")

    def test_ambiguous_prefix_names_its_candidates(self, store):
        put_profile(store, "aa" + "0" * 30)
        put_profile(store, "aa" + "1" * 30)
        with pytest.raises(StoreError, match="ambiguous") as excinfo:
            store.resolve_profile_prefix("aa")
        assert sorted(excinfo.value.matches) == [
            "aa" + "0" * 30, "aa" + "1" * 30,
        ]

    def test_trace_prefix_ambiguity_also_names_candidates(self, store):
        """Regression: `trace show ab` used to die with a bare error."""
        put_trace(store, "ab" + "0" * 30)
        put_trace(store, "ab" + "1" * 30)
        with pytest.raises(StoreError, match="ambiguous") as excinfo:
            store.resolve_trace_prefix("ab")
        assert sorted(excinfo.value.matches) == [
            "ab" + "0" * 30, "ab" + "1" * 30,
        ]

    def test_unknown_and_malformed_prefixes_rejected(self, store):
        with pytest.raises(StoreError, match="no archived profile"):
            store.resolve_profile_prefix("feed")
        for bad in ("", "zz"):
            with pytest.raises(StoreError):
                store.resolve_profile_prefix(bad)


class TestGc:
    def test_profiles_share_trace_ttl(self, tmp_path):
        clock = FakeClock()
        with LabelStore(
            tmp_path / "s.db", trace_ttl=10.0, clock=clock
        ) as store:
            put_profile(store, pid("a"))
            clock.advance(11)
            assert store.get_profile(pid("a")) is None
            assert store.stats()["profile_expirations"] == 1

    def test_profiles_evicted_before_traces_and_labels(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", clock=clock) as store:
            store.put(fp("1"), {"k": "v" * 50})
            put_trace(store, tid("a"))
            put_profile(store, pid("b"))
            # budget only big enough once the profile is gone
            sizes = store.stats()
            budget = sizes["bytes"] + sizes["trace_bytes"]
            removed = store.gc(max_bytes=budget)
            assert removed["profile_evicted"] == 1
            assert store.get_profile(pid("b")) is None
            assert store.get_trace(tid("a")) is not None
            assert store.get(fp("1")) is not None

    def test_expired_profiles_removed_by_explicit_gc(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", clock=clock) as store:
            put_profile(store, pid("a"))
            clock.advance(100)
            removed = store.gc(ttl=50.0)
            assert removed["profile_expired"] == 1

    def test_stats_counters(self, store):
        put_profile(store, pid("a"))
        store.get_profile(pid("a"))
        store.get_profile(pid("f"))
        stats = store.stats()
        assert stats["profiles"] == 1
        assert stats["profile_bytes"] > 0
        assert stats["profile_puts"] == 1
        assert stats["profile_hits"] == 1
        assert stats["profile_misses"] == 1


class TestMigration:
    def make_v2_file(self, path):
        """A store file exactly as schema v2 left it: no profiles table."""
        connection = sqlite3.connect(path)
        with connection:
            for statement in DDL:
                if "profiles" in statement:
                    continue
                connection.execute(statement)
            connection.execute("PRAGMA user_version = 2")
        connection.close()

    def test_v2_file_is_migrated_in_place(self, tmp_path):
        path = tmp_path / "labels.db"
        self.make_v2_file(path)
        with LabelStore(path) as store:
            put_profile(store, pid("a"))
            assert store.get_profile(pid("a")) is not None
        connection = sqlite3.connect(path)
        version = connection.execute("PRAGMA user_version").fetchone()[0]
        connection.close()
        assert version == SCHEMA_VERSION

    def test_migrations_cover_every_step(self):
        assert set(MIGRATIONS) == set(range(1, SCHEMA_VERSION))
