"""LabelService with a durable store: tiers, provenance, warm restart."""

import pickle

import pytest

from repro.datasets import cs_departments
from repro.engine.jobs import LabelDesign
from repro.engine.service import LabelService
from repro.label.render_json import render_json
from repro.store.store import PICKLE_PROTOCOL


DESIGN = LabelDesign.create(
    weights={"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
    sensitive="DeptSizeBin",
    id_column="DeptName",
    monte_carlo_trials=5,
    monte_carlo_epsilons=(0.1,),
)


@pytest.fixture(scope="module")
def table():
    return cs_departments()


def store_path(tmp_path):
    return str(tmp_path / "labels.db")


class TestTieredService:
    def test_tiers_within_one_service(self, tmp_path, table):
        with LabelService(store_path=store_path(tmp_path)) as service:
            cold = service.build_label(table, DESIGN, "CS departments")
            warm = service.build_label(table, DESIGN, "CS departments")
            assert (cold.tier, cold.cached) == ("build", False)
            assert (warm.tier, warm.cached) == ("l1", True)
            stats = service.stats()
            assert stats["tiers"]["builds"] == 1
            assert stats["tiers"]["l1_hits"] == 1
            assert stats["store"]["labels"] == 1

    def test_restart_serves_from_l2_byte_identically(self, tmp_path, table):
        path = store_path(tmp_path)
        with LabelService(store_path=path) as service:
            cold = service.build_label(table, DESIGN, "CS departments")
            original_bytes = service.store.get_bytes(cold.fingerprint)
            assert original_bytes == pickle.dumps(
                cold.facts, protocol=PICKLE_PROTOCOL
            )

        # "restart": a brand-new service (empty L1) over the same file
        with LabelService(store_path=path) as reborn:
            warm = reborn.build_label(table, DESIGN, "CS departments")
            assert warm.tier == "l2"
            assert warm.cached is True
            assert warm.fingerprint == cold.fingerprint
            assert reborn.stats()["service"]["builds"] == 0
            # the served label renders byte-identically
            assert render_json(warm.facts.label) == render_json(cold.facts.label)
            # and the stored payload was untouched by being read
            assert reborn.store.get_bytes(cold.fingerprint) == original_bytes

    def test_no_store_means_no_tier_keys_in_stats(self, table):
        with LabelService() as service:
            service.build_label(table, DESIGN, "CS departments")
            stats = service.stats()
            assert "tiers" not in stats
            assert "store" not in stats
            assert service.store is None

    def test_store_with_cache_disabled_is_rejected(self, tmp_path):
        from repro.errors import RankingFactsError

        with pytest.raises(RankingFactsError, match="use_cache"):
            LabelService(store_path=store_path(tmp_path), use_cache=False)

    def test_outcome_tier_without_store_is_l1_or_build(self, table):
        with LabelService() as service:
            assert service.build_label(table, DESIGN, "d").tier == "build"
            assert service.build_label(table, DESIGN, "d").tier == "l1"


class TestProvenanceCapture:
    def test_build_records_full_provenance(self, tmp_path, table):
        import repro

        with LabelService(
            store_path=store_path(tmp_path), trial_backend="serial"
        ) as service:
            outcome = service.build_label(table, DESIGN, "CS departments")
            record = service.store.provenance(outcome.fingerprint)
        assert record is not None
        assert record.fingerprint == outcome.fingerprint
        assert record.dataset_name == "CS departments"
        assert record.trial_backend_requested == "serial"
        assert record.trial_backend_effective == "serial"
        assert record.monte_carlo_trials == DESIGN.monte_carlo_trials
        assert record.epsilon_count == len(DESIGN.monte_carlo_epsilons)
        assert record.engine_version == repro.__version__
        assert record.build_seconds > 0
        assert record.design == DESIGN.canonical_dict()

    def test_l2_hits_do_not_rewrite_provenance(self, tmp_path, table):
        path = store_path(tmp_path)
        with LabelService(store_path=path) as service:
            outcome = service.build_label(table, DESIGN, "CS departments")
            first = service.store.provenance(outcome.fingerprint)
        with LabelService(store_path=path) as reborn:
            reborn.build_label(table, DESIGN, "CS departments")
            assert reborn.store.provenance(outcome.fingerprint) == first
