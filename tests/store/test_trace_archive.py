"""The durable trace archive: round trips, restart, GC interplay, migration.

Satellite 4's contract lives here: traces and labels share one SQLite
file and one ``max_bytes`` budget, expired traces die before live
labels, and an archived trace survives a process restart byte-for-byte.
"""

import sqlite3

import pytest

from repro.errors import StoreError
from repro.store.schema import DDL, SCHEMA_VERSION
from repro.store.store import LabelStore, StoredTrace


def fp(seed: str) -> str:
    return (seed * 64)[:64]


def tid(seed: str) -> str:
    return (seed * 32)[:32]


def sample_spans(trace_id, n=2):
    spans = []
    for index in range(n):
        spans.append({
            "name": "root" if index == 0 else f"child-{index}",
            "trace_id": trace_id,
            "span_id": f"{index:016x}",
            "parent_id": None if index == 0 else "0" * 16,
            "started_at": 100.0 + index,
            "duration": 0.5,
            "status": "ok",
        })
    return spans


def put_sample(store, trace_id, **overrides):
    kwargs = {
        "root_name": "http.request",
        "status": "ok",
        "started_at": 100.0,
        "duration": 1.5,
        "spans": sample_spans(trace_id),
        "sampled": "sampled",
    }
    kwargs.update(overrides)
    return store.put_trace(trace_id, **kwargs)


class FakeClock:
    def __init__(self, now: float = 1_000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def store(tmp_path):
    with LabelStore(tmp_path / "labels.db") as open_store:
        yield open_store


class TestRoundTrip:
    def test_put_get(self, store):
        put_sample(store, tid("a"))
        record = store.get_trace(tid("a"))
        assert isinstance(record, StoredTrace)
        assert record.trace_id == tid("a")
        assert record.root_name == "http.request"
        assert record.span_count == 2
        assert [s["name"] for s in record.spans] == ["root", "child-1"]

    def test_miss_is_none(self, store):
        assert store.get_trace(tid("9")) is None
        assert store.get_trace_bytes(tid("9")) is None

    def test_overwrite_same_trace_id(self, store):
        put_sample(store, tid("a"))
        put_sample(store, tid("a"), status="error", sampled="error")
        assert store.stats()["traces"] == 1
        assert store.get_trace(tid("a")).status == "error"

    def test_summary_is_json_safe_without_payload(self, store):
        import json

        put_sample(store, tid("a"))
        summary = store.get_trace(tid("a")).summary()
        json.dumps(summary)
        assert "payload" not in summary
        assert summary["span_count"] == 2

    def test_unjsonable_spans_rejected(self, store):
        with pytest.raises(StoreError, match="JSON"):
            put_sample(store, tid("a"), spans=[{"name": object()}])

    def test_listing_newest_first_without_payloads(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", clock=clock) as store:
            put_sample(store, tid("a"))
            clock.advance(5)
            put_sample(store, tid("b"))
            records = store.trace_records()
            assert [r["trace_id"] for r in records] == [tid("b"), tid("a")]
            assert store.trace_records(limit=1)[0]["trace_id"] == tid("b")


class TestRestartDurability:
    def test_archived_trace_is_byte_identical_after_reopen(self, tmp_path):
        path = tmp_path / "labels.db"
        with LabelStore(path) as store:
            put_sample(store, tid("a"))
            original = store.get_trace_bytes(tid("a"))
        assert original is not None
        with LabelStore(path) as reopened:  # the "restarted server"
            assert reopened.get_trace_bytes(tid("a")) == original
            assert reopened.get_trace(tid("a")).spans == sample_spans(tid("a"))

    def test_labels_and_traces_coexist_across_reopen(self, tmp_path):
        path = tmp_path / "labels.db"
        with LabelStore(path) as store:
            store.put(fp("1"), {"label": "value"})
            put_sample(store, tid("a"))
        with LabelStore(path) as reopened:
            assert reopened.get(fp("1")) == {"label": "value"}
            assert reopened.get_trace(tid("a")) is not None


class TestGCInterplay:
    def test_one_max_bytes_budget_covers_both_tables(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", clock=clock) as store:
            store.put(fp("1"), "x" * 200)
            clock.advance(1)
            trace_size = put_sample(store, tid("a"))
            label_size = store.stats()["bytes"]
            # a budget that fits the label alone must evict the trace
            removed = store.gc(max_bytes=label_size + trace_size - 1)
            assert removed["trace_evicted"] == 1
            assert removed["evicted"] == 0
            assert store.get_trace(tid("a")) is None
            assert store.get(fp("1")) == "x" * 200

    def test_traces_are_evicted_before_any_label(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", clock=clock) as store:
            put_sample(store, tid("a"))
            clock.advance(1)
            put_sample(store, tid("b"))
            clock.advance(1)
            store.put(fp("1"), "x" * 50)
            removed = store.gc(max_bytes=1)  # starve everything
            assert removed["trace_evicted"] == 2
            # labels never go below the newest one
            assert store.get(fp("1")) == "x" * 50
            assert store.stats()["traces"] == 0

    def test_ttl_expired_traces_die_before_live_labels(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", clock=clock) as store:
            put_sample(store, tid("a"))
            clock.advance(100)
            store.put(fp("1"), "fresh")
            removed = store.gc(max_bytes=10_000_000, ttl=50)
            assert removed["trace_expired"] == 1
            assert removed["expired"] == 0
            assert store.get(fp("1")) == "fresh"

    def test_independent_trace_ttl(self, tmp_path):
        clock = FakeClock()
        with LabelStore(
            tmp_path / "s.db", ttl=1_000, trace_ttl=10, clock=clock
        ) as store:
            store.put(fp("1"), "label")
            put_sample(store, tid("a"))
            clock.advance(50)  # beyond trace_ttl, within label ttl
            assert store.get_trace(tid("a")) is None
            assert store.stats()["trace_expirations"] == 1
            assert store.get(fp("1")) == "label"

    def test_trace_ttl_defaults_to_the_label_ttl(self, tmp_path):
        with LabelStore(tmp_path / "a.db", ttl=60) as store:
            assert store.trace_ttl == 60
        with LabelStore(tmp_path / "b.db", ttl=60, trace_ttl=5) as store:
            assert store.trace_ttl == 5

    def test_put_time_gc_enforces_the_configured_budget(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", max_bytes=500, clock=clock) as store:
            store.put(fp("1"), "x" * 100)
            for seed in "abc":
                clock.advance(1)
                put_sample(
                    store, tid(seed),
                    spans=sample_spans(tid(seed), n=6),
                )
            stats = store.stats()
            assert stats["bytes"] + stats["trace_bytes"] <= 500
            assert stats["trace_evictions"] > 0
            assert store.get(fp("1")) == "x" * 100  # the label outlived them

    def test_bad_trace_ttl_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="trace_ttl"):
            LabelStore(tmp_path / "a.db", trace_ttl=0)


class TestPrefixes:
    def test_unique_prefix_resolves(self, store):
        put_sample(store, tid("a"))
        put_sample(store, tid("b"))
        assert store.resolve_trace_prefix(tid("a")[:8]) == tid("a")

    def test_ambiguous_prefix_rejected(self, store):
        put_sample(store, "aa" + tid("1")[2:])
        put_sample(store, "ab" + tid("2")[2:])
        with pytest.raises(StoreError, match="ambiguous"):
            store.resolve_trace_prefix("a")

    def test_unknown_and_malformed_prefixes_rejected(self, store):
        with pytest.raises(StoreError, match="no archived trace"):
            store.resolve_trace_prefix("feed")
        for bad in ("", "%", "zz"):
            with pytest.raises(StoreError):
                store.resolve_trace_prefix(bad)


class TestMigration:
    def make_v1_file(self, path):
        """A store file exactly as schema v1 left it: no trace tables."""
        connection = sqlite3.connect(path)
        with connection:
            for statement in DDL[:4]:  # labels + provenance + indexes
                connection.execute(statement)
            connection.execute("PRAGMA user_version = 1")
            connection.execute(
                """
                INSERT INTO labels (fingerprint, payload, size_bytes,
                                    created_at, last_access, hits)
                VALUES (?, ?, ?, ?, ?, 0)
                """,
                (fp("1"), b"payload", 7, 1.0, 1.0),
            )
        connection.close()

    def test_v1_file_is_migrated_in_place(self, tmp_path):
        path = tmp_path / "labels.db"
        self.make_v1_file(path)
        with LabelStore(path) as store:
            # the v1 row survived and the trace tables now exist
            assert fp("1") in store
            put_sample(store, tid("a"))
            assert store.get_trace(tid("a")) is not None
        connection = sqlite3.connect(path)
        version = connection.execute("PRAGMA user_version").fetchone()[0]
        connection.close()
        assert version == SCHEMA_VERSION

    def test_fresh_files_start_at_current_version(self, tmp_path):
        path = tmp_path / "labels.db"
        with LabelStore(path):
            pass
        connection = sqlite3.connect(path)
        version = connection.execute("PRAGMA user_version").fetchone()[0]
        connection.close()
        assert version == SCHEMA_VERSION


class TestStats:
    def test_trace_counters(self, store):
        put_sample(store, tid("a"))
        store.get_trace(tid("a"))
        store.get_trace(tid("b"))
        stats = store.stats()
        assert stats["traces"] == 1
        assert stats["trace_puts"] == 1
        assert (stats["trace_hits"], stats["trace_misses"]) == (1, 1)
        assert stats["trace_bytes"] > 0
        # label accounting is untouched by trace traffic
        assert stats["labels"] == 0
        assert stats["bytes"] == 0
