"""Tests for repro.store.schema: versioning and the migration guard."""

import sqlite3

import pytest

from repro.errors import StoreError
from repro.store.schema import SCHEMA_VERSION, ensure_schema
from repro.store.store import LabelStore


def open_raw(path):
    return sqlite3.connect(path)


class TestFreshFile:
    def test_creates_schema_and_stamps_version(self, tmp_path):
        path = tmp_path / "fresh.db"
        connection = open_raw(path)
        ensure_schema(connection, str(path))
        assert (
            connection.execute("PRAGMA user_version").fetchone()[0]
            == SCHEMA_VERSION
        )
        tables = {
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        assert {"labels", "provenance"} <= tables
        connection.close()

    def test_idempotent_on_current_schema(self, tmp_path):
        path = tmp_path / "twice.db"
        connection = open_raw(path)
        ensure_schema(connection, str(path))
        ensure_schema(connection, str(path))  # must not raise or re-create
        connection.close()

    def test_reopen_through_label_store(self, tmp_path):
        path = tmp_path / "store.db"
        with LabelStore(path) as store:
            store.put("a" * 64, {"x": 1})
        with LabelStore(path) as store:
            assert store.get("a" * 64) == {"x": 1}


class TestGuards:
    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "future.db"
        connection = open_raw(path)
        ensure_schema(connection, str(path))
        connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 5}")
        connection.commit()
        connection.close()
        with pytest.raises(StoreError, match="newer engine"):
            LabelStore(path)

    def test_foreign_sqlite_file_rejected(self, tmp_path):
        path = tmp_path / "not-a-store.db"
        connection = open_raw(path)
        connection.execute("CREATE TABLE somebody_elses_data (x INTEGER)")
        connection.commit()
        connection.close()
        with pytest.raises(StoreError, match="not a label store"):
            LabelStore(path)

    def test_unmigratable_old_version_rejected(self, tmp_path):
        # simulate a v1 file meeting an engine whose current version has
        # no recorded migration step: user_version below current, step
        # missing from MIGRATIONS
        path = tmp_path / "old.db"
        connection = open_raw(path)
        ensure_schema(connection, str(path))
        connection.close()

        import repro.store.schema as schema_module

        original = schema_module.SCHEMA_VERSION
        schema_module.SCHEMA_VERSION = original + 1
        try:
            connection = open_raw(path)
            with pytest.raises(StoreError, match="no.*migration step"):
                ensure_schema(connection, str(path))
            connection.close()
        finally:
            schema_module.SCHEMA_VERSION = original

    def test_migration_steps_applied_in_order(self, tmp_path):
        # with a registered step, the same old file upgrades cleanly
        path = tmp_path / "upgradable.db"
        connection = open_raw(path)
        ensure_schema(connection, str(path))
        connection.close()

        import repro.store.schema as schema_module

        original = schema_module.SCHEMA_VERSION
        schema_module.SCHEMA_VERSION = original + 1
        schema_module.MIGRATIONS[original] = (
            "ALTER TABLE labels ADD COLUMN migrated INTEGER DEFAULT 1",
        )
        try:
            connection = open_raw(path)
            ensure_schema(connection, str(path))
            assert (
                connection.execute("PRAGMA user_version").fetchone()[0]
                == original + 1
            )
            columns = {
                row[1]
                for row in connection.execute("PRAGMA table_info(labels)")
            }
            assert "migrated" in columns
            connection.close()
        finally:
            schema_module.SCHEMA_VERSION = original
            del schema_module.MIGRATIONS[original]

    def test_not_sqlite_at_all_rejected(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"this is not a database, it is a text file\n" * 20)
        with pytest.raises(StoreError):
            LabelStore(path)
