"""Tests for repro.store.store: round trips, GC, provenance, prefixes."""

import pickle

import pytest

from repro.errors import StoreError
from repro.store.provenance import LabelProvenance
from repro.store.store import PICKLE_PROTOCOL, LabelStore


def fp(seed: str) -> str:
    """A distinct, plausible 64-hex fingerprint."""
    return (seed * 64)[:64]


def provenance_for(fingerprint: str, dataset: str = "unit-test") -> LabelProvenance:
    return LabelProvenance(
        fingerprint=fingerprint,
        table_fingerprint=fp("a"),
        design_fingerprint=fp("b"),
        dataset_name=dataset,
        design={"weights": [["x", 1.0]], "k": 10},
        trial_backend_requested="vectorized",
        trial_backend_effective="vectorized",
        monte_carlo_trials=25,
        epsilon_count=3,
        build_seconds=0.125,
        engine_version="1.2.0",
        created_at=1_700_000_000.0,
    )


class FakeClock:
    def __init__(self, now: float = 1_000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def store(tmp_path):
    with LabelStore(tmp_path / "labels.db") as open_store:
        yield open_store


class TestRoundTrip:
    def test_put_get(self, store):
        value = {"label": ["complex", ("nested", 1.5)], "n": 42}
        store.put(fp("1"), value)
        assert store.get(fp("1")) == value

    def test_miss_is_none_not_an_error(self, store):
        assert store.get(fp("9")) is None
        assert store.get_bytes(fp("9")) is None
        assert fp("9") not in store

    def test_payload_bytes_are_the_exact_pickle(self, store):
        value = {"widgets": [1, 2, 3], "verdict": "fair"}
        store.put(fp("2"), value)
        stored = store.get_bytes(fp("2"))
        assert stored == pickle.dumps(value, protocol=PICKLE_PROTOCOL)
        # round trip is the identity on bytes
        assert pickle.dumps(pickle.loads(stored), protocol=PICKLE_PROTOCOL) == stored

    def test_overwrite_same_fingerprint(self, store):
        store.put(fp("3"), "old")
        store.put(fp("3"), "new")
        assert store.get(fp("3")) == "new"
        assert len(store) == 1

    def test_contains_and_len(self, store):
        store.put(fp("4"), 1)
        store.put(fp("5"), 2)
        assert fp("4") in store
        assert len(store) == 2

    def test_invalidate(self, store):
        store.put(fp("6"), 1)
        assert store.invalidate(fp("6")) is True
        assert store.invalidate(fp("6")) is False
        assert store.get(fp("6")) is None

    def test_unpicklable_value_raises(self, store):
        with pytest.raises(StoreError, match="not picklable"):
            store.put(fp("7"), lambda: None)


class TestAccounting:
    def test_reads_bump_hits_and_last_access(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", clock=clock) as store:
            store.put(fp("1"), "v")
            clock.advance(10)
            record = store.get_record(fp("1"))
            assert record.hits == 1
            assert record.last_access == clock.now
            assert record.created_at == clock.now - 10

    def test_stats_counters(self, store):
        store.put(fp("1"), "v")
        store.get(fp("1"))
        store.get(fp("2"))
        stats = store.stats()
        assert stats["labels"] == 1
        assert stats["puts"] == 1
        assert (stats["hits"], stats["misses"]) == (1, 1)
        assert stats["bytes"] > 0

    def test_records_listing_newest_first(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", clock=clock) as store:
            store.put(fp("1"), "old", provenance_for(fp("1"), dataset="first"))
            clock.advance(5)
            store.put(fp("2"), "new", provenance_for(fp("2"), dataset="second"))
            records = store.records()
            assert [r["dataset_name"] for r in records] == ["second", "first"]
            assert records[0]["fingerprint"] == fp("2")


class TestTTLAndGC:
    def test_expired_label_reads_as_miss(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", ttl=60, clock=clock) as store:
            store.put(fp("1"), "v")
            clock.advance(61)
            assert store.get(fp("1")) is None
            assert store.stats()["expirations"] == 1
            assert len(store) == 0  # dropped, not just hidden

    def test_gc_ttl_drops_only_old_labels(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", clock=clock) as store:
            store.put(fp("1"), "old")
            clock.advance(100)
            store.put(fp("2"), "fresh")
            removed = store.gc(ttl=50)
            assert removed == {
                "expired": 1, "evicted": 0,
                "trace_expired": 0, "trace_evicted": 0,
                "profile_expired": 0, "profile_evicted": 0,
            }
            assert store.get(fp("2")) == "fresh"
            assert fp("1") not in store

    def test_gc_max_bytes_evicts_least_recently_accessed(self, tmp_path):
        clock = FakeClock()
        with LabelStore(tmp_path / "s.db", clock=clock) as store:
            store.put(fp("1"), "a" * 100)
            clock.advance(1)
            store.put(fp("2"), "b" * 100)
            clock.advance(1)
            store.get(fp("1"))  # 1 is now more recently accessed than 2
            clock.advance(1)
            store.put(fp("3"), "c" * 100)
            one_size = len(pickle.dumps("a" * 100, protocol=PICKLE_PROTOCOL))
            removed = store.gc(max_bytes=2 * one_size)
            assert removed["evicted"] == 1
            assert fp("2") not in store  # the LRU victim
            assert fp("1") in store and fp("3") in store

    def test_insert_time_gc_with_configured_budget(self, tmp_path):
        clock = FakeClock()
        one_size = len(pickle.dumps("x" * 100, protocol=PICKLE_PROTOCOL))
        with LabelStore(
            tmp_path / "s.db", max_bytes=2 * one_size, clock=clock
        ) as store:
            for index, seed in enumerate("123"):
                clock.advance(1)
                store.put(fp(seed), "x" * 100)
            assert len(store) == 2
            assert fp("1") not in store
            assert store.stats()["evictions"] == 1

    def test_oversized_label_still_persists_once(self, tmp_path):
        with LabelStore(tmp_path / "s.db", max_bytes=10) as store:
            store.put(fp("1"), "way more than ten bytes of label")
            assert fp("1") in store  # never evict the newest label

    def test_bad_bounds_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="max_bytes"):
            LabelStore(tmp_path / "a.db", max_bytes=0)
        with pytest.raises(StoreError, match="ttl"):
            LabelStore(tmp_path / "b.db", ttl=0)


class TestProvenance:
    def test_round_trip(self, store):
        record = provenance_for(fp("1"))
        store.put(fp("1"), "label", record)
        assert store.provenance(fp("1")) == record

    def test_missing_provenance_is_none(self, store):
        store.put(fp("1"), "label")  # no provenance attached
        assert store.provenance(fp("1")) is None

    def test_provenance_deleted_with_label(self, store):
        store.put(fp("1"), "label", provenance_for(fp("1")))
        store.invalidate(fp("1"))
        assert store.provenance(fp("1")) is None

    def test_as_dict_from_mapping_round_trip(self):
        record = provenance_for(fp("1"))
        assert LabelProvenance.from_mapping(record.as_dict()) == record


class TestPrefixes:
    def test_unique_prefix_resolves(self, store):
        store.put(fp("a"), 1)
        store.put(fp("b"), 2)
        assert store.resolve_prefix(fp("a")[:8]) == fp("a")

    def test_ambiguous_prefix_rejected(self, store):
        store.put("aa" + fp("1")[2:], 1)
        store.put("ab" + fp("2")[2:], 2)
        with pytest.raises(StoreError, match="ambiguous"):
            store.resolve_prefix("a")

    def test_unknown_prefix_rejected(self, store):
        with pytest.raises(StoreError, match="no stored label"):
            store.resolve_prefix("feed")

    def test_empty_prefix_rejected(self, store):
        with pytest.raises(StoreError, match="empty"):
            store.resolve_prefix("")

    def test_wildcard_prefix_rejected_not_sanitized(self, store):
        # '%' must never silently resolve to an arbitrary label
        store.put(fp("a"), 1)
        for bad in ("%", "a%", "_", "ab_cd", "zz"):
            with pytest.raises(StoreError, match="not hex"):
                store.resolve_prefix(bad)


class TestCorruptPayloads:
    def test_undecodable_payload_is_a_miss_not_an_error(self, store):
        store.put(fp("1"), {"good": "label"})
        # simulate disk corruption / an unpicklable-for-us payload
        store._connection.execute(
            "UPDATE labels SET payload = ? WHERE fingerprint = ?",
            (b"\x80\x05 this is not a pickle", fp("1")),
        )
        store._connection.commit()
        assert store.get(fp("1")) is None  # degrades, never raises
        assert store.stats()["decode_failures"] == 1
        # the corrupt row was dropped, so a rebuild can overwrite it
        assert fp("1") not in store
        store.put(fp("1"), {"rebuilt": True})
        assert store.get(fp("1")) == {"rebuilt": True}
