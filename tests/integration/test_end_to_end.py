"""Integration tests: full pipelines across modules.

Each test walks the complete demo path — dataset, preprocessing, scoring
function, ranking, every widget, renderers — the way the paper's user
would, including the three §3 scenarios.
"""

import json

import numpy as np
import pytest

from repro import (
    LinearScoringFunction,
    NormalizationPlan,
    RankingFactsBuilder,
    render_json,
    render_text,
)
from repro.datasets import compas, german_credit
from repro.fairness import ProtectedGroup, fair_star_rerank
from repro.label import label_from_json
from repro.preprocess import binarize_categorical, binarize_numeric
from repro.tabular import read_csv, write_csv


class TestScenarioCsDepartments:
    """Scenario 1 of the demo: the paper's running example."""

    def test_figure1_label_shape(self, cs_table, cs_scorer):
        facts = (
            RankingFactsBuilder(cs_table, dataset_name="CS departments")
            .with_id_column("DeptName")
            .with_scoring(cs_scorer)
            .with_sensitive_attribute("DeptSizeBin")
            .with_diversity_attributes(["DeptSizeBin", "Region"])
            .build()
        )
        label = facts.label
        # §2.4: "only large departments are present in the top-10"
        size_report = label.diversity.reports[0]
        assert size_report.top_k.proportions["large"] == 1.0
        assert size_report.missing_categories() == ("small",)
        # §3: GRE "does not correlate with the ranked outcome"
        gre = label.ingredients.analysis.importance_of("GRE")
        assert gre.importance < 0.3
        # §3: GRE's range and median similar in top-10 and overall
        gre_stats = next(
            s for s in label.recipe.statistics if s.attribute == "GRE"
        )
        overall_range = gre_stats.overall.maximum - gre_stats.overall.minimum
        assert abs(gre_stats.top_k.median - gre_stats.overall.median) < 0.3 * overall_range
        # fairness: small flagged unfair by all three measures
        grid = label.fairness.verdict_grid()
        assert set(grid["DeptSizeBin=small"].values()) == {"unfair"}

    def test_mitigation_loop(self, cs_table, cs_scorer):
        """Audit -> unfair -> FA*IR rerank -> re-audit -> fair (§4 roadmap)."""
        facts = (
            RankingFactsBuilder(cs_table)
            .with_id_column("DeptName")
            .with_scoring(cs_scorer)
            .with_sensitive_attribute("DeptSizeBin")
            .build()
        )
        group = ProtectedGroup(facts.ranking, "DeptSizeBin", "small")
        fair_ranking = fair_star_rerank(group, k=20, alpha=0.1)
        assert fair_ranking.group_count_at_k("DeptSizeBin", "small", 10) >= 2
        regrouped = ProtectedGroup(fair_ranking, "DeptSizeBin", "small")
        from repro.fairness.fair_star import FairStarMeasure

        result = FairStarMeasure(k=20, alpha=0.1, p=group.proportion).audit(regrouped)
        assert result.fair


class TestScenarioCompas:
    """Scenario 2: ranking defendants by COMPAS risk score."""

    @pytest.fixture(scope="class")
    def facts(self):
        table = compas(n=1200)
        table = binarize_categorical(
            table, "race", "RaceBin", ["African-American"],
            protected_label="African-American", other_label="other",
        )
        scorer = LinearScoringFunction({"decile_score": 0.7, "priors_count": 0.3})
        return (
            RankingFactsBuilder(table, dataset_name="COMPAS")
            .with_id_column("defendant_id")
            .with_scoring(scorer)
            .with_sensitive_attribute("RaceBin")
            .with_diversity_attributes(["RaceBin", "sex"])
            .with_top_k(100)
            .build()
        )

    def test_risk_ranking_overrepresents_protected_group(self, facts):
        # ranking by risk: the documented score skew surfaces as
        # over-representation of African-American defendants at the top
        report = facts.label.diversity.reports[0]
        assert (
            report.top_k.proportions["African-American"]
            > report.overall.proportions["African-American"]
        )

    def test_pairwise_measure_flags_the_skew(self, facts):
        results = {
            (r.measure, r.group_label): r for r in facts.label.fairness.results
        }
        pairwise = results[("Pairwise", "RaceBin=African-American")]
        assert not pairwise.fair
        assert pairwise.details["preference_probability"] > 0.5

    def test_label_serializes(self, facts):
        data = label_from_json(render_json(facts.label))
        assert data["num_items"] == 1200


class TestScenarioGermanCredit:
    """Scenario 3: ranking credit applicants by creditworthiness."""

    @pytest.fixture(scope="class")
    def facts(self):
        table = german_credit()
        scorer = LinearScoringFunction(
            {"credit_score": 0.8, "credit_amount": -0.1, "duration_months": -0.1}
        )
        return (
            RankingFactsBuilder(table, dataset_name="German credit")
            .with_id_column("applicant_id")
            .with_scoring(scorer)
            .with_sensitive_attribute("AgeGroup")
            .with_sensitive_attribute("sex")
            .with_top_k(100)
            .build()
        )

    def test_negative_weights_supported(self, facts):
        recipe = facts.label.recipe
        assert recipe.weights["credit_amount"] < 0

    def test_two_sensitive_attributes_audited(self, facts):
        groups = {r.group_label for r in facts.label.fairness.results}
        assert groups == {
            "AgeGroup=young", "AgeGroup=adult", "sex=male", "sex=female",
        }

    def test_young_underrepresented_at_top(self, facts):
        ranking = facts.ranking
        young_top = ranking.group_count_at_k("AgeGroup", "young", 100)
        young_share = ranking.group_share_overall("AgeGroup", "young")
        assert young_top / 100 < young_share


class TestCsvWorkflow:
    """The upload path: CSV on disk -> label, exercising tabular I/O."""

    def test_full_round_trip(self, tmp_path, cs_table, cs_scorer):
        path = tmp_path / "upload.csv"
        write_csv(cs_table, path)
        table = read_csv(path)
        facts = (
            RankingFactsBuilder(table, dataset_name="uploaded")
            .with_id_column("DeptName")
            .with_scoring(cs_scorer)
            .with_sensitive_attribute("DeptSizeBin")
            .build()
        )
        text = render_text(facts.label, detailed=True)
        assert "uploaded" in text
        payload = json.loads(render_json(facts.label))
        assert payload["dataset"] == "uploaded"

    def test_derived_sensitive_attribute(self, tmp_path):
        # user uploads raw data without a binary attribute and derives one
        from repro.datasets import synthetic_scores_table

        table = synthetic_scores_table(80, num_attributes=2, seed=11)
        table = binarize_numeric(
            table, "attr_1", "attr1Bin", above_label="high", below_label="low"
        )
        facts = (
            RankingFactsBuilder(table)
            .with_id_column("item")
            .with_scoring(LinearScoringFunction({"attr_1": 0.5, "attr_2": 0.5}))
            .with_sensitive_attribute("attr1Bin")
            .build()
        )
        # scoring on attr_1 guarantees the "high" bin dominates the top
        grid = facts.label.fairness.verdict_grid()
        assert grid["attr1Bin=low"]["Pairwise"] == "unfair"


class TestCrossWidgetConsistency:
    def test_fairness_and_diversity_agree_on_counts(self, cs_ranking):
        from repro.diversity import top_k_vs_overall
        from repro.fairness import ProtectedGroup

        group = ProtectedGroup(cs_ranking, "DeptSizeBin", "small")
        report = top_k_vs_overall(cs_ranking, "DeptSizeBin", k=10)
        assert group.count_at(10) == report.top_k.counts.get("small", 0)
        assert group.proportion == pytest.approx(
            report.overall.proportions["small"]
        )

    def test_recipe_weights_match_score_reconstruction(self, cs_table, cs_scorer):
        facts = (
            RankingFactsBuilder(cs_table)
            .with_id_column("DeptName")
            .with_scoring(cs_scorer)
            .with_sensitive_attribute("DeptSizeBin")
            .build()
        )
        # rebuilding scores from the scored table and recipe weights must
        # reproduce the ranking's scores exactly
        weights = facts.label.recipe.weights
        table = facts.scored_table
        rebuilt = np.zeros(table.num_rows)
        for attribute, weight in weights.items():
            rebuilt += weight * table.numeric_column(attribute).values
        order = np.argsort(-rebuilt, kind="stable")
        np.testing.assert_allclose(rebuilt[order], facts.ranking.scores)
