"""Unit tests for repro.tabular.table."""

import numpy as np
import pytest

from repro.errors import EmptyTableError, MissingColumnError, SchemaError
from repro.tabular import CategoricalColumn, NumericColumn, Table


class TestConstruction:
    def test_from_dict_infers_types(self, small_table):
        assert small_table.numeric_column_names() == ("x", "y")
        assert small_table.categorical_column_names() == ("name", "group")

    def test_from_dict_accepts_columns(self):
        t = Table.from_dict({"x": NumericColumn("ignored", [1.0])})
        assert t.column("x").values.tolist() == [1.0]

    def test_from_rows(self):
        t = Table.from_rows(["a", "b"], [[1, "x"], [2, "y"]])
        assert t.num_rows == 2
        assert t.column("a").kind == "numeric"

    def test_from_rows_ragged_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_rows(["a", "b"], [[1]])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Table([NumericColumn("x", [1.0]), NumericColumn("x", [2.0])])

    def test_unequal_lengths_rejected(self):
        with pytest.raises(SchemaError, match="unequal"):
            Table([NumericColumn("x", [1.0]), NumericColumn("y", [1.0, 2.0])])

    def test_empty_table(self):
        t = Table.empty()
        assert t.num_rows == 0
        assert t.num_columns == 0


class TestAccess:
    def test_column_lookup(self, small_table):
        assert small_table.column("x").name == "x"

    def test_missing_column_error_lists_available(self, small_table):
        with pytest.raises(MissingColumnError, match="available columns"):
            small_table.column("nope")

    def test_missing_column_is_keyerror(self, small_table):
        with pytest.raises(KeyError):
            small_table.column("nope")

    def test_numeric_column_rejects_categorical(self, small_table):
        from repro.errors import ColumnTypeError

        with pytest.raises(ColumnTypeError):
            small_table.numeric_column("group")

    def test_row_as_dict(self, small_table):
        row = small_table.row(0)
        assert row == {"name": "a", "x": 6.0, "y": 1.0, "group": "g1"}

    def test_row_negative_index(self, small_table):
        assert small_table.row(-1)["name"] == "f"

    def test_row_out_of_range(self, small_table):
        with pytest.raises(IndexError):
            small_table.row(6)

    def test_iter_rows_count(self, small_table):
        assert len(list(small_table.iter_rows())) == 6

    def test_contains(self, small_table):
        assert "x" in small_table
        assert "z" not in small_table

    def test_to_dict_round_trip(self, small_table):
        rebuilt = Table.from_dict(small_table.to_dict())
        assert rebuilt == small_table


class TestTransformations:
    def test_select_projects_and_orders(self, small_table):
        t = small_table.select(["y", "name"])
        assert t.column_names == ("y", "name")

    def test_select_missing_raises(self, small_table):
        with pytest.raises(MissingColumnError):
            small_table.select(["nope"])

    def test_drop(self, small_table):
        t = small_table.drop(["x"])
        assert "x" not in t
        assert t.num_columns == 3

    def test_drop_missing_raises(self, small_table):
        with pytest.raises(MissingColumnError):
            small_table.drop(["nope"])

    def test_with_column_appends(self, small_table):
        t = small_table.with_column(NumericColumn("z", [0.0] * 6))
        assert t.column_names[-1] == "z"

    def test_with_column_replaces_in_place(self, small_table):
        t = small_table.with_column(NumericColumn("x", [9.0] * 6))
        assert t.column_names == small_table.column_names
        assert t.column("x").values.tolist() == [9.0] * 6

    def test_with_column_length_mismatch(self, small_table):
        with pytest.raises(SchemaError):
            small_table.with_column(NumericColumn("z", [0.0]))

    def test_rename_column(self, small_table):
        t = small_table.rename_column("x", "score")
        assert "score" in t and "x" not in t
        assert t.column_names.index("score") == 1

    def test_rename_collision_rejected(self, small_table):
        with pytest.raises(SchemaError):
            small_table.rename_column("x", "y")

    def test_take_duplicates_allowed(self, small_table):
        t = small_table.take([0, 0, 5])
        assert list(t.column("name").values) == ["a", "a", "f"]

    def test_take_out_of_range(self, small_table):
        with pytest.raises(IndexError):
            small_table.take([99])

    def test_head_clamps(self, small_table):
        assert small_table.head(100).num_rows == 6
        assert small_table.head(0).num_rows == 0

    def test_filter_by_mask(self, small_table):
        t = small_table.filter(np.asarray([True, False] * 3))
        assert list(t.column("name").values) == ["a", "c", "e"]

    def test_filter_wrong_shape(self, small_table):
        with pytest.raises(SchemaError):
            small_table.filter([True])

    def test_filter_rows_predicate(self, small_table):
        t = small_table.filter_rows(lambda r: r["group"] == "g2")
        assert t.num_rows == 3

    def test_concat_rows(self, small_table):
        t = small_table.concat_rows(small_table)
        assert t.num_rows == 12

    def test_concat_schema_mismatch(self, small_table):
        with pytest.raises(SchemaError):
            small_table.concat_rows(small_table.select(["x", "y", "name", "group"]))


class TestSorting:
    def test_sort_numeric_ascending(self, small_table):
        t = small_table.sort_by("x")
        assert list(t.column("name").values) == ["f", "e", "d", "c", "b", "a"]

    def test_sort_numeric_descending(self, small_table):
        t = small_table.sort_by("x", ascending=False)
        assert list(t.column("name").values) == ["a", "b", "c", "d", "e", "f"]

    def test_sort_is_stable_on_ties(self):
        t = Table.from_dict({"name": ["p", "q", "r"], "v": [1.0, 1.0, 0.0]})
        assert list(t.sort_by("v", ascending=False).column("name").values) == [
            "p", "q", "r",
        ]

    def test_sort_categorical_lexicographic(self):
        t = Table.from_dict({"c": ["b", "a", "c"]})
        assert list(t.sort_by("c").column("c").values) == ["a", "b", "c"]

    def test_nan_sorts_last_both_directions(self):
        t = Table.from_dict({"v": [2.0, float("nan"), 1.0]})
        assert t.sort_by("v").column("v").values.tolist()[:2] == [1.0, 2.0]
        desc = t.sort_by("v", ascending=False).column("v").values.tolist()
        assert desc[:2] == [2.0, 1.0]
        assert np.isnan(desc[2])

    def test_missing_categorical_sorts_last(self):
        t = Table.from_dict({"c": ["b", "", "a"]})
        assert list(t.sort_by("c").column("c").values) == ["a", "b", ""]


class TestGuards:
    def test_require_rows_passes(self, small_table):
        assert small_table.require_rows(6) is small_table

    def test_require_rows_fails(self, small_table):
        with pytest.raises(EmptyTableError):
            small_table.require_rows(7)

    def test_equality(self, small_table):
        assert small_table == small_table.select(list(small_table.column_names))
        assert small_table != small_table.head(3)

    def test_repr_mentions_shape(self, small_table):
        assert "6 rows" in repr(small_table)


class TestContentHash:
    """Table.__hash__ / content_digest: memoized, __eq__-consistent."""

    def make(self):
        return Table.from_dict(
            {"name": ["a", "b", "c"], "x": [1.0, 2.0, 3.0]}
        )

    def test_equal_tables_hash_equal(self):
        assert hash(self.make()) == hash(self.make())
        assert self.make() == self.make()

    def test_hash_usable_in_sets(self):
        assert len({self.make(), self.make()}) == 1

    def test_different_content_different_digest(self):
        other = Table.from_dict({"name": ["a", "b", "c"], "x": [1.0, 2.0, 9.0]})
        assert self.make().content_digest() != other.content_digest()
        assert self.make() != other

    def test_digest_is_memoized(self):
        table = self.make()
        first = table.content_digest()
        assert table.content_digest() is first  # same string object: no rehash

    def test_hash_consistent_with_eq_for_signed_zero(self):
        # -0.0 == 0.0 under column equality, so the hashes must agree too
        plus = Table.from_dict({"x": [0.0, 1.0]})
        minus = Table.from_dict({"x": [-0.0, 1.0]})
        assert plus == minus
        assert hash(plus) == hash(minus)
        # ...while the engine's raw-bytes digest deliberately differs
        assert plus.content_digest() != minus.content_digest()

    def test_hash_consistent_with_eq_for_nan(self):
        a = Table.from_dict({"x": [np.nan, 1.0]})
        b = Table.from_dict({"x": [np.nan, 1.0]})
        assert a == b
        assert hash(a) == hash(b)

    def test_transformed_tables_get_fresh_digests(self):
        table = self.make()
        taken = table.take([2, 1, 0])
        assert taken.content_digest() != table.content_digest()
        assert taken.take([2, 1, 0]).content_digest() == table.content_digest()
