"""Tests for Table.join (the CSRankings + NRC assembly path)."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.tabular import Table


@pytest.fixture()
def left():
    return Table.from_dict(
        {"dept": ["a", "b", "c"], "pubs": [10.0, 20.0, 30.0]}
    )


@pytest.fixture()
def right():
    return Table.from_dict(
        {"dept": ["b", "a", "d"], "gre": [160.0, 158.0, 155.0],
         "region": ["NE", "W", "MW"]}
    )


class TestInnerJoin:
    def test_matches_by_key(self, left, right):
        joined = left.join(right, on="dept")
        assert joined.num_rows == 2
        assert list(joined.column("dept").values) == ["a", "b"]
        assert joined.column("gre").values.tolist() == [158.0, 160.0]
        assert list(joined.column("region").values) == ["W", "NE"]

    def test_left_row_order_preserved(self, left, right):
        joined = left.join(right, on="dept")
        assert list(joined.column("dept").values) == ["a", "b"]

    def test_key_column_not_duplicated(self, left, right):
        joined = left.join(right, on="dept")
        assert joined.column_names.count("dept") == 1

    def test_many_to_one(self, right):
        many = Table.from_dict(
            {"dept": ["a", "a", "b"], "year": [1.0, 2.0, 3.0]}
        )
        joined = many.join(right, on="dept")
        assert joined.num_rows == 3
        assert joined.column("gre").values.tolist() == [158.0, 158.0, 160.0]


class TestLeftJoin:
    def test_unmatched_rows_kept_with_missing(self, left, right):
        joined = left.join(right, on="dept", how="left")
        assert joined.num_rows == 3
        assert np.isnan(joined.column("gre").values[2])
        assert joined.column("region").values[2] == ""

    def test_matched_values_identical_to_inner(self, left, right):
        inner = left.join(right, on="dept")
        left_joined = left.join(right, on="dept", how="left").head(2)
        assert inner == left_joined


class TestCollisions:
    def test_colliding_columns_suffixed(self, left):
        other = Table.from_dict({"dept": ["a", "b"], "pubs": [1.0, 2.0]})
        joined = left.join(other, on="dept")
        assert "pubs" in joined and "pubs_right" in joined
        assert joined.column("pubs").values.tolist() == [10.0, 20.0]
        assert joined.column("pubs_right").values.tolist() == [1.0, 2.0]

    def test_custom_suffix(self, left):
        other = Table.from_dict({"dept": ["a"], "pubs": [1.0]})
        joined = left.join(other, on="dept", suffix="_nrc")
        assert "pubs_nrc" in joined


class TestValidation:
    def test_unknown_how(self, left, right):
        with pytest.raises(SchemaError, match="inner.*left"):
            left.join(right, on="dept", how="outer")

    def test_missing_key_column(self, left, right):
        from repro.errors import MissingColumnError

        with pytest.raises(MissingColumnError):
            left.join(right, on="nope")

    def test_kind_mismatch(self, left):
        other = Table.from_dict({"dept": [1.0, 2.0], "x": [0.0, 0.0]})
        with pytest.raises(SchemaError, match="left but"):
            left.join(other, on="dept")

    def test_duplicate_right_keys_rejected(self, left):
        other = Table.from_dict({"dept": ["a", "a"], "x": [1.0, 2.0]})
        with pytest.raises(SchemaError, match="duplicate"):
            left.join(other, on="dept")

    def test_cs_departments_built_via_join(self, cs_table):
        # the generator assembles via join; shape and schema unchanged
        assert cs_table.column_names == (
            "DeptName", "PubCount", "Faculty", "GRE", "Region", "DeptSizeBin",
        )
