"""Unit tests for repro.tabular.schema."""

import pytest

from repro.errors import SchemaError
from repro.tabular import ColumnSpec, Schema, Table


@pytest.fixture()
def schema():
    return Schema.of(
        ColumnSpec("name", "categorical"),
        ColumnSpec("score", "numeric", minimum=0.0, maximum=10.0),
        ColumnSpec("region", "categorical", allowed_categories=("N", "S")),
        ColumnSpec("bonus", "numeric", required=False),
    )


@pytest.fixture()
def good_table():
    return Table.from_dict(
        {"name": ["a", "b"], "score": [1.0, 9.5], "region": ["N", "S"]}
    )


class TestColumnSpec:
    def test_bad_kind_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec("x", "integer")

    def test_categories_on_numeric_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec("x", "numeric", allowed_categories=("a",))

    def test_bounds_on_categorical_rejected(self):
        with pytest.raises(SchemaError):
            ColumnSpec("x", "categorical", minimum=0.0)

    def test_validate_reports_missing_required(self, good_table):
        spec = ColumnSpec("absent", "numeric")
        assert "missing required column" in spec.validate(good_table)[0]

    def test_optional_column_may_be_absent(self, good_table):
        assert ColumnSpec("absent", "numeric", required=False).validate(good_table) == []

    def test_kind_mismatch(self, good_table):
        spec = ColumnSpec("name", "numeric")
        assert "requires numeric" in spec.validate(good_table)[0]

    def test_unexpected_categories(self, good_table):
        spec = ColumnSpec("region", "categorical", allowed_categories=("N",))
        assert "unexpected categories" in spec.validate(good_table)[0]

    def test_numeric_bounds(self):
        t = Table.from_dict({"score": [-1.0, 11.0]})
        spec = ColumnSpec("score", "numeric", minimum=0.0, maximum=10.0)
        problems = spec.validate(t)
        assert len(problems) == 2


class TestSchema:
    def test_duplicate_specs_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(ColumnSpec("x", "numeric"), ColumnSpec("x", "numeric"))

    def test_conforming_table_validates(self, schema, good_table):
        assert schema.validate(good_table) is good_table
        assert schema.conforms(good_table)

    def test_validate_raises_with_joined_messages(self, schema):
        bad = Table.from_dict({"name": ["a"], "score": [99.0], "region": ["X"]})
        with pytest.raises(SchemaError) as excinfo:
            schema.validate(bad)
        message = str(excinfo.value)
        assert "above maximum" in message and "unexpected categories" in message

    def test_problems_lists_all(self, schema):
        empty = Table.empty()
        assert len(schema.problems(empty)) == 3  # three required columns absent

    def test_spec_lookup(self, schema):
        assert schema.spec("score").maximum == 10.0
        with pytest.raises(SchemaError):
            schema.spec("nope")

    def test_column_names_order(self, schema):
        assert schema.column_names() == ("name", "score", "region", "bonus")


class TestBuiltinSchemas:
    def test_cs_departments_schema_validates_generator(self, cs_table):
        from repro.datasets import CS_DEPARTMENTS_SCHEMA

        assert CS_DEPARTMENTS_SCHEMA.conforms(cs_table)

    def test_compas_schema_validates_generator(self):
        from repro.datasets import COMPAS_SCHEMA, compas

        assert COMPAS_SCHEMA.conforms(compas(n=300))

    def test_german_schema_validates_generator(self):
        from repro.datasets import GERMAN_CREDIT_SCHEMA, german_credit

        assert GERMAN_CREDIT_SCHEMA.conforms(german_credit(n=300))
