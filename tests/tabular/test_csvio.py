"""Unit tests for repro.tabular.csvio."""

import numpy as np
import pytest

from repro.errors import CSVFormatError
from repro.tabular import Table, read_csv, read_csv_text, write_csv
from repro.tabular.csvio import write_csv_text


class TestReadCsvText:
    def test_basic_parse_and_inference(self):
        t = read_csv_text("name,score\nalice,1.5\nbob,2\n")
        assert t.num_rows == 2
        assert t.column("name").kind == "categorical"
        assert t.column("score").kind == "numeric"

    def test_empty_payload_rejected(self):
        with pytest.raises(CSVFormatError, match="empty CSV"):
            read_csv_text("")

    def test_blank_header_rejected(self):
        with pytest.raises(CSVFormatError, match="blank column name"):
            read_csv_text("a,,c\n1,2,3\n")

    def test_duplicate_header_rejected(self):
        with pytest.raises(CSVFormatError, match="duplicate"):
            read_csv_text("a,a\n1,2\n")

    def test_ragged_row_reports_line_number(self):
        with pytest.raises(CSVFormatError, match="line 3"):
            read_csv_text("a,b\n1,2\n1\n")

    def test_blank_lines_skipped(self):
        t = read_csv_text("a\n1\n\n2\n")
        assert t.num_rows == 2

    def test_cells_are_stripped(self):
        t = read_csv_text("a,b\n 1 , x \n")
        assert t.column("a").values.tolist() == [1.0]
        assert list(t.column("b").values) == ["x"]

    def test_missing_tokens_numeric(self):
        t = read_csv_text("a\n1\nNA\n")
        assert t.column("a").num_missing() == 1

    def test_header_only_gives_zero_rows(self):
        t = read_csv_text("a,b\n")
        assert t.num_rows == 0
        assert t.column_names == ("a", "b")

    def test_custom_delimiter(self):
        t = read_csv_text("a;b\n1;2\n", delimiter=";")
        assert t.column("b").values.tolist() == [2.0]

    def test_quoted_commas(self):
        t = read_csv_text('name,v\n"Smith, J",1\n')
        assert list(t.column("name").values) == ["Smith, J"]


class TestTypeOverrides:
    def test_force_categorical_on_numbers(self):
        t = read_csv_text("zip\n01234\n99999\n", type_overrides={"zip": "categorical"})
        assert t.column("zip").kind == "categorical"
        assert list(t.column("zip").values) == ["01234", "99999"]

    def test_force_numeric_on_numbers_is_fine(self):
        t = read_csv_text("a\n1\n2\n", type_overrides={"a": "numeric"})
        assert t.column("a").kind == "numeric"

    def test_force_numeric_on_text_rejected(self):
        with pytest.raises(CSVFormatError, match="forced numeric"):
            read_csv_text("a\nhello\n", type_overrides={"a": "numeric"})

    def test_unknown_override_column_rejected(self):
        with pytest.raises(CSVFormatError, match="unknown column"):
            read_csv_text("a\n1\n", type_overrides={"b": "numeric"})

    def test_unknown_override_kind_rejected(self):
        with pytest.raises(CSVFormatError, match="unknown type override"):
            read_csv_text("a\n1\n", type_overrides={"a": "float"})


class TestWriteCsv:
    def test_round_trip(self, small_table):
        text = write_csv_text(small_table)
        rebuilt = read_csv_text(text)
        assert rebuilt == small_table

    def test_missing_round_trips(self):
        t = Table.from_dict({"a": [1.0, float("nan")]})
        rebuilt = read_csv_text(write_csv_text(t))
        assert rebuilt.num_rows == 2
        assert rebuilt.column("a").num_missing() == 1

    def test_integral_floats_written_as_ints(self):
        t = Table.from_dict({"a": [3.0]})
        assert "3" in write_csv_text(t).splitlines()[1]
        assert "3.0" not in write_csv_text(t).splitlines()[1]

    def test_file_round_trip(self, tmp_path, small_table):
        path = tmp_path / "data.csv"
        write_csv(small_table, path)
        assert read_csv(path) == small_table

    def test_read_csv_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_csv(tmp_path / "absent.csv")

    def test_non_integral_floats_preserved_exactly(self):
        t = Table.from_dict({"a": [0.1, 1e-9]})
        rebuilt = read_csv_text(write_csv_text(t))
        assert np.allclose(rebuilt.column("a").values, [0.1, 1e-9])
