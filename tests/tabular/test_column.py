"""Unit tests for repro.tabular.column."""

import numpy as np
import pytest

from repro.errors import ColumnTypeError, SchemaError
from repro.tabular.column import CategoricalColumn, NumericColumn, infer_column


class TestNumericColumn:
    def test_basic_construction(self):
        col = NumericColumn("x", [1, 2, 3])
        assert col.name == "x"
        assert col.kind == "numeric"
        assert len(col) == 3
        assert col.values.dtype == np.float64

    def test_values_are_read_only(self):
        col = NumericColumn("x", [1.0, 2.0])
        with pytest.raises(ValueError):
            col.values[0] = 9.0

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            NumericColumn("", [1.0])

    def test_non_string_name_rejected(self):
        with pytest.raises(SchemaError):
            NumericColumn(123, [1.0])

    def test_two_dimensional_rejected(self):
        with pytest.raises(SchemaError):
            NumericColumn("x", np.zeros((2, 2)))

    def test_non_numeric_values_rejected(self):
        with pytest.raises(ColumnTypeError):
            NumericColumn("x", ["a", "b"])

    def test_missing_mask_marks_nan(self):
        col = NumericColumn("x", [1.0, float("nan"), 3.0])
        assert col.missing_mask().tolist() == [False, True, False]
        assert col.num_missing() == 1

    def test_dropna_values(self):
        col = NumericColumn("x", [1.0, float("nan"), 3.0])
        assert col.dropna_values().tolist() == [1.0, 3.0]

    def test_fill_missing(self):
        col = NumericColumn("x", [1.0, float("nan")])
        assert col.fill_missing(0.0).values.tolist() == [1.0, 0.0]

    def test_is_constant(self):
        assert NumericColumn("x", [2.0, 2.0]).is_constant()
        assert not NumericColumn("x", [1.0, 2.0]).is_constant()
        assert NumericColumn("x", [float("nan")]).is_constant()

    def test_map_applies_function(self):
        col = NumericColumn("x", [1.0, 2.0]).map(lambda v: v * 2)
        assert col.values.tolist() == [2.0, 4.0]

    def test_take_gathers_in_order(self):
        col = NumericColumn("x", [10.0, 20.0, 30.0])
        assert col.take([2, 0]).values.tolist() == [30.0, 10.0]

    def test_head(self):
        col = NumericColumn("x", [1.0, 2.0, 3.0])
        assert col.head(2).values.tolist() == [1.0, 2.0]
        with pytest.raises(ValueError):
            col.head(-1)

    def test_rename(self):
        assert NumericColumn("x", [1.0]).rename("y").name == "y"

    def test_as_numeric_identity_and_as_categorical_raises(self):
        col = NumericColumn("x", [1.0])
        assert col.as_numeric() is col
        with pytest.raises(ColumnTypeError):
            col.as_categorical()

    def test_equality_with_nan(self):
        a = NumericColumn("x", [1.0, float("nan")])
        b = NumericColumn("x", [1.0, float("nan")])
        assert a == b

    def test_inequality_on_values_name_kind(self):
        assert NumericColumn("x", [1.0]) != NumericColumn("x", [2.0])
        assert NumericColumn("x", [1.0]) != NumericColumn("y", [1.0])
        assert NumericColumn("x", [1.0]) != CategoricalColumn("x", ["1.0"])

    def test_scalar_indexing(self):
        assert NumericColumn("x", [1.0, 2.0])[1] == 2.0

    def test_slice_indexing_returns_column(self):
        col = NumericColumn("x", [1.0, 2.0, 3.0])[1:]
        assert isinstance(col, NumericColumn)
        assert col.values.tolist() == [2.0, 3.0]


class TestCategoricalColumn:
    def test_basic_construction(self):
        col = CategoricalColumn("r", ["NE", "W"])
        assert col.kind == "categorical"
        assert list(col.values) == ["NE", "W"]

    def test_none_and_nan_become_missing(self):
        col = CategoricalColumn("r", ["a", None, float("nan")])
        assert col.missing_mask().tolist() == [False, True, True]

    def test_non_string_values_coerced(self):
        col = CategoricalColumn("r", [1, 2])
        assert list(col.values) == ["1", "2"]

    def test_categories_first_appearance_order(self):
        col = CategoricalColumn("r", ["b", "a", "b", "c"])
        assert col.categories() == ("b", "a", "c")

    def test_categories_exclude_missing(self):
        col = CategoricalColumn("r", ["a", "", "b"])
        assert col.categories() == ("a", "b")

    def test_counts_and_proportions(self):
        col = CategoricalColumn("r", ["a", "b", "a", ""])
        assert col.counts() == {"a": 2, "b": 1}
        props = col.proportions()
        assert props["a"] == pytest.approx(2 / 3)
        assert props["b"] == pytest.approx(1 / 3)

    def test_proportions_empty_when_all_missing(self):
        assert CategoricalColumn("r", ["", ""]).proportions() == {}

    def test_is_binary(self):
        assert CategoricalColumn("r", ["a", "b"]).is_binary()
        assert not CategoricalColumn("r", ["a", "b", "c"]).is_binary()
        assert not CategoricalColumn("r", ["a", "a"]).is_binary()

    def test_indicator(self):
        col = CategoricalColumn("r", ["a", "b", "a"])
        assert col.indicator("a").tolist() == [True, False, True]

    def test_map_categories(self):
        col = CategoricalColumn("r", ["a", "b"]).map_categories({"a": "x"})
        assert list(col.values) == ["x", "b"]

    def test_as_categorical_identity_and_as_numeric_raises(self):
        col = CategoricalColumn("r", ["a"])
        assert col.as_categorical() is col
        with pytest.raises(ColumnTypeError):
            col.as_numeric()

    def test_take(self):
        col = CategoricalColumn("r", ["a", "b", "c"])
        assert list(col.take([1, 1]).values) == ["b", "b"]


class TestInferColumn:
    def test_all_numbers_infer_numeric(self):
        assert infer_column("x", ["1", "2.5", "-3"]).kind == "numeric"

    def test_missing_tokens_become_nan(self):
        col = infer_column("x", ["1", "NA", "n/a", "null", "?", ""])
        assert col.kind == "numeric"
        assert col.num_missing() == 5

    def test_mixed_becomes_categorical(self):
        assert infer_column("x", ["1", "two"]).kind == "categorical"

    def test_python_numbers_accepted(self):
        assert infer_column("x", [1, 2.5]).kind == "numeric"

    def test_none_in_numeric(self):
        col = infer_column("x", [1.0, None])
        assert col.kind == "numeric"
        assert col.num_missing() == 1

    def test_categorical_missing_tokens(self):
        col = infer_column("x", ["red", "NA", None])
        assert col.kind == "categorical"
        assert col.missing_mask().tolist() == [False, True, True]

    def test_bool_objects_are_categorical(self):
        # booleans are not numbers in a scoring context
        assert infer_column("x", [True, False]).kind == "categorical"
