"""Unit tests for repro.tabular.summary."""

import math

import pytest

from repro.errors import ColumnTypeError, EmptyTableError
from repro.tabular import NumericColumn, Table, describe, histogram
from repro.tabular.summary import describe_table


class TestDescribe:
    def test_basic_statistics(self):
        s = describe(NumericColumn("x", [1.0, 2.0, 3.0, 4.0]))
        assert s.count == 4
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == 2.5
        assert s.mean == 2.5
        assert s.std == pytest.approx((1.25) ** 0.5)

    def test_missing_excluded(self):
        s = describe(NumericColumn("x", [1.0, float("nan"), 3.0]))
        assert s.count == 2
        assert s.median == 2.0

    def test_all_missing_gives_nan_stats(self):
        s = describe(NumericColumn("x", [float("nan")]))
        assert s.count == 0
        assert math.isnan(s.minimum)

    def test_categorical_rejected(self, small_table):
        with pytest.raises(ColumnTypeError):
            describe(small_table.column("group"))

    def test_as_dict_keys(self):
        d = describe(NumericColumn("x", [1.0])).as_dict()
        assert set(d) == {"name", "count", "min", "max", "median", "mean", "std"}

    def test_describe_table_covers_numeric_only(self, small_table):
        summaries = describe_table(small_table)
        assert [s.name for s in summaries] == ["x", "y"]


class TestHistogram:
    def test_counts_sum_to_n(self):
        h = histogram(NumericColumn("x", [1.0, 2.0, 2.5, 3.0]), bins=2)
        assert h.total == 4
        assert len(h.edges) == h.num_bins + 1

    def test_max_value_lands_in_last_bin(self):
        h = histogram(NumericColumn("x", [0.0, 1.0]), bins=2)
        assert h.counts == (1, 1)

    def test_constant_column_degenerate_bin(self):
        h = histogram(NumericColumn("x", [5.0, 5.0]), bins=4)
        assert h.num_bins == 1
        assert h.counts == (2,)
        assert h.edges == (5.0, 5.0)

    def test_missing_dropped(self):
        h = histogram(NumericColumn("x", [1.0, float("nan"), 2.0]), bins=1)
        assert h.total == 2

    def test_all_missing_rejected(self):
        with pytest.raises(EmptyTableError):
            histogram(NumericColumn("x", [float("nan")]))

    def test_bad_bins_rejected(self):
        with pytest.raises(ValueError):
            histogram(NumericColumn("x", [1.0]), bins=0)

    def test_categorical_rejected(self, small_table):
        with pytest.raises(ColumnTypeError):
            histogram(small_table.column("group"))

    def test_densities_normalize(self):
        h = histogram(NumericColumn("x", [1.0, 2.0, 3.0, 4.0]), bins=2)
        assert sum(h.densities()) == pytest.approx(1.0)

    def test_as_dict(self):
        h = histogram(NumericColumn("x", [1.0, 2.0]), bins=2)
        d = h.as_dict()
        assert d["name"] == "x"
        assert len(d["edges"]) == 3
