"""Tests for repro.ingredients.importance."""

import numpy as np
import pytest

from repro.errors import RankingFactsError
from repro.ingredients import (
    correlation_importance,
    ingredients,
    linear_model_importance,
)
from repro.ranking import LinearScoringFunction, Ranking, rank_table
from repro.tabular import Table


@pytest.fixture()
def driven_ranking(rng):
    """Score driven by `driver`; `noise` unrelated; `anti` anti-correlated."""
    n = 60
    driver = rng.normal(0, 1, n)
    noise = rng.normal(0, 1, n)
    t = Table.from_dict(
        {
            "name": [f"i{j}" for j in range(n)],
            "driver": driver,
            "noise": noise,
            "anti": -driver + rng.normal(0, 0.1, n),
        }
    )
    return rank_table(t, LinearScoringFunction({"driver": 1.0}), "name")


class TestCorrelationImportance:
    def test_driver_dominates(self, driven_ranking):
        analysis = correlation_importance(driven_ranking)
        assert analysis.importances[0].attribute in ("driver", "anti")
        assert analysis.importance_of("driver").importance > 0.99
        assert analysis.importance_of("noise").importance < 0.4

    def test_direction_signs(self, driven_ranking):
        analysis = correlation_importance(driven_ranking)
        assert analysis.importance_of("driver").direction > 0
        assert analysis.importance_of("anti").direction < 0

    def test_explicit_attribute_subset(self, driven_ranking):
        analysis = correlation_importance(driven_ranking, ["noise"])
        assert len(analysis.importances) == 1

    def test_constant_attribute_zero(self):
        t = Table.from_dict(
            {"name": ["a", "b", "c"], "v": [3.0, 2.0, 1.0], "const": [7.0] * 3}
        )
        r = rank_table(t, LinearScoringFunction({"v": 1.0}), "name")
        analysis = correlation_importance(r)
        assert analysis.importance_of("const").importance == 0.0

    def test_missing_values_dropped_pairwise(self):
        t = Table.from_dict(
            {"name": list("abcd"), "v": [4.0, 3.0, 2.0, 1.0],
             "partial": [4.0, float("nan"), 2.0, 1.0]}
        )
        r = rank_table(t, LinearScoringFunction({"v": 1.0}), "name")
        analysis = correlation_importance(r)
        assert analysis.importance_of("partial").importance == pytest.approx(1.0)

    def test_deterministic_tie_order(self):
        t = Table.from_dict(
            {"name": list("abc"), "v": [3.0, 2.0, 1.0],
             "z2": [3.0, 2.0, 1.0], "z1": [3.0, 2.0, 1.0]}
        )
        r = rank_table(t, LinearScoringFunction({"v": 1.0}), "name")
        names = [i.attribute for i in correlation_importance(r).importances]
        assert names == ["v", "z1", "z2"]

    def test_no_numeric_attributes_rejected(self):
        t = Table.from_dict({"name": ["a", "b"], "c": ["x", "y"]})
        r = Ranking.from_scores(t, [2.0, 1.0], id_column="name")
        with pytest.raises(RankingFactsError, match="no numeric"):
            correlation_importance(r)

    def test_unknown_attribute_rejected(self, driven_ranking):
        from repro.errors import MissingColumnError

        with pytest.raises(MissingColumnError):
            correlation_importance(driven_ranking, ["zz"])

    def test_empty_attribute_list_rejected(self, driven_ranking):
        with pytest.raises(RankingFactsError, match="at least one"):
            correlation_importance(driven_ranking, [])


class TestLinearModelImportance:
    def test_recovers_weights(self, rng):
        n = 80
        a, b = rng.normal(0, 1, n), rng.normal(0, 1, n)
        t = Table.from_dict(
            {"name": [f"i{j}" for j in range(n)], "a": a, "b": b}
        )
        r = rank_table(t, LinearScoringFunction({"a": 3.0, "b": 1.0}), "name")
        analysis = linear_model_importance(r)
        imp_a = analysis.importance_of("a")
        imp_b = analysis.importance_of("b")
        # standardized coefficients ~ weight * std; stds are ~1
        assert imp_a.importance > imp_b.importance
        assert imp_a.importance / imp_b.importance == pytest.approx(3.0, rel=0.2)

    def test_uninvolved_attribute_near_zero(self, driven_ranking):
        analysis = linear_model_importance(driven_ranking, ["driver", "noise"])
        assert analysis.importance_of("noise").importance < 0.05

    def test_constant_attribute_zero_coefficient(self):
        t = Table.from_dict(
            {"name": list("abcd"), "v": [4.0, 3.0, 2.0, 1.0], "const": [7.0] * 4}
        )
        r = rank_table(t, LinearScoringFunction({"v": 1.0}), "name")
        analysis = linear_model_importance(r)
        assert analysis.importance_of("const").importance == 0.0

    def test_insufficient_rows_rejected(self):
        t = Table.from_dict({"name": ["a", "b"], "u": [2.0, 1.0], "v": [1.0, 2.0]})
        r = rank_table(t, LinearScoringFunction({"u": 1.0}), "name")
        with pytest.raises(RankingFactsError, match="more complete rows"):
            linear_model_importance(r)


class TestIngredientsDispatch:
    def test_methods(self, driven_ranking):
        assert ingredients(driven_ranking, method="spearman").method == "spearman"
        assert ingredients(driven_ranking, method="linear-model").method == "linear-model"

    def test_unknown_method(self, driven_ranking):
        with pytest.raises(RankingFactsError, match="unknown ingredients method"):
            ingredients(driven_ranking, method="shap")

    def test_top_n(self, driven_ranking):
        analysis = ingredients(driven_ranking)
        assert len(analysis.top(2)) == 2
        with pytest.raises(ValueError):
            analysis.top(0)

    def test_importance_of_unknown(self, driven_ranking):
        analysis = ingredients(driven_ranking)
        with pytest.raises(RankingFactsError, match="not part of"):
            analysis.importance_of("zz")

    def test_as_dict(self, driven_ranking):
        d = ingredients(driven_ranking).as_dict()
        assert d["method"] == "spearman"
        assert all({"attribute", "importance", "direction", "method"} == set(i)
                   for i in d["importances"])

    def test_figure1_gre_is_weak(self, cs_ranking):
        analysis = ingredients(cs_ranking, ["PubCount", "Faculty", "GRE"])
        gre = analysis.importance_of("GRE")
        assert gre.importance < 0.3
        assert analysis.importances[-1].attribute == "GRE"
