"""Tests for repro.diversity.measures."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diversity import (
    category_breakdown,
    diversity_report,
    entropy,
    normalized_entropy,
    richness,
    top_k_vs_overall,
)
from repro.errors import FairnessConfigError
from repro.ranking import Ranking
from repro.tabular import Table


def ranking_with_groups(groups):
    t = Table.from_dict(
        {
            "name": [f"i{j}" for j in range(len(groups))],
            "cat": list(groups),
        }
    )
    return Ranking.from_scores(
        t, list(range(len(groups), 0, -1)), id_column="name"
    )


class TestEntropy:
    def test_uniform_maximal(self):
        assert entropy([0.25] * 4) == pytest.approx(2.0)

    def test_point_mass_zero(self):
        assert entropy([1.0]) == 0.0
        assert entropy([1.0, 0.0]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            entropy([0.5, 0.6])
        with pytest.raises(ValueError):
            entropy([-0.1, 1.1])

    def test_empty_is_zero(self):
        assert entropy([]) == 0.0

    def test_normalized_entropy_bounds(self):
        assert normalized_entropy([0.5, 0.5]) == pytest.approx(1.0)
        assert normalized_entropy([1.0]) == 1.0
        assert 0.0 < normalized_entropy([0.9, 0.1]) < 1.0

    def test_richness(self):
        assert richness([0.5, 0.5, 0.0]) == 2

    @given(st.lists(st.floats(0.01, 1.0), min_size=1, max_size=10))
    @settings(max_examples=50)
    def test_entropy_bounded_by_log_m(self, raw):
        total = sum(raw)
        props = [v / total for v in raw]
        assert 0.0 <= entropy(props) <= math.log2(len(props)) + 1e-9


class TestCategoryBreakdown:
    def test_overall_counts(self):
        r = ranking_with_groups(["a", "b", "a", "c"])
        breakdown = category_breakdown(r, "cat")
        assert breakdown.counts == {"a": 2, "b": 1, "c": 1}
        assert breakdown.slice_name == "overall"
        assert breakdown.total == 4

    def test_top_k_slice(self):
        r = ranking_with_groups(["a", "b", "a", "c"])
        breakdown = category_breakdown(r, "cat", k=2)
        assert breakdown.counts == {"a": 1, "b": 1}
        assert breakdown.slice_name == "top-2"

    def test_category_order_alignment(self):
        r = ranking_with_groups(["a", "a", "b"])
        breakdown = category_breakdown(r, "cat", k=2, category_order=("a", "b"))
        assert breakdown.counts == {"a": 2, "b": 0}
        assert breakdown.proportions["b"] == 0.0

    def test_entropy_and_richness_methods(self):
        r = ranking_with_groups(["a", "b", "a", "b"])
        breakdown = category_breakdown(r, "cat")
        assert breakdown.entropy() == pytest.approx(1.0)
        assert breakdown.richness() == 2

    def test_empty_slice_rejected(self):
        t = Table.from_dict({"name": ["x", "y"], "cat": ["", "a"]})
        r = Ranking.from_scores(t, [2.0, 1.0], id_column="name")
        with pytest.raises(FairnessConfigError, match="no known categories"):
            category_breakdown(r, "cat", k=1)


class TestTopKVsOverall:
    def test_figure1_shape(self):
        # large monopolizes the top: the paper's §2.4 observation
        groups = ["large"] * 10 + ["small", "large"] * 10
        report = top_k_vs_overall(ranking_with_groups(groups), "cat", k=10)
        assert report.top_k.proportions["large"] == 1.0
        assert report.missing_categories() == ("small",)

    def test_representation_gap_signs(self):
        groups = ["large"] * 10 + ["small", "large"] * 10
        gap = top_k_vs_overall(ranking_with_groups(groups), "cat", k=10).representation_gap()
        assert gap["large"] > 0
        assert gap["small"] < 0

    def test_gap_sums_to_zero(self):
        groups = ["a", "b", "c"] * 8
        gap = top_k_vs_overall(ranking_with_groups(groups), "cat", k=6).representation_gap()
        assert sum(gap.values()) == pytest.approx(0.0, abs=1e-12)

    def test_no_missing_when_top_k_covers_all(self):
        report = top_k_vs_overall(ranking_with_groups(["a", "b"] * 10), "cat", k=10)
        assert report.missing_categories() == ()

    def test_keys_aligned_between_slices(self):
        groups = ["a"] * 5 + ["b"] * 5
        report = top_k_vs_overall(ranking_with_groups(groups), "cat", k=3)
        assert list(report.top_k.proportions) == list(report.overall.proportions)

    def test_invalid_k(self):
        with pytest.raises(FairnessConfigError):
            top_k_vs_overall(ranking_with_groups(["a", "b"]), "cat", k=0)

    def test_as_dict(self):
        d = top_k_vs_overall(ranking_with_groups(["a", "b"] * 5), "cat", k=2).as_dict()
        assert {"attribute", "top_k", "overall", "missing_categories",
                "representation_gap"} == set(d)


class TestDiversityReport:
    def test_multiple_attributes(self):
        t = Table.from_dict(
            {
                "name": [f"i{j}" for j in range(6)],
                "a": ["x", "y"] * 3,
                "b": ["u", "u", "v", "v", "u", "v"],
            }
        )
        r = Ranking.from_scores(t, [6, 5, 4, 3, 2, 1], id_column="name")
        reports = diversity_report(r, ["a", "b"], k=3)
        assert [rep.attribute for rep in reports] == ["a", "b"]

    def test_empty_attribute_list_rejected(self, small_ranking):
        with pytest.raises(FairnessConfigError):
            diversity_report(small_ranking, [], k=2)
