"""Byte-identity against an externally spawned cluster (CI's 2 workers).

These tests only run when ``REPRO_TRIAL_WORKERS`` names a live cluster
— CI spawns two ``python -m repro.cluster.worker`` daemons and points
the variable at them (see ``.github/workflows/ci.yml``).  Locally::

    python -m repro.cluster.worker --port 8101 &
    python -m repro.cluster.worker --port 8102 &
    REPRO_TRIAL_WORKERS=127.0.0.1:8101,127.0.0.2:8102 \
        pytest tests/cluster/test_env_cluster.py
"""

import os

import numpy as np
import pytest

from repro.cluster.coordinator import workers_from_env
from repro.engine import LabelDesign, LabelService
from repro.label.render_json import render_json
from repro.tabular import Table

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_TRIAL_WORKERS"),
    reason="REPRO_TRIAL_WORKERS names no external cluster",
)


def test_remote_labels_byte_identical_against_env_cluster():
    rng = np.random.default_rng(3)
    n = 24
    table = Table.from_dict(
        {
            "name": [f"i{j}" for j in range(n)],
            "a": rng.normal(0, 1, n) * 0.01 + 1.0,
            "b": rng.normal(0, 1, n) * 0.01 + 1.0,
            "group": ["g1", "g2"] * (n // 2),
        }
    )
    design = LabelDesign.create(
        weights={"a": 0.6, "b": 0.4},
        sensitive="group",
        id_column="name",
        k=5,
        monte_carlo_trials=12,
        monte_carlo_epsilons=(0.05, 0.2),
    )
    serial = design.builder_for(table, dataset_name="mc").build()
    with LabelService(use_cache=False, trial_backend="remote") as svc:
        outcome = svc.build_label(table, design, "mc")
        executor = svc.stats()["executor"]
    assert render_json(outcome.facts.label) == render_json(serial.label)
    cluster = executor["trial_cluster"]
    assert cluster["workers_configured"] == len(workers_from_env())
    # the point of the CI step: the trials really crossed the wire
    assert cluster["workers_alive"] == cluster["workers_configured"]
    assert cluster["chunks_remote"] > 0
    assert cluster["local_runs"] == 0
