"""Span backhaul: worker spans ride the chunk response into one trace.

The tentpole acceptance path: a traced remote build must assemble a
single trace holding the coordinator's dispatch/attempt spans *and*
the workers' chunk spans (revived from the wire, tagged with the
worker's address), with retries and failovers visible as sibling
attempt spans carrying a failure class.
"""

import pytest

from repro.cluster import wire
from repro.cluster.coordinator import RemoteTrialBackend
from repro.cluster.worker import TrialWorker
from repro.telemetry import (
    MetricsRegistry,
    TraceBuffer,
    get_trace_buffer,
    new_trace_id,
    span,
)
from tests.cluster.faults import faulty_worker


def plus(payload, trial):
    return payload["base"] + trial


def span_dict(name="worker.chunk", **overrides):
    entry = {
        "name": name,
        "trace_id": "ab" * 16,
        "span_id": "cd" * 8,
        "parent_id": None,
        "started_at": 1.0,
        "duration": 0.5,
        "status": "ok",
    }
    entry.update(overrides)
    return entry


class TestWireMinorTwo:
    def test_response_with_spans_roundtrips(self):
        spans = [span_dict(), span_dict(name="store.get", span_id="ef" * 8)]
        data = wire.encode_response([1, 2, 3], 0, 3, "ab" * 16, spans=spans)
        results, decoded = wire.decode_response_spans(data, 0, 3)
        assert results == [1, 2, 3]
        assert [entry["name"] for entry in decoded] == [
            "worker.chunk", "store.get",
        ]

    def test_spanless_response_body_stays_a_bare_list(self):
        import pickle

        data = wire.encode_response([1], 0, 1, "ab" * 16)
        body, *_ = wire.unframe(data)
        assert isinstance(pickle.loads(body), list)  # minor <= 1 shape
        results, decoded = wire.decode_response_spans(data, 0, 1)
        assert (results, decoded) == ([1], [])

    def test_old_decoder_reads_a_span_bearing_response(self):
        data = wire.encode_response([7], 0, 1, "ab" * 16, spans=[span_dict()])
        assert wire.decode_response(data, 0, 1) == [7]

    def test_span_count_is_capped_at_the_wire(self):
        spans = [span_dict() for _ in range(wire.MAX_RESPONSE_SPANS + 50)]
        data = wire.encode_response([1], 0, 1, "ab" * 16, spans=spans)
        _, decoded = wire.decode_response_spans(data, 0, 1)
        assert len(decoded) == wire.MAX_RESPONSE_SPANS

    def test_non_dict_span_entries_are_dropped(self):
        data = wire.encode_response(
            [1], 0, 1, "ab" * 16, spans=[span_dict(), "junk", 42]
        )
        _, decoded = wire.decode_response_spans(data, 0, 1)
        assert len(decoded) == 1

    def test_result_count_still_validated_with_spans(self):
        data = wire.encode_response([1, 2], 0, 3, "ab" * 16, spans=[span_dict()])
        with pytest.raises(Exception, match="2 results"):
            wire.decode_response_spans(data, 0, 3)


class TestWorkerBackhaul:
    def request(self, trace_id, start=0, stop=4):
        body = wire.encode_trial_work(plus, {"base": 10})
        return wire.encode_request(body, start, stop, trace_id)

    def test_traced_chunk_backhauls_its_span(self):
        worker = TrialWorker(backend="serial", registry=MetricsRegistry())
        trace = new_trace_id()
        response = worker.run_chunk(self.request(trace))
        results, spans = wire.decode_response_spans(response, 0, 4)
        assert results == [10, 11, 12, 13]
        assert spans, "traced chunk returned no spans"
        [chunk_span] = [s for s in spans if s["name"] == "worker.chunk"]
        assert chunk_span["trace_id"] == trace
        assert chunk_span["status"] == "ok"
        assert worker.stats()["backhauled_spans"] == len(spans)

    def test_untraced_chunk_backhauls_nothing(self):
        worker = TrialWorker(backend="serial", registry=MetricsRegistry())
        response = worker.run_chunk(self.request(None))
        _, spans = wire.decode_response_spans(response, 0, 4)
        assert spans == []
        assert worker.stats()["backhauled_spans"] == 0

    def test_backhaul_can_be_disabled(self):
        worker = TrialWorker(
            backend="serial", registry=MetricsRegistry(), span_backhaul=False
        )
        response = worker.run_chunk(self.request(new_trace_id()))
        _, spans = wire.decode_response_spans(response, 0, 4)
        assert spans == []

    def test_backhauled_spans_stay_out_of_the_process_ring(self):
        ring = get_trace_buffer()
        before = ring.completed
        worker = TrialWorker(backend="serial", registry=MetricsRegistry())
        worker.run_chunk(self.request(new_trace_id()))
        # the chunk's spans went into the capture, not the shared ring —
        # a parentless worker.chunk there would finalize traces early
        # when the worker runs in-process with a collector installed
        assert ring.completed == before


def collect_trace(trace):
    """A remove-me listener capturing the default ring's spans for ``trace``."""
    collected = []

    def listener(entry):
        if entry.trace_id == trace:
            collected.append(entry)

    get_trace_buffer().add_listener(listener)
    return collected, listener


class TestEndToEndTraceAssembly:
    def test_one_trace_holds_spans_from_both_workers(self, worker_pair):
        one, two = worker_pair
        trace = new_trace_id()
        collected, listener = collect_trace(trace)
        backend = RemoteTrialBackend(
            [one.address, two.address], timeout=15, probe_timeout=2,
            chunk_size=1,
        )
        try:
            with span(
                "test.build", trace_id=trace,
                registry=MetricsRegistry(), buffer=TraceBuffer(),
            ):
                results = backend.run(plus, {"base": 10}, 8)
        finally:
            backend.shutdown()
            get_trace_buffer().remove_listener(listener)
        assert results == [10 + trial for trial in range(8)]

        by_name = {}
        for entry in collected:
            by_name.setdefault(entry.name, []).append(entry)
        assert "cluster.dispatch" in by_name
        attempts = by_name.get("cluster.chunk", [])
        revived = by_name.get("worker.chunk", [])
        assert len(attempts) == 8
        assert len(revived) == 8

        # the cross-process tree connects: every revived worker span is
        # parented under one of this trace's attempt spans
        attempt_ids = {entry.span_id for entry in attempts}
        assert all(entry.parent_id in attempt_ids for entry in revived)

        # and the chunks really ran on both daemons
        workers_used = {entry.tags["worker"] for entry in revived}
        assert workers_used == {one.address, two.address}

    def test_failover_leaves_sibling_attempt_spans(self):
        trace = new_trace_id()
        with faulty_worker() as bad_address:
            from repro.cluster.worker import make_worker

            with make_worker() as good:
                collected, listener = collect_trace(trace)
                backend = RemoteTrialBackend(
                    [bad_address, good.address], timeout=15, probe_timeout=2
                )
                try:
                    with span(
                        "test.build", trace_id=trace,
                        registry=MetricsRegistry(), buffer=TraceBuffer(),
                    ):
                        results = backend.run(plus, {"base": 0}, 6)
                finally:
                    backend.shutdown()
                    get_trace_buffer().remove_listener(listener)
        assert results == list(range(6))
        attempts = [e for e in collected if e.name == "cluster.chunk"]
        failed = [e for e in attempts if e.status == "error"]
        succeeded = [e for e in attempts if e.tags.get("outcome") == "ok"]
        assert failed, "the faulty worker's attempt left no error span"
        assert all("failure_class" in e.tags for e in failed)
        assert succeeded, "no successful attempt span after failover"
        # retries are siblings: same parent, distinct span ids
        parents = {e.parent_id for e in attempts}
        assert len(parents) >= 1
        assert len({e.span_id for e in attempts}) == len(attempts)
