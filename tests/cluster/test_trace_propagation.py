"""End-to-end trace propagation: one trace id from coordinator to worker.

The acceptance bar for the telemetry wiring: a label build running
against the remote backend must produce coordinator *and* worker log
lines (and worker stats) that all carry the originating request's
trace id — the id travels inside the wire frame, not out of band.
"""

import io
import json
import logging
import urllib.request

import pytest

from repro.cluster.coordinator import RemoteTrialBackend
from repro.telemetry import (
    MetricsRegistry,
    TraceBuffer,
    configure_logging,
    new_trace_id,
    span,
)


def plus(payload, trial):
    return payload["base"] + trial


@pytest.fixture()
def restored_logging():
    logger = logging.getLogger("repro")
    handlers = list(logger.handlers)
    level = logger.level
    propagate = logger.propagate
    yield
    logger.handlers[:] = handlers
    logger.setLevel(level)
    logger.propagate = propagate


def run_traced(worker_pair, trace, trials=8):
    one, two = worker_pair
    backend = RemoteTrialBackend(
        [one.address, two.address], timeout=15, probe_timeout=2
    )
    try:
        with span(
            "test.build",
            trace_id=trace,
            registry=MetricsRegistry(),
            buffer=TraceBuffer(),
        ):
            return backend.run(plus, {"base": 10}, trials)
    finally:
        backend.shutdown()


class TestTracePropagation:
    def test_workers_adopt_the_coordinators_trace_id(self, worker_pair):
        trace = new_trace_id()
        results = run_traced(worker_pair, trace)
        assert results == [10 + trial for trial in range(8)]
        seen = {handle.worker._last_trace_id for handle in worker_pair}
        seen.discard(None)  # a worker that received no chunk has no trace
        assert seen == {trace}

    def test_worker_stats_expose_uptime_and_the_last_trace(self, worker_pair):
        trace = new_trace_id()
        run_traced(worker_pair, trace)
        last_traces = []
        for handle in worker_pair:
            with urllib.request.urlopen(
                handle.url + "/stats", timeout=5
            ) as response:
                stats = json.loads(response.read())
            assert stats["uptime_seconds"] >= 0
            if stats["last_trace_id"] is not None:
                last_traces.append(stats["last_trace_id"])
        assert last_traces and set(last_traces) == {trace}

    def test_coordinator_and_worker_log_lines_share_one_trace_id(
        self, worker_pair, restored_logging
    ):
        stream = io.StringIO()
        configure_logging("info", stream)
        trace = new_trace_id()
        run_traced(worker_pair, trace)
        entries = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        coordinator_lines = [
            entry
            for entry in entries
            if entry["logger"] == "repro.cluster.coordinator"
            and "completed" in entry["message"]
        ]
        worker_lines = [
            entry
            for entry in entries
            if entry["logger"] == "repro.cluster.worker"
            and "executed chunk" in entry["message"]
        ]
        assert coordinator_lines, "coordinator logged no completed chunks"
        assert worker_lines, "worker logged no executed chunks"
        shared = {
            entry["trace_id"] for entry in coordinator_lines + worker_lines
        }
        assert shared == {trace}
