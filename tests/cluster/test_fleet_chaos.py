"""The fleet-chaos drill: real processes, a real SIGKILL, identical bytes.

This is the PR's acceptance scenario end to end, with nothing faked:
a registry daemon and two worker daemons run as *subprocesses* (workers
self-register with ``--register``; there is no static worker list
anywhere), a coordinator runs a batch against whatever the registry
advertises, one worker is SIGKILLed mid-batch, and a replacement
registers before the run ends.  The batch must complete with results
byte-identical to serial, and the coordinator's breaker metrics must
show the death being noticed (``repro_cluster_breaker_state`` /
``repro_cluster_breaker_transitions_total``).

Slow (real processes, real sleeps), so it is gated behind
``REPRO_FLEET_CHAOS=1`` — run locally with::

    REPRO_FLEET_CHAOS=1 python -m pytest tests/cluster/test_fleet_chaos.py -v

CI runs it as the ``fleet-chaos`` job.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.cluster.coordinator import RemoteTrialBackend
from repro.cluster.policy import FailurePolicy
from repro.cluster.registry import RegistryClient
from repro.telemetry import get_default_registry
from repro.telemetry.exporters import render_prometheus
from tests.cluster.faults import chaos_trial, dead_address

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_FLEET_CHAOS") != "1",
    reason="chaos drill runs real daemons; set REPRO_FLEET_CHAOS=1",
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))

PAYLOAD = {"base": 7, "delay": 0.1}
TRIALS = 48
EXPECTED = [float(7 + t) * 0.5 for t in range(TRIALS)]


def _spawn(module: str, *args: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [sys.executable, "-m", module, *args],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _await_healthz(url: str, timeout: float = 20.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=1):
                return
        except OSError:
            time.sleep(0.1)
    raise AssertionError(f"{url} never came up")


def _free_port() -> int:
    return int(dead_address().rsplit(":", 1)[1])


class TestFleetChaos:
    def test_sigkill_mid_batch_with_replacement_is_byte_identical(self):
        procs: list[subprocess.Popen] = []
        backend = None
        try:
            registry_port = _free_port()
            registry_url = f"http://127.0.0.1:{registry_port}"
            procs.append(_spawn("repro.cluster.registry", "--port", str(registry_port)))
            _await_healthz(registry_url)

            worker_ports = [_free_port(), _free_port()]
            for port in worker_ports:
                procs.append(_spawn(
                    "repro.cluster.worker",
                    "--port", str(port),
                    "--backend", "serial",
                    "--register", registry_url,
                    "--heartbeat-ttl", "2",
                ))
                _await_healthz(f"http://127.0.0.1:{port}")

            client = RegistryClient(registry_url)
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline and len(client.addresses()) < 2:
                time.sleep(0.1)
            assert len(client.addresses()) == 2  # both self-registered

            backend = RemoteTrialBackend(
                [],  # NO static worker list: membership is the registry's
                registry_url=registry_url,
                membership_interval=0.1,
                timeout=30,
                # one long chunk per worker: the kill lands mid-chunk
                chunk_size=TRIALS // 2,
                policy=FailurePolicy(breaker_threshold=1, reprobe_interval=0.5),
            )

            results: list = []
            errors: list = []

            def run_batch():
                try:
                    results.extend(
                        backend.run(chaos_trial, PAYLOAD, TRIALS)
                    )
                except Exception as exc:  # surfaces in the main thread
                    errors.append(exc)

            batch = threading.Thread(target=run_batch)
            batch.start()
            time.sleep(1.0)  # let chunks reach both workers
            assert batch.is_alive(), "batch finished before the kill"

            victim = procs.pop(1)  # the first worker
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10)

            # the replacement registers while the batch is still running
            replacement_port = _free_port()
            procs.append(_spawn(
                "repro.cluster.worker",
                "--port", str(replacement_port),
                "--backend", "serial",
                "--register", registry_url,
                "--heartbeat-ttl", "2",
            ))
            _await_healthz(f"http://127.0.0.1:{replacement_port}")

            batch.join(timeout=120)
            assert not batch.is_alive(), "batch never finished"
            assert not errors, f"batch raised: {errors}"
            assert results == EXPECTED  # byte-identical to serial

            # a second batch proves the reshaped fleet (survivor +
            # replacement) serves remotely, with identical bytes again
            assert backend.run(chaos_trial, PAYLOAD, TRIALS) == EXPECTED
            stats = backend.stats()
            assert stats["remote_runs"] == 2
            replacement_address = f"127.0.0.1:{replacement_port}"
            by_address = {row["address"]: row for row in stats["workers"]}
            assert by_address[replacement_address]["chunks"] > 0
            assert stats["membership"]["workers_joined"] >= 3

            # the kill is visible in the breaker metric families
            victim_address = f"127.0.0.1:{worker_ports[0]}"
            rendered = render_prometheus(get_default_registry())
            assert "repro_cluster_breaker_state" in rendered
            transition_lines = [
                line for line in rendered.splitlines()
                if line.startswith("repro_cluster_breaker_transitions_total")
                and f'worker="{victim_address}"' in line
            ]
            assert any('state="open"' in line for line in transition_lines), (
                f"no open transition recorded for the victim; "
                f"saw: {transition_lines}"
            )
        finally:
            if backend is not None:
                backend.shutdown()
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()

    def test_sigterm_deregisters_gracefully(self):
        procs: list[subprocess.Popen] = []
        try:
            registry_port = _free_port()
            registry_url = f"http://127.0.0.1:{registry_port}"
            procs.append(_spawn("repro.cluster.registry", "--port", str(registry_port)))
            _await_healthz(registry_url)

            port = _free_port()
            worker = _spawn(
                "repro.cluster.worker",
                "--port", str(port),
                "--register", registry_url,
            )
            procs.append(worker)
            _await_healthz(f"http://127.0.0.1:{port}")

            client = RegistryClient(registry_url)
            assert client.addresses() == (f"127.0.0.1:{port}",)

            worker.terminate()  # SIGTERM: drain, deregister, exit
            worker.wait(timeout=15)
            # gone immediately — no TTL (15s default) wait needed, which
            # is the whole point of graceful deregistration
            assert client.addresses() == ()
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
