"""Registry-backed fleets: membership, breakers, budgets, chaos — in-process.

These tests run the whole self-healing loop against real daemons on
ephemeral ports: workers announce themselves to a live registry, the
coordinator discovers them by polling, breakers trip and recover,
retry budgets degrade gracefully — and every label-shaped result stays
byte-identical to serial throughout, because the fleet only ever
decides *where* a chunk runs, never what it computes.
"""

from __future__ import annotations

import time

from repro.cluster.coordinator import RemoteTrialBackend
from repro.cluster.policy import FailurePolicy
from repro.cluster.registry import RegistryClient
from repro.cluster.worker import make_worker
from tests.cluster.faults import (
    dropped_heartbeats,
    faulty_worker,
    kill_worker,
    partitioned_registry,
    revive_worker,
)
from tests.cluster.test_wire import square

EXPECTED_20 = [square({"base": 7}, t) for t in range(20)]


def fleet_backend(registry, **kwargs):
    kwargs.setdefault("membership_interval", 0.0)
    return RemoteTrialBackend([], registry_url=registry.url, **kwargs)


class TestMembership:
    def test_coordinator_discovers_registered_workers(self, registry):
        with make_worker(register_url=registry.url) as w1, \
                make_worker(register_url=registry.url) as w2:
            backend = fleet_backend(registry)
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            stats = backend.stats()
            assert stats["remote_runs"] == 1
            assert {row["address"] for row in stats["workers"]} == {
                w1.address, w2.address,
            }
            assert all(row["source"] == "registry" for row in stats["workers"])
            assert stats["membership"]["workers_joined"] == 2
            backend.shutdown()

    def test_graceful_worker_exit_shrinks_the_fleet(self, registry):
        w1 = make_worker(register_url=registry.url).start()
        w2 = make_worker(register_url=registry.url).start()
        backend = fleet_backend(registry)
        try:
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            w2.stop()  # drains, deregisters — no TTL wait needed
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            stats = backend.stats()
            assert [row["address"] for row in stats["workers"]] == [w1.address]
            assert stats["membership"]["workers_left"] == 1
        finally:
            backend.shutdown()
            w1.stop()

    def test_late_worker_joins_between_runs(self, registry):
        backend = fleet_backend(registry)
        try:
            # empty fleet: the run degrades to local with the reason recorded
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            assert backend.stats()["local_runs"] == 1
            assert "no workers" in backend.fallback_reason
            with make_worker(register_url=registry.url):
                assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
                assert backend.stats()["remote_runs"] == 1
        finally:
            backend.shutdown()

    def test_killed_worker_with_live_replacement_keeps_runs_remote(self, registry):
        """The acceptance scenario, in-process: SIGKILL one of two
        workers, register a replacement, and the batch still completes
        remotely, byte-identically, with no static worker list."""
        w1 = make_worker(register_url=registry.url, heartbeat_ttl=0.5).start()
        w2 = make_worker(register_url=registry.url, heartbeat_ttl=0.5).start()
        backend = fleet_backend(registry)
        replacement = None
        try:
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            kill_worker(w2)  # no drain, no deregistration: a crash
            replacement = make_worker(register_url=registry.url).start()
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            stats = backend.stats()
            assert stats["remote_runs"] == 2
            assert stats["chunks_recovered_locally"] == 0
            by_address = {row["address"]: row for row in stats["workers"]}
            assert by_address[replacement.address]["chunks"] > 0
            # the dead worker's lease expires; membership drops it
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                backend.run(square, {"base": 7}, 4)
                addresses = {
                    row["address"] for row in backend.stats()["workers"]
                }
                if w2.address not in addresses:
                    break
                time.sleep(0.1)
            assert w2.address not in {
                row["address"] for row in backend.stats()["workers"]
            }
        finally:
            backend.shutdown()
            w1.stop()
            if replacement is not None:
                replacement.stop()

    def test_dropped_heartbeats_expire_the_lease_then_recover(self, registry):
        client = RegistryClient(registry.url)
        with make_worker(register_url=registry.url, heartbeat_ttl=0.3) as w:
            with dropped_heartbeats(w):
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline and client.addresses():
                    time.sleep(0.05)
                assert client.addresses() == ()  # lease expired, worker alive
            # heartbeats resume: the 404 beat re-registers the worker
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline and not client.addresses():
                time.sleep(0.05)
            assert client.addresses() == (w.address,)

    def test_partitioned_registry_degrades_the_view_not_the_fleet(self, registry):
        with make_worker(register_url=registry.url) as w:
            backend = fleet_backend(registry, probe_timeout=1)
            try:
                assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
                with partitioned_registry(registry):
                    # polls fail; the last-known membership keeps serving
                    assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
                stats = backend.stats()
                assert stats["remote_runs"] == 2
                assert stats["membership"]["poll_failures"] >= 1
                assert [row["address"] for row in stats["workers"]] == [w.address]
            finally:
                backend.shutdown()

    def test_static_workers_and_registry_compose(self, registry):
        static = make_worker().start()  # not registered anywhere
        with make_worker(register_url=registry.url) as dynamic:
            backend = RemoteTrialBackend(
                [static.address], registry_url=registry.url,
                membership_interval=0.0,
            )
            try:
                assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
                sources = {
                    row["address"]: row["source"]
                    for row in backend.stats()["workers"]
                }
                assert sources == {
                    static.address: "static", dynamic.address: "registry",
                }
            finally:
                backend.shutdown()
                static.stop()


class TestFailurePolicyIntegration:
    def test_breaker_opens_after_threshold_and_reports_in_stats(self):
        with faulty_worker() as flaky:
            backend = RemoteTrialBackend(
                [flaky],
                policy=FailurePolicy(breaker_threshold=1, reprobe_interval=3600),
            )
            assert backend.run(square, {"base": 7}, 8) == [
                square({"base": 7}, t) for t in range(8)
            ]
            stats = backend.stats()
            assert stats["breakers_open"] == 1
            breaker = stats["workers"][0]["breaker"]
            assert breaker["state"] == "open"
            assert breaker["opened"] >= 1
            assert breaker["retry_in"] > 0
            backend.shutdown()

    def test_open_breaker_swallows_probes_until_backoff(self):
        with faulty_worker() as flaky:
            backend = RemoteTrialBackend(
                [flaky],
                policy=FailurePolicy(breaker_threshold=1, reprobe_interval=3600),
            )
            backend.run(square, {"base": 7}, 8)
            opened = backend.stats()["workers"][0]["breaker"]["opened"]
            for _ in range(3):  # runs while open: no probes, no flapping
                backend.run(square, {"base": 7}, 8)
            assert backend.stats()["workers"][0]["breaker"]["opened"] == opened
            assert backend.stats()["local_runs"] >= 3
            backend.shutdown()

    def test_half_open_admits_one_probe_chunk_then_reopens(self):
        with faulty_worker() as flaky:
            # zero backoff: every run re-probes, goes half-open, feeds the
            # worker exactly one probe chunk, fails, re-opens
            backend = RemoteTrialBackend(
                [flaky],
                policy=FailurePolicy(breaker_threshold=1, reprobe_interval=0.0),
            )
            backend.run(square, {"base": 7}, 8)
            first_opened = backend.stats()["workers"][0]["breaker"]["opened"]
            assert backend.run(square, {"base": 7}, 8) == [
                square({"base": 7}, t) for t in range(8)
            ]
            stats = backend.stats()
            breaker = stats["workers"][0]["breaker"]
            assert breaker["opened"] > first_opened  # probe chunk failed again
            assert breaker["state"] == "open"
            backend.shutdown()

    def test_recovered_worker_closes_its_breaker(self):
        worker = make_worker()
        worker.start()
        address = worker.address
        host, port = address.rsplit(":", 1)
        backend = RemoteTrialBackend(
            [address],
            policy=FailurePolicy(breaker_threshold=1, reprobe_interval=0.0),
            probe_timeout=1,
        )
        try:
            assert backend.run(square, {"base": 7}, 8) == [
                square({"base": 7}, t) for t in range(8)
            ]
            kill_worker(worker)
            backend.run(square, {"base": 7}, 8)  # fails; breaker opens
            assert backend.stats()["workers"][0]["breaker"]["state"] != "closed"
            revived = revive_worker(address).start()
            try:
                # next runs: half-open probe chunk succeeds, breaker closes
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    backend.run(square, {"base": 7}, 8)
                    if backend.stats()["workers"][0]["breaker"]["state"] == "closed":
                        break
                assert backend.stats()["workers"][0]["breaker"]["state"] == "closed"
                assert backend.stats()["remote_runs"] >= 2
            finally:
                revived.stop()
        finally:
            backend.shutdown()

    def test_retry_budget_exhaustion_degrades_with_reason(self):
        with faulty_worker() as flaky:
            backend = RemoteTrialBackend(
                [flaky],
                policy=FailurePolicy(
                    breaker_threshold=100,  # breaker out of the way
                    reprobe_interval=0.0,
                    retry_budget=0,
                ),
            )
            assert backend.run(square, {"base": 7}, 8) == [
                square({"base": 7}, t) for t in range(8)
            ]
            stats = backend.stats()
            assert stats["budget_exhausted_runs"] == 1
            assert stats["retries_spent"] == 0
            assert "retry budget exhausted" in backend.fallback_reason
            backend.shutdown()

    def test_retries_spend_the_budget_and_are_counted(self):
        with faulty_worker() as flaky, make_worker() as good:
            backend = RemoteTrialBackend(
                [flaky, good.address],
                policy=FailurePolicy(breaker_threshold=100, reprobe_interval=0.0),
            )
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            stats = backend.stats()
            assert stats["retries_spent"] > 0  # failovers cost budget
            assert stats["budget_exhausted_runs"] == 0
            assert stats["chunks_failed_over"] > 0
            backend.shutdown()

    def test_budget_is_per_run_not_cumulative(self):
        with faulty_worker() as flaky, make_worker() as good:
            backend = RemoteTrialBackend(
                [flaky, good.address],
                policy=FailurePolicy(breaker_threshold=100, reprobe_interval=0.0),
            )
            for _ in range(3):  # each run gets a fresh 2×chunks budget
                assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            assert backend.stats()["budget_exhausted_runs"] == 0
            backend.shutdown()
