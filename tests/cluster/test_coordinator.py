"""Tests for repro.cluster.coordinator: registry, scheduling, failover.

The fault-injection matrix the issue asks for lives here: a worker
killed mid-batch, a slow worker past the timeout, and a
version-mismatched worker — all of which must still yield the exact
results a local run produces, with the failure visible in the
coordinator's counters rather than in the output.
"""

import threading

import pytest

from repro.cluster import wire
from repro.cluster.coordinator import (
    RemoteTrialBackend,
    WorkerClient,
    workers_from_env,
    workers_from_file,
)
from repro.cluster.worker import make_worker
from repro.errors import ClusterError
from tests.cluster.conftest import dead_address, faulty_worker
from tests.cluster.test_wire import square

EXPECTED_20 = [square({"base": 7}, t) for t in range(20)]


class TestAddressSources:
    def test_workers_from_env(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_TRIAL_WORKERS", "10.0.0.1:8101, 10.0.0.2:8101 ,,"
        )
        assert workers_from_env() == ("10.0.0.1:8101", "10.0.0.2:8101")
        monkeypatch.delenv("REPRO_TRIAL_WORKERS")
        assert workers_from_env() == ()

    def test_workers_from_file(self, tmp_path):
        path = tmp_path / "workers.txt"
        path.write_text(
            "# the cluster\n10.0.0.1:8101\n10.0.0.2:8101, 10.0.0.3:8101\n\n"
        )
        assert workers_from_file(str(path)) == (
            "10.0.0.1:8101",
            "10.0.0.2:8101",
            "10.0.0.3:8101",
        )

    def test_workers_file_must_exist_and_name_workers(self, tmp_path):
        with pytest.raises(ClusterError, match="cannot read"):
            workers_from_file(str(tmp_path / "missing.txt"))
        empty = tmp_path / "empty.txt"
        empty.write_text("# nothing here\n")
        with pytest.raises(ClusterError, match="names no workers"):
            workers_from_file(str(empty))

    def test_bad_addresses_fail_at_construction(self):
        with pytest.raises(ClusterError, match="expected host:port"):
            WorkerClient("nocolon")
        with pytest.raises(ClusterError, match="not a number"):
            WorkerClient("host:port")


class TestDegradedFallback:
    def test_empty_registry_runs_locally_with_reason(self):
        backend = RemoteTrialBackend([])
        assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
        stats = backend.stats()
        assert stats["local_runs"] == 1
        assert stats["fallback_reason"] == "no workers configured"
        backend.shutdown()

    def test_all_probes_failing_runs_locally(self):
        backend = RemoteTrialBackend([dead_address()], probe_timeout=1)
        assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
        stats = backend.stats()
        assert stats["workers_alive"] == 0
        assert "no live workers" in stats["fallback_reason"]
        assert stats["workers"][0]["last_error"] is not None
        backend.shutdown()

    def test_unpicklable_work_runs_locally(self, worker_pair):
        one, two = worker_pair
        backend = RemoteTrialBackend([one.address, two.address], probe_timeout=2)
        payload = {"base": 7, "poison": threading.Lock()}
        expected = [square(payload, t) for t in range(6)]
        assert backend.run(square, payload, 6) == expected
        assert "not picklable" in backend.stats()["fallback_reason"]
        backend.shutdown()

    def test_effective_name_tracks_cluster_health(self, worker_pair):
        one, two = worker_pair
        backend = RemoteTrialBackend([one.address, two.address], probe_timeout=2)
        backend.run(square, {"base": 7}, 8)
        assert backend.effective_name == "remote"
        empty = RemoteTrialBackend([])
        assert empty.effective_name != "remote"
        backend.shutdown()
        empty.shutdown()


class TestFaultInjection:
    def test_version_mismatched_worker_is_rejected_never_scheduled(
        self, worker_pair
    ):
        one, _ = worker_pair
        with faulty_worker(protocol=wire.PROTOCOL_VERSION + 7) as mismatched:
            backend = RemoteTrialBackend(
                [mismatched, one.address], probe_timeout=2
            )
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            stats = backend.stats()
            assert stats["workers_alive"] == 1
            by_address = {w["address"]: w for w in stats["workers"]}
            assert (
                f"protocol v{wire.PROTOCOL_VERSION + 7}"
                in by_address[mismatched]["last_error"]
            )
            assert by_address[mismatched]["chunks"] == 0  # never sent work
            # nothing failed over: the mismatch was caught at probe time
            assert stats["chunk_failures"] == 0
            backend.shutdown()

    def test_worker_failing_mid_batch_fails_over(self, worker_pair):
        """A worker that dies after passing its probe: chunks retried."""
        one, _ = worker_pair
        with faulty_worker() as flaky:  # healthy probe, 503 on every chunk
            backend = RemoteTrialBackend([flaky, one.address], probe_timeout=2)
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            stats = backend.stats()
            assert stats["chunk_failures"] >= 1
            assert (
                stats["chunks_failed_over"] + stats["chunks_recovered_locally"]
                >= 1
            )
            by_address = {w["address"]: w for w in stats["workers"]}
            assert by_address[flaky]["alive"] is False
            assert by_address[flaky]["failures"] >= 1
            backend.shutdown()

    def test_worker_killed_between_batches_fails_over(self):
        """The literal kill: a live worker stops, the next run recovers."""
        victim = make_worker().start()
        survivor = make_worker().start()
        try:
            backend = RemoteTrialBackend(
                [victim.address, survivor.address], probe_timeout=2
            )
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            assert backend.stats()["workers_alive"] == 2
            victim.stop()  # killed; the coordinator still believes it alive
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            stats = backend.stats()
            assert stats["chunk_failures"] >= 1
            assert (
                stats["chunks_failed_over"] + stats["chunks_recovered_locally"]
                >= 1
            )
            backend.shutdown()
        finally:
            survivor.stop()

    def test_slow_worker_times_out_and_fails_over(self, worker_pair):
        one, _ = worker_pair
        with faulty_worker(trial_delay=5.0) as slow:  # way past the timeout
            backend = RemoteTrialBackend(
                [slow, one.address], timeout=0.5, probe_timeout=2
            )
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            stats = backend.stats()
            assert stats["chunk_failures"] >= 1
            by_address = {w["address"]: w for w in stats["workers"]}
            assert by_address[slow]["alive"] is False
            backend.shutdown()

    def test_restarted_worker_rejoins_on_reprobe(self):
        victim = make_worker().start()
        # reprobe_interval=0: retry the dead worker immediately (the
        # default throttles re-probes so down hosts cannot stall runs)
        backend = RemoteTrialBackend(
            [victim.address], probe_timeout=2, reprobe_interval=0.0
        )
        backend.run(square, {"base": 7}, 8)
        address = victim.address
        host, _, port = address.rpartition(":")
        victim.stop()
        backend.run(square, {"base": 7}, 8)  # fails over locally
        assert backend.stats()["workers_alive"] == 0
        revived = make_worker(host=host, port=int(port)).start()
        try:
            assert backend.run(square, {"base": 7}, 8) == [
                square({"base": 7}, t) for t in range(8)
            ]
            assert backend.stats()["workers_alive"] == 1
            backend.shutdown()
        finally:
            revived.stop()

    def test_dead_worker_reprobe_is_throttled(self):
        """A down worker is probed once per interval, not once per run."""
        from repro.cluster.coordinator import _WorkerSlot
        from repro.cluster.policy import CircuitBreaker

        probes = []

        class CountingClient(WorkerClient):
            def probe(self):
                probes.append(1)
                raise ClusterError("still down")

        backend = RemoteTrialBackend([], reprobe_interval=3600.0)
        client = CountingClient(dead_address())
        backend._slots.append(
            _WorkerSlot(client, CircuitBreaker(backend.policy, seed=client.address))
        )
        for _ in range(5):
            backend.run(square, {"base": 7}, 4)
        assert len(probes) == 1  # probed once, then throttled
        backend.shutdown()

    def test_genuine_trial_bug_propagates_not_masked_as_cluster_trouble(
        self, worker_pair
    ):
        from tests.cluster.conftest import boom_trial

        one, two = worker_pair
        backend = RemoteTrialBackend([one.address, two.address], probe_timeout=2)
        # the first worker 500s ("trial raised"); the chunk is NOT failed
        # over — the local re-run raises the genuine error instead
        with pytest.raises(ValueError, match="bad trial"):
            backend.run(boom_trial, {}, 4)
        stats = backend.stats()
        # a trial bug is not cluster trouble: no worker marked dead
        assert stats["workers_alive"] == 2
        assert stats["chunk_failures"] == 0
        assert all(w["failures"] == 0 for w in stats["workers"])
        backend.shutdown()
