"""The fault-injection harness: every way a fleet breaks, on demand.

PR 4's conftest grew these fakes one test at a time; this module makes
them a reusable kit so robustness tests (and the CI chaos job) compose
faults instead of re-implementing them:

- :func:`dead_address` — an address nothing listens on (refused);
- :func:`faulty_worker` — probes healthy, fails every chunk (503),
  optionally after a delay (hung worker) or reporting the wrong
  protocol (mismatch must be rejected at probe time);
- :func:`half_closed_worker` — probes healthy, half-closes the chunk
  connection unanswered (a process SIGKILLed mid-request);
- :func:`slow_worker` — a *real* worker whose chunks succeed after a
  delay (distinguishes "slow" from "broken");
- :func:`kill_worker` — stop a live worker the way SIGKILL would: no
  drain, no deregistration, heartbeat silenced, sockets severed — the
  registry only learns via lease expiry;
- :func:`revive_worker` — bind a replacement on a specific port (the
  restart half of kill/restart);
- :func:`dropped_heartbeats` — silence a registered worker's heartbeat
  without touching the worker (the lease expires under a live daemon);
- :func:`partitioned_registry` — make a registry unreachable
  (connections die without a response) and heal it on exit.

Every fault here shapes *scheduling* only.  The determinism contract
(chunks execute at absolute trial indices) means a label computed
under any combination of these faults is byte-identical to serial —
which is exactly what the tests assert.
"""

from __future__ import annotations

import contextlib
import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.cluster import wire
from repro.cluster.registry import RegistryHandle
from repro.cluster.worker import WorkerHandle, make_worker

__all__ = [
    "boom_trial",
    "dead_address",
    "faulty_worker",
    "half_closed_worker",
    "slow_worker",
    "kill_worker",
    "revive_worker",
    "dropped_heartbeats",
    "partitioned_registry",
]


def boom_trial(payload, trial):
    """A genuinely buggy trial — module-level so it crosses the wire."""
    raise ValueError("bad trial")


def chaos_trial(payload, trial):
    """A deterministic trial slow enough to be mid-flight when a worker
    dies — module-level so subprocess workers can unpickle it."""
    time.sleep(payload.get("delay", 0.0))
    return float(payload["base"] + trial) * 0.5


def dead_address() -> str:
    """A host:port that was just free — connecting to it is refused."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    address = f"127.0.0.1:{probe.getsockname()[1]}"
    probe.close()
    return address


class _FaultyHandler(BaseHTTPRequestHandler):
    """Healthy on probe, broken on work — the faulty-worker template."""

    protocol_report: int = wire.PROTOCOL_VERSION
    trial_delay: float = 0.0
    # 503, not 500: a 500 is the worker's "the trial function raised"
    # signal, which the coordinator deliberately does NOT fail over
    trial_status: int = 503

    def log_message(self, format, *args):  # noqa: A002
        pass

    def _send_json(self, status: int, data: object) -> None:
        body = json.dumps(data).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802
        if self.path.partition("?")[0] == "/healthz":
            self._send_json(
                200, {"status": "ok", "protocol": self.protocol_report}
            )
        else:
            self._send_json(404, {"error": "unknown"})

    def do_POST(self):  # noqa: N802
        length = int(self.headers.get("Content-Length") or 0)
        self.rfile.read(length)
        if self.trial_delay:
            time.sleep(self.trial_delay)
        self._send_json(self.trial_status, {"error": "injected worker fault"})


@contextlib.contextmanager
def _serving(handler_cls):
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler_cls)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"{host}:{int(port)}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@contextlib.contextmanager
def faulty_worker(
    protocol: int | None = None,
    trial_delay: float = 0.0,
    trial_status: int = 503,
):
    """Serve a worker that probes healthy but fails every chunk.

    ``protocol`` overrides the version ``/healthz`` reports (a
    mismatched worker must be rejected at probe time and never sent a
    chunk).  ``trial_delay`` makes ``POST /trials`` hang that long
    before failing (the slow-worker case).
    """
    handler = type(
        "BoundFaultyHandler",
        (_FaultyHandler,),
        {
            "protocol_report": (
                protocol if protocol is not None else wire.PROTOCOL_VERSION
            ),
            "trial_delay": trial_delay,
            "trial_status": trial_status,
        },
    )
    with _serving(handler) as address:
        yield address


class _HalfClosedHandler(_FaultyHandler):
    """Healthy on probe; half-closes the chunk connection, no response.

    This reproduces a worker whose process died (or was SIGKILLed) right
    as the chunk arrived: the kernel sends FIN, the socket reads EOF,
    but the connection is never properly answered.  The coordinator
    must classify this as dead-at-dispatch and fail over immediately —
    not sit out the full chunk timeout.
    """

    hold: float = 5.0

    def do_POST(self):  # noqa: N802
        length = int(self.headers.get("Content-Length") or 0)
        self.rfile.read(length)
        try:
            self.connection.shutdown(socket.SHUT_WR)  # FIN, no response bytes
        except OSError:
            pass
        # keep the fd open so the client sees a half-close, not a reset
        time.sleep(self.hold)


@contextlib.contextmanager
def half_closed_worker(hold: float = 5.0):
    """Serve a worker that half-closes every chunk connection unanswered."""
    handler = type("BoundHalfClosedHandler", (_HalfClosedHandler,), {"hold": hold})
    with _serving(handler) as address:
        yield address


@contextlib.contextmanager
def slow_worker(delay: float, **make_kwargs):
    """A *real* worker whose chunks succeed — after ``delay`` seconds.

    Unlike :func:`faulty_worker`'s ``trial_delay`` (slow, then fails),
    this daemon eventually answers correctly: it tells apart
    coordinator behavior toward slowness (timeouts, hedging) from
    behavior toward breakage (failover, breakers).
    """
    handle = make_worker(**make_kwargs)
    original = handle.worker.run_chunk

    def delayed_run_chunk(data: bytes) -> bytes:
        time.sleep(delay)
        return original(data)

    handle.worker.run_chunk = delayed_run_chunk
    with handle:
        yield handle


def kill_worker(handle: WorkerHandle) -> str:
    """Stop ``handle`` the way ``kill -9`` would; returns its address.

    No drain, no graceful deregistration: the heartbeat simply stops
    (a dead process cannot beat), live connections are severed so a
    coordinator holding one sees EOF, and the listener closes so fresh
    connections are refused.  The registry only finds out when the
    lease TTL expires — exactly like a real crash.
    """
    address = handle.address
    if handle.heartbeat is not None:
        handle.heartbeat.stop(deregister=False)
    handle._server.shutdown()
    handle._server.server_close()
    for connection in list(getattr(handle._server, "live_connections", ())):
        try:
            connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            connection.close()
        except OSError:
            pass
    if handle._thread.is_alive():
        handle._thread.join(timeout=5)
    handle.worker.shutdown()
    return address


def revive_worker(address: str, **make_kwargs) -> WorkerHandle:
    """Bind a replacement worker on ``address`` (the restart after a kill).

    The port may linger in TIME_WAIT for a moment after a kill; retry
    briefly before giving up.
    """
    host, _, port = address.rpartition(":")
    deadline = time.monotonic() + 5.0
    while True:
        try:
            return make_worker(host=host, port=int(port), **make_kwargs)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


@contextlib.contextmanager
def dropped_heartbeats(handle: WorkerHandle):
    """Silence a registered worker's heartbeats inside the block.

    The daemon keeps serving chunks the whole time — only membership
    goes quiet, so the registry expires a lease under a perfectly
    healthy worker (a one-way partition between worker and registry).
    """
    if handle.heartbeat is None:
        raise ValueError("worker is not registered; nothing to drop")
    handle.heartbeat.pause()
    try:
        yield handle
    finally:
        handle.heartbeat.resume()


@contextlib.contextmanager
def partitioned_registry(handle: RegistryHandle):
    """Make a registry unreachable inside the block; heal it on exit.

    Connections are accepted and then die without a response —
    indistinguishable, to clients, from a network partition.  Workers
    must keep serving (and re-register when the partition heals);
    coordinators must keep scheduling on their last-known membership.
    """
    handle.partition(True)
    try:
        yield handle
    finally:
        handle.partition(False)
