"""Every transport failure class maps to its documented recovery.

The contract (multiplex.py / coordinator.py docstrings), as one table:

==================  ============================================
class               documented coordinator behavior
==================  ============================================
stale               one transparent retry on the SAME worker over a
                    fresh socket; the worker is not blamed (no breaker
                    failure, no failover, no retry-budget cost)
dead_at_dispatch    immediate failover to another worker — never
                    waits out the chunk timeout
timed_out           failover; the chunk is never retried on the
                    worker that timed out
==================  ============================================

Each row gets asserted two ways: the multiplexer labels the death
correctly (``ChunkStream.failure_class``), and a real coordinator run
through that fault behaves as documented — with results byte-identical
to serial either way.
"""

from __future__ import annotations

import selectors
import socket
import time

import pytest

from repro.cluster.coordinator import RemoteTrialBackend
from repro.cluster.multiplex import ChunkStream, encode_http_request
from repro.cluster.policy import FailurePolicy
from repro.cluster.worker import make_worker
from tests.cluster.faults import (
    dead_address,
    faulty_worker,
    half_closed_worker,
)
from tests.cluster.test_wire import square

EXPECTED_20 = [square({"base": 7}, t) for t in range(20)]

#: the documented retry/failover contract per failure class
RETRY_CONTRACT = {
    "stale": {"same_worker_retry": True, "fails_over": False, "blames_worker": False},
    "dead_at_dispatch": {"same_worker_retry": False, "fails_over": True, "blames_worker": True},
    "timed_out": {"same_worker_retry": False, "fails_over": True, "blames_worker": True},
}


class TestStreamClassification:
    """The multiplexer labels each death with the right class."""

    @staticmethod
    def _stream(reused: bool, timeout: float = 5.0):
        ours, peer = socket.socketpair()
        stream = ChunkStream(
            "peer", 0,
            encode_http_request("peer", 0, "/trials", b"payload"),
            timeout=timeout,
            sock=ours,
            reused=reused,
        )
        stream.begin()
        return stream, peer

    def test_healthy_stream_has_no_failure_class(self):
        stream, peer = self._stream(reused=True)
        peer.recv(1 << 16)
        peer.sendall(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
        stream.advance(selectors.EVENT_READ)
        assert stream.state == "done"
        assert stream.failure_class is None
        stream.close()
        peer.close()

    def test_eof_on_reused_socket_is_stale(self):
        stream, peer = self._stream(reused=True)
        peer.recv(1 << 16)
        peer.close()
        stream.advance(selectors.EVENT_READ)
        assert stream.failure_class == "stale"

    def test_eof_on_fresh_socket_is_dead_at_dispatch(self):
        stream, peer = self._stream(reused=False)
        peer.recv(1 << 16)
        peer.close()
        stream.advance(selectors.EVENT_READ)
        assert stream.failure_class == "dead_at_dispatch"

    def test_deadline_expiry_is_timed_out(self):
        stream, peer = self._stream(reused=True, timeout=0.1)
        peer.recv(1 << 16)  # request arrives; no response ever comes
        time.sleep(0.15)
        stream.expire()
        assert stream.failure_class == "timed_out"
        peer.close()

    def test_each_contract_row_has_a_class(self):
        # the table and the classifier must name the same classes
        assert set(RETRY_CONTRACT) == {"stale", "dead_at_dispatch", "timed_out"}


class TestCoordinatorBehavior:
    """A real coordinator run through each fault honors the table."""

    def test_stale_is_retried_on_the_same_worker_without_blame(self):
        contract = RETRY_CONTRACT["stale"]
        worker = make_worker().start()
        address = worker.address
        host, port = address.rsplit(":", 1)
        backend = RemoteTrialBackend([address], reprobe_interval=0.0)
        assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
        # restart the daemon on the same port: every kept-alive socket
        # in the coordinator's pool is now stale
        worker.stop()
        revived = make_worker(host=host, port=int(port)).start()
        try:
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            stats = backend.stats()
            # retried on the same worker over fresh sockets...
            assert stats["connection_reconnects"] > 0
            assert (stats["chunks_failed_over"] > 0) == contract["fails_over"]
            # ...and the worker is not blamed for the old sockets
            breaker = stats["workers"][0]["breaker"]
            assert (breaker["state"] != "closed") == contract["blames_worker"]
            assert stats["chunk_failures"] == 0
            assert stats["retries_spent"] == 0  # stale costs no budget
        finally:
            backend.shutdown()
            revived.stop()

    def test_dead_at_dispatch_fails_over_without_waiting_out_the_timeout(self):
        contract = RETRY_CONTRACT["dead_at_dispatch"]
        with make_worker() as good, half_closed_worker(hold=6.0) as broken:
            backend = RemoteTrialBackend(
                [good.address, broken], timeout=30
            )
            started = time.monotonic()
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            elapsed = time.monotonic() - started
            stats = backend.stats()
            assert (stats["chunks_failed_over"] > 0) == contract["fails_over"]
            # a 30s chunk timeout, yet failover happened in seconds:
            # the EOF was classified, not waited out
            assert elapsed < 10
            broken_stats = next(
                row for row in stats["workers"]
                if row["address"] == broken
            )
            assert (broken_stats["failures"] > 0) == contract["blames_worker"]
            backend.shutdown()

    def test_timed_out_fails_over_and_never_returns_to_the_worker(self):
        contract = RETRY_CONTRACT["timed_out"]
        with make_worker() as good, faulty_worker(trial_delay=30.0) as hung:
            backend = RemoteTrialBackend(
                [good.address, hung], timeout=1.0,
                policy=FailurePolicy(reprobe_interval=0.0),
            )
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            stats = backend.stats()
            assert (stats["chunks_failed_over"] > 0) == contract["fails_over"]
            hung_stats = next(
                row for row in stats["workers"]
                if row["address"] == hung
            )
            # blamed (its breaker saw the failure) and abandoned: every
            # chunk ultimately completed on the good worker
            assert (hung_stats["failures"] > 0) == contract["blames_worker"]
            assert hung_stats["chunks"] == 0
            good_stats = next(
                row for row in stats["workers"]
                if row["address"] == good.address
            )
            assert good_stats["chunks"] > 0
            assert stats["chunks_recovered_locally"] == 0  # failover sufficed
            backend.shutdown()

    def test_refused_connection_is_dead_at_dispatch_for_a_known_worker(self):
        # a worker that was probed alive once, then vanished entirely
        with make_worker() as good:
            backend = RemoteTrialBackend(
                [good.address, dead_address()], probe_timeout=1
            )
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            backend.shutdown()
