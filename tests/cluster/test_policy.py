"""The failure policy engine: breaker state machine under a fake clock."""

from __future__ import annotations

import pytest

from repro.cluster.policy import BREAKER_STATES, CircuitBreaker, FailurePolicy
from repro.errors import ClusterError


class FakeClock:
    """A steppable monotonic clock — breaker tests never sleep."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(clock=None, transitions=None, **policy_kwargs):
    policy_kwargs.setdefault("jitter", 0.0)  # deterministic unless asked
    return CircuitBreaker(
        FailurePolicy(**policy_kwargs),
        seed="127.0.0.1:9001",
        clock=clock if clock is not None else FakeClock(),
        on_transition=(
            transitions.append if transitions is not None else None
        ),
    )


class TestFailurePolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"breaker_threshold": 0},
            {"reprobe_interval": -1},
            {"backoff_factor": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"retry_budget": -1},
        ],
    )
    def test_bad_knobs_are_rejected(self, kwargs):
        with pytest.raises(ClusterError):
            FailurePolicy(**kwargs)

    def test_budget_defaults_to_twice_the_chunk_count(self):
        assert FailurePolicy().budget_for(6) == 12
        assert FailurePolicy(retry_budget=3).budget_for(6) == 3
        assert FailurePolicy(retry_budget=0).budget_for(6) == 0

    def test_backoff_is_flat_below_threshold_then_exponential_capped(self):
        policy = FailurePolicy(
            breaker_threshold=3, reprobe_interval=10, backoff_factor=2,
            backoff_max=60,
        )
        assert policy.backoff_for(1) == 10
        assert policy.backoff_for(2) == 10
        assert policy.backoff_for(3) == 10  # first open: base interval
        assert policy.backoff_for(4) == 20
        assert policy.backoff_for(5) == 40
        assert policy.backoff_for(6) == 60  # capped
        assert policy.backoff_for(60) == 60


class TestCircuitBreaker:
    def test_starts_closed_and_probeable(self):
        breaker = make_breaker()
        assert breaker.state == "closed"
        assert breaker.allows_dispatch()
        assert breaker.try_acquire_probe()

    def test_failures_below_threshold_delay_probes_but_stay_closed(self):
        clock = FakeClock()
        breaker = make_breaker(
            clock=clock, breaker_threshold=3, reprobe_interval=10
        )
        breaker.record_failure()
        assert breaker.state == "closed"
        assert not breaker.try_acquire_probe()  # backing off
        clock.advance(10)
        assert breaker.try_acquire_probe()

    def test_threshold_consecutive_failures_trip_the_breaker(self):
        transitions = []
        breaker = make_breaker(transitions=transitions, breaker_threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allows_dispatch()
        assert breaker.opened_count == 1
        assert transitions == ["open"]

    def test_success_resets_the_consecutive_count(self):
        breaker = make_breaker(breaker_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # never 3 in a row

    def test_open_breaker_goes_half_open_after_backoff(self):
        clock = FakeClock()
        transitions = []
        breaker = make_breaker(
            clock=clock, transitions=transitions,
            breaker_threshold=1, reprobe_interval=10,
        )
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.try_acquire_probe()  # backoff not elapsed
        clock.advance(10)
        assert breaker.try_acquire_probe()  # elapses: half-open probe
        assert breaker.state == "half_open"
        assert transitions == ["open", "half_open"]

    def test_half_open_admits_exactly_one_probe_chunk(self):
        clock = FakeClock()
        breaker = make_breaker(
            clock=clock, breaker_threshold=1, reprobe_interval=0
        )
        breaker.record_failure()
        assert breaker.try_acquire_probe()
        assert not breaker.allows_dispatch()  # half-open ≠ schedulable
        assert breaker.try_acquire_half_open_chunk()
        assert not breaker.try_acquire_half_open_chunk()  # one only

    def test_probe_chunk_success_closes_the_breaker(self):
        breaker = make_breaker(breaker_threshold=1, reprobe_interval=0)
        breaker.record_failure()
        breaker.try_acquire_probe()
        breaker.try_acquire_half_open_chunk()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allows_dispatch()
        assert breaker.consecutive_failures == 0

    def test_probe_chunk_failure_reopens_with_longer_backoff(self):
        clock = FakeClock()
        breaker = make_breaker(
            clock=clock, breaker_threshold=1, reprobe_interval=10,
            backoff_factor=2, backoff_max=1000,
        )
        breaker.record_failure()  # open; next attempt at +10
        first_backoff = breaker.next_attempt_at - clock.now
        clock.advance(10)
        breaker.try_acquire_probe()  # half-open
        breaker.try_acquire_half_open_chunk()
        breaker.record_failure()  # probe chunk failed
        assert breaker.state == "open"
        assert breaker.opened_count == 2
        second_backoff = breaker.next_attempt_at - clock.now
        assert second_backoff > first_backoff  # exponential growth

    def test_jitter_staggers_breakers_by_seed(self):
        """Two workers that fail together must not re-probe in lockstep."""
        clock = FakeClock()
        policy = FailurePolicy(reprobe_interval=100, jitter=0.5)
        delays = set()
        for address in ("127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"):
            breaker = CircuitBreaker(policy, seed=address, clock=clock)
            breaker.record_failure()
            delay = breaker.next_attempt_at - clock.now
            assert 50 <= delay <= 150  # within ±jitter of the base
            delays.add(round(delay, 6))
        assert len(delays) == 3  # all different: no thundering herd

    def test_same_seed_is_reproducible(self):
        clock = FakeClock()
        policy = FailurePolicy(reprobe_interval=100, jitter=0.5)
        delays = []
        for _ in range(2):
            breaker = CircuitBreaker(policy, seed="127.0.0.1:9001", clock=clock)
            breaker.record_failure()
            delays.append(breaker.next_attempt_at - clock.now)
        assert delays[0] == delays[1]

    def test_view_reports_state_for_stats(self):
        clock = FakeClock()
        breaker = make_breaker(
            clock=clock, breaker_threshold=1, reprobe_interval=10
        )
        assert breaker.view() == {
            "state": "closed",
            "consecutive_failures": 0,
            "retry_in": None,
            "opened": 0,
        }
        breaker.record_failure()
        view = breaker.view()
        assert view["state"] == "open"
        assert view["retry_in"] == pytest.approx(10)
        assert view["opened"] == 1

    def test_gauge_value_order_is_stable(self):
        # the repro_cluster_breaker_state gauge encodes these indices;
        # reordering them silently re-labels every dashboard
        assert BREAKER_STATES == ("closed", "open", "half_open")
