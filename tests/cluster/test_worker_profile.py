"""Tests for the worker daemon's profiling surface: /debug/profile,
the /stats profiler block, and the --profile flag."""

import argparse
import json
import urllib.error
import urllib.request

import pytest

from repro.cluster.worker import add_worker_arguments, make_worker


def get(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return (
            response.status,
            response.headers.get("Content-Type"),
            response.read(),
        )


@pytest.fixture()
def worker():
    with make_worker(port=0, profile=True) as handle:
        yield handle


class TestDebugProfile:
    def test_json_window_names_the_worker(self, worker):
        status, content_type, body = get(
            f"{worker.url}/debug/profile?seconds=0.3&hz=200&format=json"
        )
        assert status == 200
        assert "application/json" in content_type
        payload = json.loads(body)
        port = int(worker.address.rsplit(":", 1)[1])
        assert payload["source"] == f"worker:{port}"
        # even an idle daemon has live threads (accept loop, main) to sample
        assert payload["samples"] > 0
        assert payload["stacks"]

    def test_collapsed_window(self, worker):
        status, content_type, body = get(
            f"{worker.url}/debug/profile?seconds=0.2&format=collapsed"
        )
        assert status == 200
        assert "text/plain" in content_type
        assert body.decode().strip()

    def test_bad_parameters_rejected(self, worker):
        for query in ("seconds=nope", "format=flame"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(f"{worker.url}/debug/profile?{query}")
            assert excinfo.value.code == 400

    def test_window_works_without_continuous_mode(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        with make_worker(port=0) as handle:
            _, _, body = get(
                f"{handle.url}/debug/profile?seconds=0.2&format=json"
            )
            assert json.loads(body)["samples"] > 0
            # no continuous sink was started for this daemon
            _, _, stats_body = get(f"{handle.url}/stats")
            profiler = json.loads(stats_body)["profiles"]["profiler"]
            assert profiler["sinks"] == 0


class TestStats:
    def test_stats_reports_continuous_profiler(self, worker):
        _, _, body = get(f"{worker.url}/stats")
        profiler = json.loads(body)["profiles"]["profiler"]
        assert profiler["running"] is True
        assert profiler["continuous"] is not None
        assert profiler["continuous"]["hz"] > 0


class TestArguments:
    def test_profile_flag(self):
        parser = argparse.ArgumentParser()
        add_worker_arguments(parser)
        assert parser.parse_args([]).profile is None  # env decides
        assert parser.parse_args(["--profile"]).profile is True

    def test_env_enables_continuous(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        with make_worker(port=0) as handle:
            _, _, body = get(f"{handle.url}/stats")
            profiler = json.loads(body)["profiles"]["profiler"]
            assert profiler["continuous"] is not None
