"""Tests for repro.cluster.multiplex: the non-blocking chunk transport.

The tentpole claims worth pinning down: all chunks are on the wire at
once (wall-clock beats the serial sum), responses are parsed correctly
against Content-Length and HTTP/1.0 EOF framing, and transport deaths
are *classified* — a stale keep-alive retries, a dead-at-dispatch
worker fails over immediately instead of eating the chunk timeout, and
the final results stay byte-identical through all of it.
"""

import selectors
import socket
import time

import pytest

from repro.cluster.coordinator import RemoteTrialBackend
from repro.cluster.multiplex import (
    ChunkMultiplexer,
    ChunkStream,
    encode_http_request,
)
from repro.engine import LabelService
from repro.errors import ClusterError
from repro.label.render_json import render_json
from tests.cluster.conftest import half_closed_worker
from tests.cluster.test_remote_backend import DESIGN, jittered_table
from tests.cluster.test_wire import square

EXPECTED_20 = [square({"base": 7}, t) for t in range(20)]


def slow_square(payload, trial):
    """A trial slow enough that serial vs overlapped dispatch differs."""
    time.sleep(payload["delay"])
    return payload["base"] + trial * trial


class TestEncodeRequest:
    def test_wire_shape(self):
        body = b'{"x": 1}'
        raw = encode_http_request("10.0.0.9", 8101, "/trials", body)
        head, _, got_body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"POST /trials HTTP/1.1\r\n")
        assert b"Host: 10.0.0.9:8101" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert got_body == body

    def test_empty_body_still_declares_length(self):
        raw = encode_http_request("h", 1, "/trials", b"")
        assert b"Content-Length: 0" in raw
        assert raw.endswith(b"\r\n\r\n")


def _adopted_pair(reused: bool = True):
    """A ChunkStream driving one end of a socketpair, plus the peer."""
    ours, peer = socket.socketpair()
    stream = ChunkStream(
        "peer", 0,
        encode_http_request("peer", 0, "/trials", b"payload"),
        timeout=5.0,
        sock=ours,
        reused=reused,
    )
    stream.begin()  # adopts the socket and pumps the request out
    return stream, peer


class TestChunkStreamParsing:
    def test_content_length_response_completes(self):
        stream, peer = _adopted_pair()
        assert peer.recv(1 << 16).startswith(b"POST /trials HTTP/1.1")
        peer.sendall(
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"
        )
        stream.advance(selectors.EVENT_READ)
        assert stream.state == "done"
        assert stream.status == 200
        assert stream.body == b"ok"
        assert stream.reusable  # HTTP/1.1 + Content-Length: keep-alive
        stream.close()
        peer.close()

    def test_http10_body_is_read_to_eof(self):
        stream, peer = _adopted_pair()
        peer.recv(1 << 16)
        peer.sendall(b"HTTP/1.0 200 OK\r\n\r\nuntil-close")
        stream.advance(selectors.EVENT_READ)
        assert stream.state == "receiving"  # EOF is the delimiter
        peer.close()
        stream.advance(selectors.EVENT_READ)
        assert stream.state == "done"
        assert stream.body == b"until-close"
        assert not stream.reusable
        stream.close()

    def test_chunked_transfer_is_rejected(self):
        stream, peer = _adopted_pair()
        peer.recv(1 << 16)
        peer.sendall(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
        )
        stream.advance(selectors.EVENT_READ)
        assert stream.state == "failed"
        assert "chunked" in str(stream.error)
        peer.close()

    def test_eof_on_reused_socket_is_stale(self):
        stream, peer = _adopted_pair(reused=True)
        peer.recv(1 << 16)
        peer.close()  # keep-alive peer went away before responding
        stream.advance(selectors.EVENT_READ)
        assert stream.state == "failed"
        assert stream.stale
        assert not stream.dead_at_dispatch

    def test_eof_on_fresh_socket_is_dead_at_dispatch(self):
        stream, peer = _adopted_pair(reused=False)
        peer.recv(1 << 16)
        peer.close()
        stream.advance(selectors.EVENT_READ)
        assert stream.state == "failed"
        assert stream.dead_at_dispatch
        assert not stream.stale

    def test_truncated_response_is_neither(self):
        stream, peer = _adopted_pair(reused=False)
        peer.recv(1 << 16)
        peer.sendall(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhal")
        stream.advance(selectors.EVENT_READ)
        peer.close()
        stream.advance(selectors.EVENT_READ)
        assert stream.state == "failed"
        assert "truncated" in str(stream.error)
        # bytes arrived: not a dispatch-time death, don't blame routing
        assert not stream.dead_at_dispatch
        assert not stream.stale


class TestMultiplexer:
    def test_refused_connect_finishes_synchronously_or_on_poll(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        mux = ChunkMultiplexer()
        stream = ChunkStream(
            "127.0.0.1", port,
            encode_http_request("127.0.0.1", port, "/trials", b"x"),
            timeout=5.0,
        )
        finished = [stream] if mux.submit(stream) else mux.poll(max_wait=5.0)
        assert finished == [stream]
        assert stream.state == "failed"
        assert stream.dead_at_dispatch  # refused = dead right now
        with pytest.raises(ClusterError, match="unreachable|closed"):
            raise stream.error
        mux.close()

    def test_deadline_is_enforced_without_io(self):
        # a listening socket that never accepts data keeps the stream
        # in flight; the mux must expire it at its own deadline
        sink = socket.socket()
        sink.bind(("127.0.0.1", 0))
        sink.listen(1)
        port = sink.getsockname()[1]
        mux = ChunkMultiplexer()
        stream = ChunkStream(
            "127.0.0.1", port,
            encode_http_request("127.0.0.1", port, "/trials", b"x"),
            timeout=0.3,
        )
        started = time.perf_counter()
        if not mux.submit(stream):
            while mux.active:
                mux.poll(max_wait=1.0)
        elapsed = time.perf_counter() - started
        assert stream.timed_out
        assert elapsed < 2.0
        mux.close()
        sink.close()


class TestOverlappingDispatch:
    def test_all_chunks_in_flight_beats_the_serial_sum(self, worker_pair):
        """The tentpole: every chunk is on the wire at once, so the
        wall-clock tracks the slowest chunk, not the sum of chunks."""
        one, two = worker_pair
        backend = RemoteTrialBackend(
            [one.address, two.address], probe_timeout=2, chunk_size=5
        )
        payload = {"base": 7, "delay": 0.05}
        expected = [slow_square(payload, t) for t in range(20)]
        started = time.perf_counter()
        assert backend.run(slow_square, payload, 20) == expected
        elapsed = time.perf_counter() - started
        serial = 20 * payload["delay"]  # what one-at-a-time would cost
        assert elapsed < serial * 0.8, (
            f"expected overlapped dispatch, got serial-like {elapsed:.2f}s"
        )
        assert backend.stats()["chunks_remote"] >= 4
        backend.shutdown()


class TestDeadAtDispatchFailover:
    def test_half_closed_worker_fails_over_fast(self, worker_pair):
        """The satellite bugfix: a worker whose socket half-closes at
        dispatch is detected from the EOF in milliseconds — not after
        sitting out the full chunk timeout."""
        one, _ = worker_pair
        with half_closed_worker(hold=4.0) as broken:
            backend = RemoteTrialBackend(
                [broken, one.address], timeout=10.0, probe_timeout=2
            )
            started = time.perf_counter()
            assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
            elapsed = time.perf_counter() - started
            stats = backend.stats()
            backend.shutdown()
        # well under both the 10s chunk timeout and the 4s hold
        assert elapsed < 3.0, f"failover took {elapsed:.2f}s"
        assert stats["chunk_failures"] >= 1
        assert stats["chunks_failed_over"] + stats["chunks_recovered_locally"] >= 1
        by_address = {w["address"]: w for w in stats["workers"]}
        assert by_address[broken]["alive"] is False
        assert "closed the connection" in by_address[broken]["last_error"]

    def test_label_byte_identical_under_half_closed_failover(self, worker_pair):
        """End to end: the failover leaves the label byte-identical."""
        one, _ = worker_pair
        table = jittered_table(n=24, seed=3, group=True)
        serial = DESIGN.builder_for(table, dataset_name="mc").build()
        with half_closed_worker(hold=4.0) as broken:
            backend = RemoteTrialBackend(
                [broken, one.address], timeout=10.0, probe_timeout=2
            )
            with LabelService(use_cache=False, trial_backend=backend) as svc:
                outcome = svc.build_label(table, DESIGN, "mc")
        assert render_json(outcome.facts.label) == render_json(serial.label)
