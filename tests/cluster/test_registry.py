"""The worker registry: leases, the HTTP service, client, heartbeats."""

from __future__ import annotations

import time

import pytest

from repro.cluster.registry import (
    DEFAULT_LEASE_TTL,
    HeartbeatLoop,
    RegistryClient,
    WorkerRegistry,
    make_registry,
)
from repro.errors import ClusterError
from repro.telemetry import MetricsRegistry
from repro.telemetry.exporters import render_prometheus
from tests.cluster.faults import partitioned_registry


class TestWorkerRegistry:
    """The lease table itself, no HTTP."""

    def test_register_and_list(self):
        registry = WorkerRegistry(registry=MetricsRegistry())
        lease = registry.register("127.0.0.1:9001", ttl=30, meta={"role": "worker"})
        assert lease["address"] == "127.0.0.1:9001"
        assert lease["expires_in"] == pytest.approx(30, abs=1)
        workers = registry.workers()
        assert [w["address"] for w in workers] == ["127.0.0.1:9001"]
        assert workers[0]["meta"] == {"role": "worker"}

    def test_registration_is_idempotent(self):
        registry = WorkerRegistry(registry=MetricsRegistry())
        registry.register("127.0.0.1:9001")
        registry.register("127.0.0.1:9001")
        assert len(registry.workers()) == 1
        assert registry.stats()["registrations"] == 2

    def test_lease_expires_without_heartbeat(self):
        registry = WorkerRegistry(registry=MetricsRegistry())
        registry.register("127.0.0.1:9001", ttl=0.05)
        time.sleep(0.1)
        assert registry.workers() == []
        assert registry.stats()["expirations"] == 1

    def test_heartbeat_renews_the_lease(self):
        registry = WorkerRegistry(registry=MetricsRegistry())
        registry.register("127.0.0.1:9001", ttl=0.25)
        for _ in range(4):
            time.sleep(0.1)
            lease = registry.heartbeat("127.0.0.1:9001")
        # 0.4s elapsed on a 0.25s ttl: only heartbeats kept it alive
        assert lease["beats"] == 4
        assert [w["address"] for w in registry.workers()] == ["127.0.0.1:9001"]

    def test_heartbeat_for_unknown_worker_raises_keyerror(self):
        registry = WorkerRegistry(registry=MetricsRegistry())
        with pytest.raises(KeyError):
            registry.heartbeat("127.0.0.1:9001")

    def test_deregister_is_explicit_and_idempotent(self):
        registry = WorkerRegistry(registry=MetricsRegistry())
        registry.register("127.0.0.1:9001")
        assert registry.deregister("127.0.0.1:9001") is True
        assert registry.deregister("127.0.0.1:9001") is False
        assert registry.workers() == []

    @pytest.mark.parametrize(
        "address", [None, 42, "no-port", ":9001", "host:not-a-number"]
    )
    def test_junk_addresses_are_rejected(self, address):
        registry = WorkerRegistry(registry=MetricsRegistry())
        with pytest.raises(ClusterError):
            registry.register(address)

    def test_bad_ttl_is_rejected(self):
        registry = WorkerRegistry(registry=MetricsRegistry())
        with pytest.raises(ClusterError):
            registry.register("127.0.0.1:9001", ttl=0)

    def test_lease_events_reach_the_metrics_registry(self):
        metrics = MetricsRegistry()
        registry = WorkerRegistry(registry=metrics)
        registry.register("127.0.0.1:9001", ttl=0.05)
        time.sleep(0.1)
        registry.workers()  # prunes, counting the expiry
        registry.register("127.0.0.1:9002")
        registry.heartbeat("127.0.0.1:9002")
        registry.deregister("127.0.0.1:9002")
        rendered = render_prometheus(metrics)
        assert 'repro_registry_events_total{event="register"} 2' in rendered
        assert 'repro_registry_events_total{event="expire"} 1' in rendered
        assert 'repro_registry_events_total{event="heartbeat"} 1' in rendered
        assert 'repro_registry_events_total{event="deregister"} 1' in rendered
        assert "repro_registry_workers 0" in rendered


class TestRegistryService:
    """The HTTP service + RegistryClient round trip."""

    def test_register_heartbeat_deregister_round_trip(self, registry):
        client = RegistryClient(registry.url)
        lease = client.register("127.0.0.1:9001", ttl=30)
        assert lease["address"] == "127.0.0.1:9001"
        assert client.addresses() == ("127.0.0.1:9001",)
        beat = client.heartbeat("127.0.0.1:9001")
        assert beat["beats"] == 1
        assert client.deregister("127.0.0.1:9001") == {"removed": True}
        assert client.addresses() == ()

    def test_heartbeat_for_unknown_worker_is_http_404(self, registry):
        client = RegistryClient(registry.url)
        with pytest.raises(ClusterError, match="HTTP 404"):
            client.heartbeat("127.0.0.1:9001")

    def test_bad_request_is_http_400(self, registry):
        client = RegistryClient(registry.url)
        with pytest.raises(ClusterError, match="HTTP 400"):
            client.register("not-an-address")

    def test_healthz_identifies_the_role(self, registry):
        health = RegistryClient(registry.url)._call("GET", "/healthz")
        assert health["status"] == "ok"
        assert health["role"] == "registry"

    def test_unreachable_registry_is_a_cluster_error(self):
        handle = make_registry().start()
        url = handle.url
        handle.stop()  # connections are now refused
        with pytest.raises(ClusterError, match="unreachable"):
            RegistryClient(url, timeout=1.0).workers()

    def test_partition_drops_connections_and_heals(self, registry):
        client = RegistryClient(registry.url, timeout=1.0)
        client.register("127.0.0.1:9001", ttl=60)
        with partitioned_registry(registry):
            with pytest.raises(ClusterError):
                client.workers()
        # healed: state survived the partition (leases are in memory)
        assert client.addresses() == ("127.0.0.1:9001",)


class TestHeartbeatLoop:
    """The worker-side registration thread."""

    def test_registers_on_start_and_keeps_lease_alive(self, registry):
        client = RegistryClient(registry.url)
        loop = HeartbeatLoop(client, "127.0.0.1:9001", ttl=0.3).start()
        try:
            time.sleep(0.8)  # several ttls: only the beats keep it alive
            assert client.addresses() == ("127.0.0.1:9001",)
            assert loop.stats()["beats"] >= 2
        finally:
            loop.stop()
        assert client.addresses() == ()  # graceful stop deregisters

    def test_paused_heartbeats_let_the_lease_expire(self, registry):
        client = RegistryClient(registry.url)
        loop = HeartbeatLoop(client, "127.0.0.1:9001", ttl=0.3).start()
        try:
            loop.pause()
            time.sleep(0.5)
            assert client.addresses() == ()
            # resuming re-registers via the heartbeat 404 signal
            loop.resume()
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if client.addresses() == ("127.0.0.1:9001",):
                    break
                time.sleep(0.05)
            assert client.addresses() == ("127.0.0.1:9001",)
            assert loop.stats()["reregistrations"] >= 1
        finally:
            loop.stop(deregister=False)

    def test_survives_a_registry_that_is_not_up_yet(self):
        handle = make_registry()
        url = handle.url
        loop = HeartbeatLoop(
            RegistryClient(url, timeout=1.0), "127.0.0.1:9001", ttl=0.3
        ).start()  # registry not started: initial registration fails
        try:
            assert loop.stats()["errors"] >= 1
            handle.start()  # late registry: the loop re-announces itself
            deadline = time.monotonic() + 5
            client = RegistryClient(url)
            while time.monotonic() < deadline:
                if client.addresses() == ("127.0.0.1:9001",):
                    break
                time.sleep(0.05)
            assert client.addresses() == ("127.0.0.1:9001",)
        finally:
            loop.stop(deregister=False)
            handle.stop()

    def test_default_ttl_matches_the_module_constant(self):
        loop = HeartbeatLoop(RegistryClient("127.0.0.1:1"), "127.0.0.1:9001")
        assert loop.ttl == DEFAULT_LEASE_TTL
