"""The coordinator's persistent per-worker connections.

One ``WorkerClient`` keeps one HTTP/1.1 connection open across chunks
(no per-chunk TCP handshake); a stale connection — the worker
restarted, or closed an idle socket — is retried once on a fresh one
and the re-open is counted, surfaced through ``executor.trial_cluster``
stats as ``connection_reconnects``.
"""

from repro.cluster.coordinator import RemoteTrialBackend, WorkerClient
from repro.cluster.worker import make_worker
from tests.cluster.test_wire import square

EXPECTED_20 = [square({"base": 7}, t) for t in range(20)]


class TestPersistentConnection:
    def test_many_requests_one_connection(self):
        with make_worker() as worker:
            client = WorkerClient(worker.address)
            for _ in range(5):
                client.probe()
            # the connection object survived every request
            assert client._connection is not None
            assert client.reconnects == 0
            client.close()

    def test_chunks_reuse_the_probe_connection(self, worker_pair):
        one, two = worker_pair
        backend = RemoteTrialBackend([one.address, two.address])
        assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
        assert backend.run(square, {"base": 7}, 20) == EXPECTED_20
        stats = backend.stats()
        assert stats["chunks_remote"] > 0
        assert stats["connection_reconnects"] == 0
        assert all(row["reconnects"] == 0 for row in stats["workers"])
        backend.shutdown()

    def test_worker_restart_counts_a_reconnect(self):
        worker = make_worker()
        worker.start()
        address = worker.address
        host, port = address.rsplit(":", 1)
        client = WorkerClient(address)
        client.probe()  # opens the persistent connection
        worker.stop()

        # a new daemon on the same port: the old socket is stale, the
        # retry path must transparently reconnect and count it
        revived = make_worker(host=host, port=int(port))
        revived.start()
        try:
            health = client.probe()
            assert health["status"] == "ok"
            assert client.reconnects == 1
        finally:
            client.close()
            revived.stop()

    def test_dead_worker_still_raises_after_the_retry(self):
        worker = make_worker()
        worker.start()
        client = WorkerClient(worker.address, probe_timeout=2)
        client.probe()
        worker.stop()
        import pytest

        from repro.errors import ClusterError

        with pytest.raises(ClusterError, match="unreachable"):
            client.probe()
        client.close()
