"""Shared cluster-test helpers: real workers and misbehaving ones.

The fault-injection tests need workers that fail in specific,
reproducible ways.  :func:`faulty_worker` serves a daemon that passes
health probes (so the coordinator schedules onto it) but then breaks
at chunk time — with an immediate error (a worker killed mid-batch
looks exactly like this to the coordinator: scheduled, then
unreachable) or by sleeping past the coordinator's timeout (a hung
worker).  :func:`dead_address` reserves an address nothing listens on.
"""

from __future__ import annotations

import contextlib
import json
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.cluster import wire
from repro.cluster.worker import make_worker


def boom_trial(payload, trial):
    """A genuinely buggy trial — module-level so it crosses the wire."""
    raise ValueError("bad trial")


def dead_address() -> str:
    """A host:port that was just free — connecting to it is refused."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    address = f"127.0.0.1:{probe.getsockname()[1]}"
    probe.close()
    return address


class _FaultyHandler(BaseHTTPRequestHandler):
    """Healthy on probe, broken on work — the faulty-worker template."""

    protocol_report: int = wire.PROTOCOL_VERSION
    trial_delay: float = 0.0
    # 503, not 500: a 500 is the worker's "the trial function raised"
    # signal, which the coordinator deliberately does NOT fail over
    trial_status: int = 503

    def log_message(self, format, *args):  # noqa: A002
        pass

    def _send_json(self, status: int, data: object) -> None:
        body = json.dumps(data).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802
        if self.path.partition("?")[0] == "/healthz":
            self._send_json(
                200, {"status": "ok", "protocol": self.protocol_report}
            )
        else:
            self._send_json(404, {"error": "unknown"})

    def do_POST(self):  # noqa: N802
        length = int(self.headers.get("Content-Length") or 0)
        self.rfile.read(length)
        if self.trial_delay:
            time.sleep(self.trial_delay)
        self._send_json(self.trial_status, {"error": "injected worker fault"})


@contextlib.contextmanager
def faulty_worker(
    protocol: int | None = None,
    trial_delay: float = 0.0,
    trial_status: int = 503,
):
    """Serve a worker that probes healthy but fails every chunk.

    ``protocol`` overrides the version ``/healthz`` reports (a
    mismatched worker must be rejected at probe time and never sent a
    chunk).  ``trial_delay`` makes ``POST /trials`` hang that long
    before failing (the slow-worker case).
    """
    handler = type(
        "BoundFaultyHandler",
        (_FaultyHandler,),
        {
            "protocol_report": (
                protocol if protocol is not None else wire.PROTOCOL_VERSION
            ),
            "trial_delay": trial_delay,
            "trial_status": trial_status,
        },
    )
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"{host}:{int(port)}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class _HalfClosedHandler(_FaultyHandler):
    """Healthy on probe; half-closes the chunk connection, no response.

    This reproduces a worker whose process died (or was SIGKILLed) right
    as the chunk arrived: the kernel sends FIN, the socket reads EOF,
    but the connection is never properly answered.  The coordinator
    must classify this as dead-at-dispatch and fail over immediately —
    not sit out the full chunk timeout.
    """

    hold: float = 5.0

    def do_POST(self):  # noqa: N802
        length = int(self.headers.get("Content-Length") or 0)
        self.rfile.read(length)
        try:
            self.connection.shutdown(socket.SHUT_WR)  # FIN, no response bytes
        except OSError:
            pass
        # keep the fd open so the client sees a half-close, not a reset
        time.sleep(self.hold)


@contextlib.contextmanager
def half_closed_worker(hold: float = 5.0):
    """Serve a worker that half-closes every chunk connection unanswered."""
    handler = type("BoundHalfClosedHandler", (_HalfClosedHandler,), {"hold": hold})
    server = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"{host}:{int(port)}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@pytest.fixture()
def worker_pair():
    """Two live trial workers on ephemeral ports."""
    with make_worker() as one, make_worker() as two:
        yield one, two
