"""Shared cluster-test fixtures; the fault kit itself lives in faults.py.

PR 4 grew the misbehaving-worker fakes here one test at a time; PR 8
promoted them to :mod:`tests.cluster.faults` — a composable harness the
robustness tests and the CI chaos job share.  The names are re-exported
so existing ``from tests.cluster.conftest import ...`` call sites keep
working.
"""

from __future__ import annotations

import pytest

from tests.cluster.faults import (  # noqa: F401  (re-exported fault kit)
    boom_trial,
    dead_address,
    dropped_heartbeats,
    faulty_worker,
    half_closed_worker,
    kill_worker,
    partitioned_registry,
    revive_worker,
    slow_worker,
)
from repro.cluster.registry import make_registry
from repro.cluster.worker import make_worker


@pytest.fixture()
def worker_pair():
    """Two live trial workers on ephemeral ports."""
    with make_worker() as one, make_worker() as two:
        yield one, two


@pytest.fixture()
def registry():
    """A live registry service on an ephemeral port."""
    with make_registry() as handle:
        yield handle
