"""Tests for repro.cluster.worker: the trial-daemon's HTTP contract."""

import json
import urllib.error
import urllib.request

import pytest

from repro.cluster import wire
from repro.cluster.worker import TrialWorker, make_worker
from repro.engine.backends import SerialTrialBackend, run_trial_span
from repro.errors import ClusterError
from tests.cluster.test_wire import square


def _get_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post_trials(url, data):
    request = urllib.request.Request(
        url + "/trials",
        data=data,
        headers={"Content-Type": "application/octet-stream"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read()


def _chunk_request(start, stop, payload=None):
    body = wire.encode_trial_work(square, payload or {"base": 3})
    return wire.encode_request(body, start, stop)


class TestTrialWorkerCore:
    def test_run_chunk_executes_the_span_at_absolute_indices(self):
        worker = TrialWorker(backend="serial")
        response = worker.run_chunk(_chunk_request(3, 7))
        assert wire.decode_response(response, 3, 7) == [
            square({"base": 3}, t) for t in range(3, 7)
        ]

    def test_bad_frame_counts_as_rejected(self):
        worker = TrialWorker(backend="serial")
        with pytest.raises(ClusterError):
            worker.run_chunk(b"garbage")
        assert worker.stats()["rejected_frames"] == 1
        assert worker.stats()["chunks"] == 0

    def test_trial_error_counts_and_propagates(self):
        from tests.cluster.conftest import boom_trial

        worker = TrialWorker(backend="serial")
        body = wire.encode_trial_work(boom_trial, {})
        with pytest.raises(ValueError, match="bad trial"):
            worker.run_chunk(wire.encode_request(body, 0, 2))
        assert worker.stats()["trial_errors"] == 1

    def test_remote_backend_is_refused(self):
        # a worker relaying to more workers would recurse
        with pytest.raises(ClusterError, match="remote"):
            TrialWorker(backend="remote")

    def test_health_reports_protocol_and_backend(self):
        worker = TrialWorker()  # default backend: vectorized
        health = worker.health()
        assert health["status"] == "ok"
        assert health["protocol"] == wire.PROTOCOL_VERSION
        assert health["backend"] == "vectorized"


class TestWorkerHTTP:
    def test_healthz_and_stats(self):
        with make_worker(backend="serial") as handle:
            status, health = _get_json(handle.url + "/healthz")
            assert status == 200
            assert health["protocol"] == wire.PROTOCOL_VERSION
            status, stats = _get_json(handle.url + "/stats")
            assert status == 200
            assert stats["chunks"] == 0

    def test_trials_roundtrip_over_http(self):
        with make_worker(backend="serial") as handle:
            status, raw = _post_trials(handle.url, _chunk_request(2, 6))
            assert status == 200
            assert wire.decode_response(raw, 2, 6) == [
                square({"base": 3}, t) for t in range(2, 6)
            ]
            _, stats = _get_json(handle.url + "/stats")
            assert stats["chunks"] == 1
            assert stats["trials"] == 4

    def test_bad_frame_is_http_400(self):
        with make_worker(backend="serial") as handle:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post_trials(handle.url, b"not a frame")
            assert excinfo.value.code == 400

    def test_trial_fault_is_http_500(self):
        from tests.cluster.conftest import boom_trial

        with make_worker(backend="serial") as handle:
            body = wire.encode_trial_work(boom_trial, {})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post_trials(handle.url, wire.encode_request(body, 0, 2))
            assert excinfo.value.code == 500

    def test_unknown_paths_are_404(self):
        with make_worker(backend="serial") as handle:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get_json(handle.url + "/nope")
            assert excinfo.value.code == 404

    def test_draining_worker_answers_healthz_503(self):
        with make_worker(backend="serial") as handle:
            status, _ = _get_json(handle.url + "/healthz")
            assert status == 200
            # shutdown begins: probes must see "leaving", not a socket
            # error — coordinators stop scheduling before requests fail
            handle.worker.begin_drain()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get_json(handle.url + "/healthz")
            assert excinfo.value.code == 503
            body = json.loads(excinfo.value.read())
            assert body["status"] == "draining"
            # chunks in flight still complete: /trials keeps working
            status, raw = _post_trials(handle.url, _chunk_request(0, 4))
            assert status == 200
            _, stats = _get_json(handle.url + "/stats")
            assert stats["draining"] is True

    def test_drain_state_in_health_document(self):
        worker = TrialWorker(backend="serial")
        assert worker.health()["status"] == "ok"
        assert worker.draining is False
        worker.begin_drain()
        assert worker.draining is True
        assert worker.health()["status"] == "draining"


class TestRunTrialSpan:
    """The span helper every worker chunk goes through."""

    def test_span_matches_the_full_run_slice(self):
        backend = SerialTrialBackend()
        full = [square({"base": 3}, t) for t in range(12)]
        assert run_trial_span(backend, square, {"base": 3}, 0, 12) == full
        assert run_trial_span(backend, square, {"base": 3}, 5, 9) == full[5:9]
        assert run_trial_span(backend, square, {"base": 3}, 11, 12) == full[11:]

    def test_empty_span_is_empty(self):
        backend = SerialTrialBackend()
        assert run_trial_span(backend, square, {"base": 3}, 4, 4) == []

    def test_vectorized_span_uses_absolute_rng_streams(self):
        import numpy as np

        from repro.engine.backends import VectorizedTrialBackend
        from repro.ranking import LinearScoringFunction
        from repro.stability import WeightPerturbationStability
        from repro.tabular import Table

        rng = np.random.default_rng(11)
        table = Table.from_dict(
            {
                "name": [f"i{j}" for j in range(30)],
                "a": rng.normal(0, 1, 30) * 0.01 + 1.0,
                "b": rng.normal(0, 1, 30) * 0.01 + 1.0,
            }
        )
        scorer = LinearScoringFunction({"a": 0.5, "b": 0.5})
        estimator = WeightPerturbationStability(
            table, scorer, "name", trials=10, seed=5
        )
        payload = estimator._payload_at(0.1)
        from repro.stability.perturbation import _perturbation_trial

        serial = [_perturbation_trial(payload, t) for t in range(10)]
        backend = VectorizedTrialBackend()
        assert (
            run_trial_span(backend, _perturbation_trial, payload, 3, 8)
            == serial[3:8]
        )
        assert backend.kernel_runs == 1  # the span hit the kernel, not scalar
