"""Tests for repro.cluster.wire: framing, versioning, fingerprints.

The wire layer's contract is *reject, don't guess*: anything that is
not a well-formed frame of this protocol version with an intact body
raises :class:`ClusterError` before any pickle byte is interpreted.
"""

import struct

import pytest

from repro.cluster import wire
from repro.errors import ClusterError


def square(payload, trial):
    return payload["base"] + trial * trial


class TestRoundTrip:
    def test_request_roundtrip(self):
        body = wire.encode_trial_work(square, {"base": 3})
        data = wire.encode_request(body, 4, 9)
        fn, payload, start, stop, trace_id = wire.decode_request(data)
        assert fn is square
        assert payload == {"base": 3}
        assert (start, stop) == (4, 9)
        assert trace_id is None  # no trace was stamped

    def test_request_roundtrip_carries_the_trace_id(self):
        body = wire.encode_trial_work(square, {"base": 3})
        trace = "ab" * wire.TRACE_ID_BYTES
        data = wire.encode_request(body, 4, 9, trace)
        *_, trace_id = wire.decode_request(data)
        assert trace_id == trace

    def test_bad_trace_id_is_rejected_at_encode_time(self):
        body = wire.encode_trial_work(square, {"base": 3})
        with pytest.raises(ClusterError, match="bad trace id"):
            wire.encode_request(body, 4, 9, "not-hex")
        with pytest.raises(ClusterError, match="bad trace id"):
            wire.encode_request(body, 4, 9, "abcd")  # too short

    def test_legacy_minor0_frame_still_decodes(self):
        # a minor-0 peer frames without the minor/trace fields; the
        # digest proves which layout the sender used
        body = wire.encode_trial_work(square, {"base": 3})
        import hashlib

        digest = hashlib.sha256(body).digest()
        legacy = (
            struct.pack(">4sHQQ32s", b"RFTC", wire.PROTOCOL_VERSION, 4, 9, digest)
            + body
        )
        fn, payload, start, stop, trace_id = wire.decode_request(legacy)
        assert fn is square
        assert (start, stop) == (4, 9)
        assert trace_id is None

    def test_response_roundtrip(self):
        data = wire.encode_response([1, 2, 3], 5, 8)
        assert wire.decode_response(data, 5, 8) == [1, 2, 3]

    def test_empty_span_is_rejected_at_encode_time(self):
        body = wire.encode_trial_work(square, {"base": 3})
        with pytest.raises(ClusterError, match="empty"):
            wire.encode_request(body, 5, 5)

    def test_unpicklable_work_raises_cluster_error(self):
        import threading

        with pytest.raises(ClusterError, match="not picklable"):
            wire.encode_trial_work(square, {"poison": threading.Lock()})


class TestRejection:
    def _request(self, start=0, stop=4):
        body = wire.encode_trial_work(square, {"base": 3})
        return wire.encode_request(body, start, stop)

    def test_truncated_frame(self):
        with pytest.raises(ClusterError, match="too short"):
            wire.unframe(b"RFTC\x00")

    def test_bad_magic(self):
        data = b"NOPE" + self._request()[4:]
        with pytest.raises(ClusterError, match="magic"):
            wire.decode_request(data)

    def test_version_mismatch_is_rejected_not_unpickled(self):
        data = bytearray(self._request())
        # rewrite the version field (bytes 4-6, big-endian u16)
        data[4:6] = struct.pack(">H", wire.PROTOCOL_VERSION + 1)
        with pytest.raises(ClusterError, match="protocol version mismatch"):
            wire.decode_request(bytes(data))

    def test_corrupted_body_fails_the_fingerprint(self):
        data = bytearray(self._request())
        data[-1] ^= 0xFF  # flip one payload bit
        with pytest.raises(ClusterError, match="fingerprint mismatch"):
            wire.decode_request(bytes(data))

    def test_truncated_body_fails_the_fingerprint(self):
        data = self._request()
        with pytest.raises(ClusterError, match="fingerprint mismatch"):
            wire.decode_request(data[:-3])

    def test_response_span_must_match_the_request(self):
        data = wire.encode_response([1, 2], 0, 2)
        with pytest.raises(ClusterError, match="does not match"):
            wire.decode_response(data, 2, 4)

    def test_response_length_must_match_the_span(self):
        data = wire.encode_response([1, 2], 0, 3)
        with pytest.raises(ClusterError, match="2 results"):
            wire.decode_response(data, 0, 3)
