"""The acceptance criteria for the remote trial backend.

- labels and estimator outcomes on a >= 2-worker cluster are
  byte-identical to serial for equal seeds, across all three stability
  estimators;
- a worker killed mid-batch is transparently retried, the failover is
  counted in ``GET /engine/stats``, and the final label is unchanged;
- the backend wires through ``LabelService`` / ``REPRO_TRIAL_BACKEND``
  and does not fragment the content-addressed cache.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.app.server import make_server
from repro.cluster.coordinator import RemoteTrialBackend
from repro.cluster.worker import make_worker
from repro.engine import LabelDesign, LabelService, resolve_trial_backend
from repro.label.render_json import render_json
from repro.ranking import LinearScoringFunction
from repro.stability import (
    DataUncertaintyStability,
    WeightPerturbationStability,
    per_attribute_stability,
)
from repro.tabular import Table
from tests.cluster.conftest import faulty_worker

SCORER = LinearScoringFunction({"a": 0.5, "b": 0.5})

DESIGN = LabelDesign.create(
    weights={"a": 0.6, "b": 0.4},
    sensitive="group",
    id_column="name",
    k=5,
    monte_carlo_trials=6,
    monte_carlo_epsilons=(0.1,),
)


def jittered_table(n=30, seed=11, group=False):
    rng = np.random.default_rng(seed)
    data = {
        "name": [f"i{j}" for j in range(n)],
        "a": rng.normal(0, 1, n) * 0.01 + 1.0,
        "b": rng.normal(0, 1, n) * 0.01 + 1.0,
    }
    if group:
        data["group"] = ["g1", "g2"] * (n // 2)
    return Table.from_dict(data)


@pytest.fixture()
def cluster(worker_pair):
    one, two = worker_pair
    backend = RemoteTrialBackend(
        [one.address, two.address], timeout=15, probe_timeout=2
    )
    yield backend
    backend.shutdown()


class TestEstimatorsByteIdentical:
    """All three estimators, serial vs a 2-worker cluster."""

    def test_weight_perturbation(self, cluster):
        table = jittered_table()
        serial = WeightPerturbationStability(table, SCORER, "name", trials=8, seed=5)
        remote = WeightPerturbationStability(
            table, SCORER, "name", trials=8, seed=5, backend=cluster
        )
        for epsilon in (0.0, 0.05, 0.3):
            assert serial.assess_at(epsilon) == remote.assess_at(epsilon)
        assert cluster.stats()["chunks_remote"] > 0  # really went remote

    def test_data_uncertainty(self, cluster):
        table = jittered_table()
        serial = DataUncertaintyStability(table, SCORER, "name", trials=8, seed=5)
        remote = DataUncertaintyStability(
            table, SCORER, "name", trials=8, seed=5, backend=cluster
        )
        for epsilon in (0.0, 0.1, 0.5):
            assert serial.assess_at(epsilon) == remote.assess_at(epsilon)

    def test_per_attribute(self, cluster):
        table = jittered_table()
        serial = per_attribute_stability(
            table, SCORER, "name", trials=6, iterations=3, seed=5
        )
        remote = per_attribute_stability(
            table, SCORER, "name", trials=6, iterations=3, seed=5,
            backend=cluster,
        )
        assert serial == remote


class TestServiceIntegration:
    def test_remote_labels_byte_identical_to_serial(self, cluster):
        """The acceptance criterion, end to end through the service."""
        table = jittered_table(n=24, seed=3, group=True)
        serial = DESIGN.builder_for(table, dataset_name="mc").build()
        with LabelService(use_cache=False, trial_backend=cluster) as svc:
            outcome = svc.build_label(table, DESIGN, "mc")
            executor = svc.stats()["executor"]
        assert render_json(outcome.facts.label) == render_json(serial.label)
        assert executor["trial_backend"] == "remote"
        assert executor["trial_backend_effective"] == "remote"
        assert executor["trial_cluster"]["chunks_remote"] > 0
        assert executor["trial_cluster"]["workers_alive"] == 2

    def test_worker_killed_mid_batch_label_unchanged_failover_counted(
        self, worker_pair
    ):
        """One worker passes its probe then fails every chunk — the label
        must come out byte-identical, with the failover visible in
        ``GET /engine/stats``."""
        one, _ = worker_pair
        table = jittered_table(n=24, seed=3, group=True)
        serial = DESIGN.builder_for(table, dataset_name="mc").build()
        with faulty_worker() as flaky:
            backend = RemoteTrialBackend(
                [flaky, one.address], timeout=15, probe_timeout=2
            )
            with LabelService(use_cache=False, trial_backend=backend) as svc:
                outcome = svc.build_label(table, DESIGN, "mc")
                cluster_stats = svc.stats()["executor"]["trial_cluster"]
        assert render_json(outcome.facts.label) == render_json(serial.label)
        assert cluster_stats["chunk_failures"] >= 1
        assert (
            cluster_stats["chunks_failed_over"]
            + cluster_stats["chunks_recovered_locally"]
            >= 1
        )

    def test_remote_backend_does_not_change_the_cache_key(self, cluster):
        table = jittered_table(n=24, seed=3, group=True)
        with LabelService(trial_backend="serial") as svc:
            a = svc.build_label(table, DESIGN, "mc")
        with LabelService(trial_backend=cluster) as svc:
            b = svc.build_label(table, DESIGN, "mc")
        assert a.fingerprint == b.fingerprint

    def test_resolve_by_name_reads_the_env(self, worker_pair, monkeypatch):
        one, two = worker_pair
        monkeypatch.setenv(
            "REPRO_TRIAL_WORKERS", f"{one.address},{two.address}"
        )
        backend = resolve_trial_backend("remote")
        assert isinstance(backend, RemoteTrialBackend)
        assert backend.stats()["workers_configured"] == 2
        from tests.cluster.test_wire import square

        expected = [square({"base": 7}, t) for t in range(8)]
        assert backend.run(square, {"base": 7}, 8) == expected
        assert backend.stats()["chunks_remote"] > 0
        backend.shutdown()

    def test_resolve_by_name_reads_the_registry_env(self, monkeypatch):
        from repro.cluster.registry import make_registry
        from repro.cluster.worker import make_worker
        from tests.cluster.test_wire import square

        monkeypatch.delenv("REPRO_TRIAL_WORKERS", raising=False)
        with make_registry() as registry:
            monkeypatch.setenv("REPRO_TRIAL_REGISTRY", registry.url)
            with make_worker(register_url=registry.url):
                backend = resolve_trial_backend("remote")
                assert isinstance(backend, RemoteTrialBackend)
                expected = [square({"base": 7}, t) for t in range(8)]
                assert backend.run(square, {"base": 7}, 8) == expected
                stats = backend.stats()
                assert stats["remote_runs"] == 1
                assert stats["membership"]["registry"] == registry.url
                backend.shutdown()

    def test_server_env_var_selects_remote(self, worker_pair, monkeypatch):
        one, two = worker_pair
        monkeypatch.setenv("REPRO_TRIAL_BACKEND", "remote")
        monkeypatch.setenv(
            "REPRO_TRIAL_WORKERS", f"{one.address},{two.address}"
        )
        with make_server() as handle:
            with urllib.request.urlopen(
                handle.url + "/engine/stats", timeout=10
            ) as response:
                stats = json.loads(response.read())
        executor = stats["executor"]
        assert executor["trial_backend"] == "remote"
        assert executor["trial_cluster"]["workers_configured"] == 2
