"""Tests for repro.preprocess.binning."""

import pytest

from repro.errors import ProtectedGroupError
from repro.preprocess import binarize_categorical, binarize_numeric
from repro.tabular import Table


@pytest.fixture()
def faculty_table():
    return Table.from_dict(
        {
            "dept": ["a", "b", "c", "d"],
            "Faculty": [10.0, 20.0, 30.0, 40.0],
        }
    )


class TestBinarizeNumeric:
    def test_median_split_default(self, faculty_table):
        t = binarize_numeric(faculty_table, "Faculty", "DeptSizeBin",
                             above_label="large", below_label="small")
        assert list(t.column("DeptSizeBin").values) == [
            "small", "small", "large", "large",
        ]

    def test_explicit_threshold(self, faculty_table):
        t = binarize_numeric(faculty_table, "Faculty", "bin", threshold=35.0)
        assert list(t.column("bin").values) == ["low", "low", "low", "high"]

    def test_threshold_boundary_is_inclusive_above(self, faculty_table):
        t = binarize_numeric(faculty_table, "Faculty", "bin", threshold=20.0)
        assert t.column("bin").values[1] == "high"

    def test_missing_becomes_missing(self):
        t = Table.from_dict({"x": [1.0, float("nan"), 3.0]})
        out = binarize_numeric(t, "x", "bin", threshold=2.0)
        assert out.column("bin").values[1] == ""

    def test_degenerate_split_rejected(self, faculty_table):
        with pytest.raises(ProtectedGroupError, match="all rows"):
            binarize_numeric(faculty_table, "Faculty", "bin", threshold=0.0)

    def test_equal_labels_rejected(self, faculty_table):
        with pytest.raises(ProtectedGroupError, match="differ"):
            binarize_numeric(faculty_table, "Faculty", "bin",
                             above_label="x", below_label="x")

    def test_all_missing_rejected(self):
        t = Table.from_dict({"x": [float("nan")]})
        with pytest.raises(ProtectedGroupError, match="no non-missing"):
            binarize_numeric(t, "x", "bin")

    def test_original_table_unchanged(self, faculty_table):
        binarize_numeric(faculty_table, "Faculty", "bin")
        assert "bin" not in faculty_table


class TestBinarizeCategorical:
    @pytest.fixture()
    def race_table(self):
        return Table.from_dict(
            {"race": ["A", "B", "C", "A", "B"], "v": [1.0, 2.0, 3.0, 4.0, 5.0]}
        )

    def test_single_protected_category(self, race_table):
        t = binarize_categorical(race_table, "race", "bin", ["A"])
        assert list(t.column("bin").values) == ["A", "other", "other", "A", "other"]

    def test_multiple_protected_categories(self, race_table):
        t = binarize_categorical(race_table, "race", "bin", ["A", "C"])
        assert list(t.column("bin").values) == [
            "protected", "other", "protected", "protected", "other",
        ]

    def test_custom_labels(self, race_table):
        t = binarize_categorical(
            race_table, "race", "bin", ["A"],
            protected_label="minority", other_label="majority",
        )
        assert set(t.column("bin").values) == {"minority", "majority"}

    def test_unknown_category_rejected(self, race_table):
        with pytest.raises(ProtectedGroupError, match="no categor"):
            binarize_categorical(race_table, "race", "bin", ["Z"])

    def test_empty_protected_rejected(self, race_table):
        with pytest.raises(ProtectedGroupError, match="no protected"):
            binarize_categorical(race_table, "race", "bin", [])

    def test_all_categories_protected_rejected(self, race_table):
        with pytest.raises(ProtectedGroupError, match="every category"):
            binarize_categorical(race_table, "race", "bin", ["A", "B", "C"])

    def test_equal_labels_rejected(self, race_table):
        with pytest.raises(ProtectedGroupError, match="differ"):
            binarize_categorical(race_table, "race", "bin", ["A"],
                                 protected_label="x", other_label="x")

    def test_missing_stays_missing(self):
        t = Table.from_dict({"race": ["A", "", "B"]})
        out = binarize_categorical(t, "race", "bin", ["A"])
        assert out.column("bin").values[1] == ""
