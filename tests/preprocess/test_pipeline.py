"""Tests for repro.preprocess.pipeline."""

import pytest

from repro.errors import MissingColumnError, NormalizationError
from repro.preprocess import NormalizationPlan, TablePreprocessor
from repro.tabular import Table


@pytest.fixture()
def table():
    return Table.from_dict(
        {"a": [0.0, 10.0], "b": [5.0, 15.0], "c": ["x", "y"]}
    )


class TestNormalizationPlan:
    def test_scheme_for_listed_and_unlisted(self):
        plan = NormalizationPlan(columns=("a",), default_scheme="zscore")
        assert plan.scheme_for("a") == "zscore"
        assert plan.scheme_for("b") == "identity"

    def test_overrides(self):
        plan = NormalizationPlan(
            columns=("a", "b"), default_scheme="minmax", overrides={"b": "zscore"}
        )
        assert plan.scheme_for("a") == "minmax"
        assert plan.scheme_for("b") == "zscore"

    def test_raw_plan_touches_nothing(self):
        assert NormalizationPlan.raw().columns == ()

    def test_minmax_all(self):
        plan = NormalizationPlan.minmax_all(["a", "b"])
        assert plan.scheme_for("a") == "minmax"


class TestTablePreprocessor:
    def test_fit_transform_minmax(self, table):
        prep = TablePreprocessor(NormalizationPlan.minmax_all(["a"]))
        out = prep.fit_transform(table)
        assert out.column("a").values.tolist() == [0.0, 1.0]
        assert out.column("b").values.tolist() == [5.0, 15.0]  # untouched

    def test_same_fit_on_slice(self, table):
        # the top-k table must be rescaled with the full-table fit
        prep = TablePreprocessor(NormalizationPlan.minmax_all(["a"]))
        prep.fit(table)
        sliced = prep.transform(table.head(1))
        assert sliced.column("a").values.tolist() == [0.0]

    def test_transform_before_fit_rejected(self, table):
        prep = TablePreprocessor(NormalizationPlan.minmax_all(["a"]))
        with pytest.raises(NormalizationError, match="before fit"):
            prep.transform(table)

    def test_fit_missing_column_rejected(self, table):
        prep = TablePreprocessor(NormalizationPlan.minmax_all(["zz"]))
        with pytest.raises(MissingColumnError):
            prep.fit(table)

    def test_fit_categorical_rejected(self, table):
        from repro.errors import ColumnTypeError

        prep = TablePreprocessor(NormalizationPlan.minmax_all(["c"]))
        with pytest.raises(ColumnTypeError):
            prep.fit(table)

    def test_transform_on_table_missing_fitted_column(self, table):
        prep = TablePreprocessor(NormalizationPlan.minmax_all(["a"]))
        prep.fit(table)
        with pytest.raises(NormalizationError, match="missing from the table"):
            prep.transform(table.drop(["a"]))

    def test_fitted_params_exposed(self, table):
        prep = TablePreprocessor(NormalizationPlan.minmax_all(["a", "b"]))
        prep.fit(table)
        params = prep.fitted_params()
        assert params["a"] == {"min": 0.0, "max": 10.0}
        assert prep.schemes() == {"a": "minmax", "b": "minmax"}

    def test_raw_plan_is_identity(self, table):
        prep = TablePreprocessor(NormalizationPlan.raw())
        out = prep.fit_transform(table)
        assert out == table

    def test_mixed_schemes(self, table):
        plan = NormalizationPlan(
            columns=("a", "b"), default_scheme="minmax", overrides={"b": "zscore"}
        )
        out = TablePreprocessor(plan).fit_transform(table)
        assert out.column("a").values.tolist() == [0.0, 1.0]
        assert out.column("b").values.mean() == pytest.approx(0.0)

    def test_original_table_unchanged(self, table):
        TablePreprocessor(NormalizationPlan.minmax_all(["a"])).fit_transform(table)
        assert table.column("a").values.tolist() == [0.0, 10.0]
