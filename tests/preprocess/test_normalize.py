"""Tests for repro.preprocess.normalize."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NormalizationError
from repro.preprocess import (
    IdentityNormalizer,
    MinMaxNormalizer,
    ZScoreNormalizer,
    make_normalizer,
)
from repro.tabular import NumericColumn

# spread bounded away from zero: a spread below ~1e-150 underflows the
# variance computation and is legitimately rejected as constant
varied_values = st.lists(
    st.floats(-1e4, 1e4), min_size=2, max_size=40
).filter(lambda vs: max(vs) - min(vs) > 1e-6)


class TestMinMax:
    def test_maps_to_unit_interval(self):
        col = NumericColumn("x", [0.0, 5.0, 10.0])
        out = MinMaxNormalizer().fit_transform(col)
        assert out.values.tolist() == [0.0, 0.5, 1.0]

    def test_transform_uses_fit_parameters(self):
        norm = MinMaxNormalizer().fit(NumericColumn("x", [0.0, 10.0]))
        out = norm.transform(NumericColumn("x", [20.0]))
        assert out.values.tolist() == [2.0]  # extrapolates beyond the fit

    def test_constant_rejected(self):
        with pytest.raises(NormalizationError, match="constant"):
            MinMaxNormalizer().fit(NumericColumn("x", [3.0, 3.0]))

    def test_nan_passes_through(self):
        out = MinMaxNormalizer().fit_transform(
            NumericColumn("x", [0.0, float("nan"), 10.0])
        )
        assert np.isnan(out.values[1])

    def test_use_before_fit_rejected(self):
        with pytest.raises(NormalizationError, match="before fit"):
            MinMaxNormalizer().transform(NumericColumn("x", [1.0]))

    def test_all_missing_rejected(self):
        with pytest.raises(NormalizationError, match="no non-missing"):
            MinMaxNormalizer().fit(NumericColumn("x", [float("nan")]))

    def test_params(self):
        norm = MinMaxNormalizer()
        assert norm.params() == {}
        norm.fit(NumericColumn("x", [1.0, 9.0]))
        assert norm.params() == {"min": 1.0, "max": 9.0}

    @given(varied_values)
    @settings(max_examples=50)
    def test_output_range_on_fit_data(self, values):
        out = MinMaxNormalizer().fit_transform(NumericColumn("x", values))
        clean = out.values[~np.isnan(out.values)]
        assert clean.min() == pytest.approx(0.0, abs=1e-12)
        assert clean.max() == pytest.approx(1.0, abs=1e-12)


class TestZScore:
    def test_zero_mean_unit_std(self):
        out = ZScoreNormalizer().fit_transform(NumericColumn("x", [1.0, 2.0, 3.0]))
        assert out.values.mean() == pytest.approx(0.0, abs=1e-12)
        assert out.values.std(ddof=0) == pytest.approx(1.0)

    def test_constant_rejected(self):
        with pytest.raises(NormalizationError, match="constant"):
            ZScoreNormalizer().fit(NumericColumn("x", [2.0, 2.0]))

    def test_params(self):
        norm = ZScoreNormalizer().fit(NumericColumn("x", [1.0, 3.0]))
        assert norm.params() == {"mean": 2.0, "std": 1.0}

    @given(varied_values)
    @settings(max_examples=50)
    def test_standardization_invariant(self, values):
        out = ZScoreNormalizer().fit_transform(NumericColumn("x", values))
        assert float(out.values.mean()) == pytest.approx(0.0, abs=1e-6)


class TestIdentity:
    def test_no_op(self):
        col = NumericColumn("x", [1.0, -5.0])
        out = IdentityNormalizer().fit_transform(col)
        assert out.values.tolist() == [1.0, -5.0]


class TestFactory:
    @pytest.mark.parametrize(
        "scheme,cls",
        [
            ("minmax", MinMaxNormalizer),
            ("zscore", ZScoreNormalizer),
            ("identity", IdentityNormalizer),
            ("raw", IdentityNormalizer),
        ],
    )
    def test_known_schemes(self, scheme, cls):
        assert isinstance(make_normalizer(scheme), cls)

    def test_unknown_scheme(self):
        with pytest.raises(NormalizationError, match="unknown normalization scheme"):
            make_normalizer("log")

    def test_fitted_flag(self):
        norm = make_normalizer("minmax")
        assert not norm.fitted
        norm.fit(NumericColumn("x", [0.0, 1.0]))
        assert norm.fitted
