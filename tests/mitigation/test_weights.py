"""Tests for repro.mitigation.weights."""

import numpy as np
import pytest

from repro.errors import RankingFactsError
from repro.fairness.pairwise import PairwiseMeasure
from repro.fairness.fair_star import FairStarMeasure
from repro.mitigation import (
    fairness_frontier,
    suggest_diverse_weights,
    suggest_fair_weights,
)
from repro.preprocess import NormalizationPlan, TablePreprocessor
from repro.ranking import LinearScoringFunction, rank_table
from repro.tabular import Table


@pytest.fixture(scope="module")
def prepared_cs(cs_table):
    return TablePreprocessor(
        NormalizationPlan.minmax_all(["PubCount", "Faculty", "GRE"])
    ).fit_transform(cs_table)


@pytest.fixture(scope="module")
def figure1_scorer():
    return LinearScoringFunction({"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2})


class TestSuggestFairWeights:
    def test_suggestions_actually_pass(self, prepared_cs, figure1_scorer):
        suggestions = suggest_fair_weights(
            prepared_cs, figure1_scorer, "DeptSizeBin", "small",
            id_column="DeptName",
        )
        assert suggestions, "the searched neighbourhood contains fair recipes"
        measure = FairStarMeasure(k=10, alpha=0.05)
        from repro.fairness import ProtectedGroup

        for suggestion in suggestions:
            ranking = rank_table(
                prepared_cs, LinearScoringFunction(suggestion.weights), "DeptName"
            )
            group = ProtectedGroup(ranking, "DeptSizeBin", "small")
            assert measure.audit(group).fair

    def test_ordered_by_distance(self, prepared_cs, figure1_scorer):
        suggestions = suggest_fair_weights(
            prepared_cs, figure1_scorer, "DeptSizeBin", "small",
            id_column="DeptName",
        )
        distances = [s.distance for s in suggestions]
        assert distances == sorted(distances)

    def test_suggestions_shift_away_from_size(self, prepared_cs, figure1_scorer):
        # mitigating size-unfairness must move weight toward GRE, the only
        # size-independent attribute
        best = suggest_fair_weights(
            prepared_cs, figure1_scorer, "DeptSizeBin", "small",
            id_column="DeptName",
        )[0]
        assert best.weights["GRE"] > 0.2

    def test_already_fair_recipe_costs_nothing(self, prepared_cs):
        gre_only = LinearScoringFunction({"GRE": 1.0, "PubCount": 0.0001})
        suggestions = suggest_fair_weights(
            prepared_cs, gre_only, "DeptSizeBin", "small", id_column="DeptName",
        )
        assert suggestions
        assert suggestions[0].distance < 0.05

    def test_custom_measure(self, prepared_cs, figure1_scorer):
        suggestions = suggest_fair_weights(
            prepared_cs, figure1_scorer, "DeptSizeBin", "small",
            measure=PairwiseMeasure(alpha=0.05), id_column="DeptName",
        )
        for suggestion in suggestions:
            assert suggestion.fair

    def test_impossible_target_returns_empty(self):
        # the protected group is strictly dominated on every attribute:
        # no weight vector can make it fair
        n = 40
        t = Table.from_dict(
            {
                "name": [f"i{j}" for j in range(n)],
                "g": ["o"] * 20 + ["p"] * 20,
                "a": list(range(40, 0, -1)),
                "b": list(range(80, 0, -2)),
            }
        )
        scorer = LinearScoringFunction({"a": 0.5, "b": 0.5})
        suggestions = suggest_fair_weights(
            t, scorer, "g", "p", id_column="name",
            measure=PairwiseMeasure(alpha=0.05),
        )
        assert suggestions == []

    def test_max_suggestions_respected(self, prepared_cs, figure1_scorer):
        suggestions = suggest_fair_weights(
            prepared_cs, figure1_scorer, "DeptSizeBin", "small",
            id_column="DeptName", max_suggestions=2,
        )
        assert len(suggestions) <= 2

    def test_validation(self, prepared_cs, figure1_scorer):
        with pytest.raises(RankingFactsError):
            suggest_fair_weights(
                prepared_cs, figure1_scorer, "DeptSizeBin", "small",
                max_suggestions=0,
            )

    def test_deterministic(self, prepared_cs, figure1_scorer):
        a = suggest_fair_weights(
            prepared_cs, figure1_scorer, "DeptSizeBin", "small",
            id_column="DeptName",
        )
        b = suggest_fair_weights(
            prepared_cs, figure1_scorer, "DeptSizeBin", "small",
            id_column="DeptName",
        )
        assert a == b

    def test_as_dict(self, prepared_cs, figure1_scorer):
        suggestion = suggest_fair_weights(
            prepared_cs, figure1_scorer, "DeptSizeBin", "small",
            id_column="DeptName",
        )[0]
        d = suggestion.as_dict()
        assert {"weights", "distance", "fair", "p_value", "top_k_overlap"} == set(d)


class TestSuggestDiverseWeights:
    def test_restores_missing_category(self, prepared_cs, figure1_scorer):
        suggestions = suggest_diverse_weights(
            prepared_cs, figure1_scorer, "DeptSizeBin", "small",
            minimum_count=2, id_column="DeptName",
        )
        assert suggestions
        for suggestion in suggestions:
            ranking = rank_table(
                prepared_cs, LinearScoringFunction(suggestion.weights), "DeptName"
            )
            assert ranking.group_count_at_k("DeptSizeBin", "small", 10) >= 2

    def test_higher_minimum_needs_bigger_change(self, prepared_cs, figure1_scorer):
        one = suggest_diverse_weights(
            prepared_cs, figure1_scorer, "DeptSizeBin", "small",
            minimum_count=1, id_column="DeptName",
        )
        four = suggest_diverse_weights(
            prepared_cs, figure1_scorer, "DeptSizeBin", "small",
            minimum_count=4, id_column="DeptName",
        )
        if one and four:
            assert four[0].distance >= one[0].distance

    def test_unknown_category_rejected(self, prepared_cs, figure1_scorer):
        with pytest.raises(RankingFactsError, match="no category"):
            suggest_diverse_weights(
                prepared_cs, figure1_scorer, "DeptSizeBin", "tiny",
            )

    def test_bad_minimum_rejected(self, prepared_cs, figure1_scorer):
        with pytest.raises(RankingFactsError):
            suggest_diverse_weights(
                prepared_cs, figure1_scorer, "DeptSizeBin", "small",
                minimum_count=0,
            )


class TestFairnessFrontier:
    def test_frontier_sorted_and_eventually_fair(self, prepared_cs, figure1_scorer):
        frontier = fairness_frontier(
            prepared_cs, figure1_scorer, "DeptSizeBin", "small",
            id_column="DeptName",
        )
        distances = [point.distance for point in frontier]
        assert distances == sorted(distances)
        assert any(point.fair for point in frontier)

    def test_near_zero_distance_is_unfair_here(self, prepared_cs, figure1_scorer):
        frontier = fairness_frontier(
            prepared_cs, figure1_scorer, "DeptSizeBin", "small",
            id_column="DeptName",
        )
        assert not frontier[0].fair  # the original recipe's bucket

    def test_resolution_validation(self, prepared_cs, figure1_scorer):
        with pytest.raises(RankingFactsError):
            fairness_frontier(
                prepared_cs, figure1_scorer, "DeptSizeBin", "small",
                resolution=0.0,
            )
