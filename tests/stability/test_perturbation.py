"""Tests for repro.stability.perturbation and repro.stability.uncertainty."""

import numpy as np
import pytest

from repro.errors import StabilityError
from repro.ranking import LinearScoringFunction
from repro.stability import (
    DataUncertaintyStability,
    WeightPerturbationStability,
    minimal_change_epsilon,
)
from repro.tabular import Table


def gapped_table(n=20, gap=10.0, seed=5):
    """Items with huge score gaps: immune to small perturbations."""
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "name": [f"i{j}" for j in range(n)],
            "a": np.arange(n, dtype=float) * gap,
            "b": np.arange(n, dtype=float) * gap + rng.normal(0, 0.01, n),
        }
    )


def tight_table(n=20, seed=5):
    """Items with nearly tied scores: any jitter reorders them."""
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "name": [f"i{j}" for j in range(n)],
            "a": rng.normal(0, 1, n) * 0.001 + 1.0,
            "b": rng.normal(0, 1, n) * 0.001 + 1.0,
        }
    )


SCORER = LinearScoringFunction({"a": 0.5, "b": 0.5})


class TestWeightPerturbation:
    def test_zero_epsilon_changes_nothing(self):
        est = WeightPerturbationStability(gapped_table(), SCORER, "name", trials=10)
        outcome = est.assess_at(0.0)
        assert outcome.mean_kendall_tau == pytest.approx(1.0)
        assert outcome.change_probability == 0.0

    def test_gapped_ranking_is_robust(self):
        est = WeightPerturbationStability(gapped_table(), SCORER, "name", trials=15)
        outcome = est.assess_at(0.2)
        assert outcome.mean_top_k_overlap == pytest.approx(1.0)

    def test_tight_ranking_is_fragile(self):
        est = WeightPerturbationStability(tight_table(), SCORER, "name", trials=15)
        outcome = est.assess_at(0.2)
        assert outcome.change_probability > 0.5

    def test_profile_monotone_in_epsilon(self):
        est = WeightPerturbationStability(tight_table(), SCORER, "name", trials=20)
        profile = est.profile([0.0, 0.1, 0.5])
        taus = [o.mean_kendall_tau for o in profile]
        assert taus[0] >= taus[1] >= taus[2] - 0.05

    def test_minimal_change_epsilon_ordering(self):
        fragile = WeightPerturbationStability(
            tight_table(), SCORER, "name", trials=15
        ).minimal_change_epsilon(iterations=6)
        robust = WeightPerturbationStability(
            gapped_table(), SCORER, "name", trials=15
        ).minimal_change_epsilon(iterations=6)
        assert fragile < robust
        assert robust == 1.0  # never changes within the sweep: hi returned

    def test_functional_shortcut(self):
        eps = minimal_change_epsilon(
            tight_table(), SCORER, "name", trials=10, probability=0.5
        )
        assert 0.0 <= eps <= 1.0

    def test_deterministic_given_seed(self):
        a = WeightPerturbationStability(tight_table(), SCORER, "name", trials=10,
                                        seed=3).assess_at(0.1)
        b = WeightPerturbationStability(tight_table(), SCORER, "name", trials=10,
                                        seed=3).assess_at(0.1)
        assert a == b

    def test_zero_weight_attribute_can_reenter(self):
        table = gapped_table()
        scorer = LinearScoringFunction({"a": 1.0, "b": 0.0})
        est = WeightPerturbationStability(table, scorer, "name", trials=5)
        outcome = est.assess_at(0.5)  # must not crash on the zero weight
        assert outcome.trials == 5

    def test_validation(self):
        with pytest.raises(StabilityError):
            WeightPerturbationStability(gapped_table(), SCORER, "name", k=0)
        with pytest.raises(StabilityError):
            WeightPerturbationStability(gapped_table(), SCORER, "name", trials=0)
        with pytest.raises(StabilityError):
            WeightPerturbationStability(gapped_table(), SCORER, "zz")
        est = WeightPerturbationStability(gapped_table(), SCORER, "name", trials=5)
        with pytest.raises(StabilityError):
            est.assess_at(-0.1)
        with pytest.raises(StabilityError):
            est.minimal_change_epsilon(probability=0.0)
        with pytest.raises(StabilityError):
            est.profile([])

    def test_outcome_as_dict(self):
        est = WeightPerturbationStability(gapped_table(), SCORER, "name", trials=5)
        d = est.assess_at(0.1).as_dict()
        assert {"epsilon", "mean_kendall_tau", "mean_top_k_overlap",
                "change_probability", "trials"} == set(d)


class TestDataUncertainty:
    def test_zero_noise_changes_nothing(self):
        est = DataUncertaintyStability(gapped_table(), SCORER, "name", trials=10)
        outcome = est.assess_at(0.0)
        assert outcome.change_probability == 0.0

    def test_tight_ranking_fragile_under_noise(self):
        est = DataUncertaintyStability(tight_table(), SCORER, "name", trials=15)
        assert est.assess_at(0.5).change_probability > 0.5

    def test_gapped_ranking_robust_under_small_noise(self):
        est = DataUncertaintyStability(gapped_table(), SCORER, "name", trials=15)
        assert est.assess_at(0.01).mean_top_k_overlap == pytest.approx(1.0)

    def test_constant_attribute_skipped(self):
        t = Table.from_dict(
            {"name": ["x", "y"], "a": [2.0, 1.0], "c": [5.0, 5.0]}
        )
        scorer = LinearScoringFunction({"a": 1.0, "c": 1.0})
        est = DataUncertaintyStability(t, scorer, "name", trials=5, k=1)
        outcome = est.assess_at(0.3)
        assert outcome.trials == 5  # no crash, constant column untouched

    def test_missing_values_stay_missing(self):
        t = Table.from_dict(
            {"name": ["x", "y", "z"], "a": [3.0, float("nan"), 1.0]}
        )
        scorer = LinearScoringFunction({"a": 1.0})
        est = DataUncertaintyStability(t, scorer, "name", trials=5, k=1)
        est.assess_at(0.2)  # NaN row keeps scoring as missing -> bottom

    def test_all_missing_attribute_rejected(self):
        t = Table.from_dict({"name": ["x", "y"], "a": [float("nan")] * 2})
        with pytest.raises(StabilityError, match="no non-missing"):
            DataUncertaintyStability(t, LinearScoringFunction({"a": 1.0}), "name")

    def test_minimal_change_epsilon(self):
        eps = DataUncertaintyStability(
            tight_table(), SCORER, "name", trials=10
        ).minimal_change_epsilon(iterations=5)
        assert 0.0 <= eps < 1.0
