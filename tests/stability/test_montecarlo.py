"""Tests for the parallel Monte-Carlo plumbing (repro.stability.montecarlo)."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.ranking import LinearScoringFunction
from repro.stability import (
    DataUncertaintyStability,
    WeightPerturbationStability,
    per_attribute_stability,
    run_trials,
    trial_rng,
)
from repro.tabular import Table


def jittered_table(n=30, seed=11):
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "name": [f"i{j}" for j in range(n)],
            "a": rng.normal(0, 1, n) * 0.01 + 1.0,
            "b": rng.normal(0, 1, n) * 0.01 + 1.0,
        }
    )


SCORER = LinearScoringFunction({"a": 0.5, "b": 0.5})


@pytest.fixture()
def pool():
    with ThreadPoolExecutor(max_workers=4) as executor:
        yield executor


class TestPrimitives:
    def test_trial_rng_streams_are_deterministic(self):
        assert trial_rng(3, 0).uniform() == trial_rng(3, 0).uniform()

    def test_trial_rng_streams_are_distinct(self):
        draws = {trial_rng(3, t).uniform() for t in range(20)}
        assert len(draws) == 20

    def test_run_trials_preserves_order(self, pool):
        assert run_trials(lambda t: t * t, 10, pool) == [t * t for t in range(10)]
        assert run_trials(lambda t: t * t, 10, None) == [t * t for t in range(10)]


class TestParallelEqualsSerial:
    def test_weight_perturbation(self, pool):
        table = jittered_table()
        serial = WeightPerturbationStability(
            table, SCORER, "name", trials=12, seed=5
        )
        parallel = WeightPerturbationStability(
            table, SCORER, "name", trials=12, seed=5, executor=pool
        )
        for epsilon in (0.0, 0.05, 0.3):
            assert serial.assess_at(epsilon) == parallel.assess_at(epsilon)

    def test_data_uncertainty(self, pool):
        table = jittered_table()
        serial = DataUncertaintyStability(table, SCORER, "name", trials=12, seed=5)
        parallel = DataUncertaintyStability(
            table, SCORER, "name", trials=12, seed=5, executor=pool
        )
        for epsilon in (0.0, 0.1, 0.5):
            assert serial.assess_at(epsilon) == parallel.assess_at(epsilon)

    def test_per_attribute(self, pool):
        table = jittered_table()
        serial = per_attribute_stability(
            table, SCORER, "name", trials=8, iterations=4, seed=5
        )
        parallel = per_attribute_stability(
            table, SCORER, "name", trials=8, iterations=4, seed=5, executor=pool
        )
        assert serial == parallel

    def test_trials_are_order_independent(self):
        """The per-trial streams mean trial i's outcome ignores trial j."""
        table = jittered_table()
        ten = WeightPerturbationStability(table, SCORER, "name", trials=10, seed=5)
        twenty = WeightPerturbationStability(table, SCORER, "name", trials=20, seed=5)
        # the first ten trials of both estimators are the same draws, so
        # a run that only changed `trials` shares its prefix outcomes
        def prefix_changes(estimator, trials):
            return [
                estimator._run_trial(0.1, trial)[2] for trial in range(trials)
            ]

        assert prefix_changes(ten, 10) == prefix_changes(twenty, 10)
