"""Tests for repro.stability.gaps and repro.stability.per_attribute."""

import numpy as np
import pytest

from repro.errors import StabilityError
from repro.ranking import LinearScoringFunction, Ranking
from repro.stability import per_attribute_stability, score_gap_analysis
from repro.tabular import Table


def ranking_with_scores(scores):
    t = Table.from_dict({"name": [f"i{j}" for j in range(len(scores))]})
    return Ranking.from_scores(t, scores, id_column="name")


class TestScoreGapAnalysis:
    def test_uniform_gaps(self):
        r = ranking_with_scores([4.0, 3.0, 2.0, 1.0])
        reports = score_gap_analysis(r, k=3)
        assert set(reports) == {"top_k", "overall"}
        overall = reports["overall"]
        assert overall.num_gaps == 3
        assert overall.min_gap == pytest.approx(1.0)
        assert overall.median_gap == pytest.approx(1.0)
        assert overall.swap_margin == pytest.approx(0.5)

    def test_tightest_pair_located(self):
        r = ranking_with_scores([10.0, 9.0, 8.99, 5.0])
        overall = score_gap_analysis(r)["overall"]
        assert overall.tightest_pair_rank == 2  # the 9.0 / 8.99 pair
        assert overall.min_gap == pytest.approx(0.01)

    def test_relative_values_scale_free(self):
        a = score_gap_analysis(ranking_with_scores([10.0, 9.0, 1.0]))["overall"]
        b = score_gap_analysis(ranking_with_scores([1.0, 0.9, 0.1]))["overall"]
        assert a.min_gap_relative == pytest.approx(b.min_gap_relative)

    def test_top_k_segment(self):
        scores = [10.0, 9.999, 9.0, 5.0, 1.0]
        top = score_gap_analysis(ranking_with_scores(scores), k=2)["top_k"]
        assert top.segment == "top-2"
        assert top.num_gaps == 1
        assert top.min_gap == pytest.approx(0.001)

    def test_ties_give_zero_margin(self):
        reports = score_gap_analysis(ranking_with_scores([2.0, 1.0, 1.0]))
        assert reports["overall"].min_gap == 0.0
        assert reports["overall"].swap_margin == 0.0

    def test_constant_scores_zero_span(self):
        overall = score_gap_analysis(ranking_with_scores([1.0, 1.0, 1.0]))["overall"]
        assert overall.min_gap_relative == 0.0

    def test_validation(self):
        with pytest.raises(StabilityError):
            score_gap_analysis(ranking_with_scores([1.0, 2.0][:1]))
        with pytest.raises(StabilityError):
            score_gap_analysis(ranking_with_scores([2.0, 1.0]), k=1)
        nan_ranking = ranking_with_scores([2.0, 1.0, float("nan")])
        with pytest.raises(StabilityError, match="NaN"):
            score_gap_analysis(nan_ranking)

    def test_as_dict(self):
        d = score_gap_analysis(ranking_with_scores([3.0, 2.0, 1.0]))["overall"].as_dict()
        assert "swap_margin" in d and "tightest_pair_rank" in d


class TestPerAttributeStability:
    @pytest.fixture()
    def table(self):
        rng = np.random.default_rng(8)
        n = 30
        # two anti-correlated attributes with near-tied combined scores:
        # the ranking is fragile to either weight moving
        a = rng.normal(0, 1, n)
        b = -a + rng.normal(0, 0.05, n)
        return Table.from_dict(
            {"name": [f"i{j}" for j in range(n)], "a": a, "b": b}
        )

    def test_fragile_attributes_identified(self, table):
        scorer = LinearScoringFunction({"a": 0.5, "b": 0.5})
        results = per_attribute_stability(
            table, scorer, "name", k=5, trials=15, iterations=5
        )
        # near-tied scores: single-weight jitter flips the top-5 well
        # inside the search window for both attributes
        assert all(r.critical_epsilon < 1.0 for r in results)

    def test_robust_attribute_scores_higher(self, table):
        # give `a` a dominant weight: its own jitter mostly rescales, while
        # `b`'s jitter changes the mix -> `b` must not look *more* robust
        scorer = LinearScoringFunction({"a": 1.0, "b": 0.05})
        results = per_attribute_stability(
            table, scorer, "name", k=5, trials=15, iterations=5
        )
        by_name = {r.attribute: r for r in results}
        assert by_name["a"].critical_epsilon >= by_name["b"].critical_epsilon

    def test_sorted_most_fragile_first(self, table):
        scorer = LinearScoringFunction({"a": 0.5, "b": 0.5})
        results = per_attribute_stability(
            table, scorer, "name", k=5, trials=10, iterations=4
        )
        epsilons = [r.critical_epsilon for r in results]
        assert epsilons == sorted(epsilons)

    def test_ceiling_for_irrelevant_weight(self):
        # one attribute with huge gaps: no single-weight jitter changes it
        t = Table.from_dict(
            {"name": ["x", "y", "z"], "a": [100.0, 50.0, 0.0]}
        )
        results = per_attribute_stability(
            t, LinearScoringFunction({"a": 1.0}), "name", k=2, trials=10
        )
        assert results[0].critical_epsilon == 1.0

    def test_zero_weight_attribute_handled(self, table):
        scorer = LinearScoringFunction({"a": 1.0, "b": 0.0})
        results = per_attribute_stability(
            table, scorer, "name", k=5, trials=8, iterations=3
        )
        assert {r.attribute for r in results} == {"a", "b"}

    def test_validation(self, table):
        scorer = LinearScoringFunction({"a": 1.0})
        with pytest.raises(StabilityError):
            per_attribute_stability(table, scorer, "name", k=0)
        with pytest.raises(StabilityError):
            per_attribute_stability(table, scorer, "name", trials=0)
        with pytest.raises(StabilityError):
            per_attribute_stability(table, scorer, "name", probability=0.0)

    def test_deterministic(self, table):
        scorer = LinearScoringFunction({"a": 1.0, "b": 0.02})
        a = per_attribute_stability(table, scorer, "name", k=5, trials=8,
                                    iterations=3)
        b = per_attribute_stability(table, scorer, "name", k=5, trials=8,
                                    iterations=3)
        assert a == b

    def test_as_dict(self, table):
        result = per_attribute_stability(
            table, LinearScoringFunction({"a": 1.0}), "name", trials=5,
            iterations=2,
        )[0]
        assert set(result.as_dict()) == {
            "attribute", "weight", "critical_epsilon", "probability",
        }
