"""Tests for repro.stability.slope."""

import numpy as np
import pytest

from repro.errors import StabilityError
from repro.ranking import Ranking
from repro.stability import SlopeStability, slope_stability
from repro.tabular import Table


def ranking_with_scores(scores):
    t = Table.from_dict({"name": [f"i{j}" for j in range(len(scores))]})
    return Ranking.from_scores(t, scores, id_column="name")


class TestSlopeStability:
    def test_well_separated_scores_are_stable(self):
        # scores spread the full range evenly: rescaled slope magnitude 1
        r = ranking_with_scores(np.linspace(10, 0, 20))
        report = slope_stability(r, k=10)
        assert report.stable
        assert report.slope_overall == pytest.approx(1.0)

    def test_flat_top_is_unstable_at_top_k(self):
        # top-10 nearly tied, the rest falls away
        scores = np.concatenate([np.linspace(10, 9.99, 10), np.linspace(8, 0, 20)])
        report = slope_stability(r := ranking_with_scores(scores), k=10)
        assert not report.stable_top_k
        assert report.stable_overall
        assert not report.stable  # one unstable segment taints the verdict

    def test_stability_score_is_min_of_segments(self):
        scores = np.concatenate([np.linspace(10, 9.99, 10), np.linspace(8, 0, 20)])
        report = slope_stability(ranking_with_scores(scores), k=10)
        assert report.stability_score == min(
            report.slope_top_k, report.slope_overall
        )

    def test_threshold_boundary_is_unstable_at_or_below(self):
        r = ranking_with_scores(np.linspace(10, 0, 20))
        exactly = slope_stability(r, k=10, threshold=1.0)
        assert not exactly.stable_overall  # slope == threshold -> unstable
        below = slope_stability(r, k=10, threshold=0.99)
        assert below.stable_overall

    def test_raw_fit_mode(self):
        r = ranking_with_scores([30.0, 20.0, 10.0])
        report = slope_stability(r, k=3, rescale=False)
        assert report.slope_overall == pytest.approx(10.0)
        assert report.fit_overall.intercept == pytest.approx(40.0)

    def test_k_clamped_to_size(self):
        r = ranking_with_scores([3.0, 2.0, 1.0])
        report = slope_stability(r, k=10)
        assert report.k == 3

    def test_constant_scores_unstable(self):
        r = ranking_with_scores([5.0, 5.0, 5.0, 5.0])
        report = slope_stability(r)
        assert not report.stable
        assert report.slope_overall == 0.0

    def test_nan_scores_rejected(self):
        r = ranking_with_scores([2.0, 1.0, float("nan")])
        with pytest.raises(StabilityError, match="NaN"):
            slope_stability(r)

    def test_too_small_ranking_rejected(self):
        r = ranking_with_scores([1.0])
        with pytest.raises(StabilityError, match="at least 2"):
            slope_stability(r)

    def test_constructor_validation(self):
        with pytest.raises(StabilityError):
            SlopeStability(k=1)
        with pytest.raises(StabilityError):
            SlopeStability(threshold=0.0)

    def test_verdict_string(self):
        r = ranking_with_scores(np.linspace(10, 0, 20))
        assert slope_stability(r).verdict == "stable"

    def test_as_dict_shape(self):
        d = slope_stability(ranking_with_scores([3.0, 2.0, 1.0])).as_dict()
        assert {"k", "threshold", "rescaled", "stability_score", "stable",
                "top_k", "overall"} == set(d)
        assert "fit" in d["top_k"]

    def test_rescaled_slope_scale_invariant(self):
        base = np.linspace(100, 0, 30)
        a = slope_stability(ranking_with_scores(base))
        b = slope_stability(ranking_with_scores(base / 100.0))
        assert a.slope_overall == pytest.approx(b.slope_overall)

    def test_figure1_ranking_is_stable(self, cs_ranking):
        assert slope_stability(cs_ranking).stable
