"""Tests for repro.stability.kernels: vectorized trial batches.

The acceptance-critical property lives here: for every payload a
kernel accepts, its batch result is **byte-identical** to running the
scalar trial function over ``range(trials)`` — across seeds, k, and
epsilon, for all three estimators.  Payloads a kernel cannot reproduce
exactly (non-linear scorers, duplicate ids, inconsistent baselines)
must be declined with a reason so the ``vectorized`` backend can fall
back to the scalar path.
"""

import numpy as np
import pytest

from repro.datasets import synthetic_scores_table
from repro.engine.backends import VectorizedTrialBackend
from repro.ranking.scoring import LinearScoringFunction, ScoringFunction
from repro.stability import (
    DataUncertaintyStability,
    WeightPerturbationStability,
    per_attribute_stability,
)
from repro.stability.kernels import (
    dispatch_kernel,
    kernel_for,
    run_attribute_kernel,
    run_perturbation_kernel,
    run_uncertainty_kernel,
)
from repro.stability.per_attribute import _attribute_trial
from repro.stability.perturbation import (
    PerturbationTrialPayload,
    _perturbation_trial,
)
from repro.stability.uncertainty import _uncertainty_trial
from repro.tabular import Table

WEIGHTS = {"attr_1": 0.5, "attr_2": 0.3, "attr_3": 0.2}


def mc_table(n=60, seed=11):
    return synthetic_scores_table(
        n, num_attributes=3, group_advantage=0.6, seed=seed
    )


def scalar_batch(fn, payload, trials):
    """The reference: the scalar trial function, run serially."""
    return [fn(payload, t) for t in range(trials)]


class SubclassedLinear(LinearScoringFunction):
    """A linear subclass that overrides scoring — kernels must decline it."""

    def score_table(self, table):
        return super().score_table(table) + 1.0


class CubeScorer(ScoringFunction):
    """A genuinely non-linear scorer (for the uncertainty estimator)."""

    name = "cube scorer"

    def __init__(self, attribute: str):
        self._attribute = attribute

    def score_table(self, table):
        return np.nan_to_num(table.numeric_column(self._attribute).values) ** 3

    def attributes(self):
        return (self._attribute,)


class TestByteIdentityViaEstimators:
    """Estimator outcomes on the vectorized backend == serial outcomes."""

    @pytest.mark.parametrize("seed", [0, 7, 20180610])
    @pytest.mark.parametrize("epsilon", [0.0, 0.02, 0.25])
    def test_perturbation(self, seed, epsilon):
        table = mc_table()
        scorer = LinearScoringFunction(WEIGHTS)
        backend = VectorizedTrialBackend()
        for k in (1, 5, 200):  # 200 > n exercises the clamped prefix
            serial = WeightPerturbationStability(
                table, scorer, "item", k=k, trials=16, seed=seed
            )
            vectorized = WeightPerturbationStability(
                table, scorer, "item", k=k, trials=16, seed=seed, backend=backend
            )
            assert serial.assess_at(epsilon) == vectorized.assess_at(epsilon)
        assert backend.scalar_runs == 0

    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("epsilon", [0.0, 0.1, 0.5])
    def test_uncertainty(self, seed, epsilon):
        table = mc_table(seed=5)
        scorer = LinearScoringFunction(WEIGHTS)
        backend = VectorizedTrialBackend()
        for k in (3, 10):
            serial = DataUncertaintyStability(
                table, scorer, "item", k=k, trials=16, seed=seed
            )
            vectorized = DataUncertaintyStability(
                table, scorer, "item", k=k, trials=16, seed=seed, backend=backend
            )
            assert serial.assess_at(epsilon) == vectorized.assess_at(epsilon)
        assert backend.scalar_runs == 0

    @pytest.mark.parametrize("seed", [1, 42])
    def test_per_attribute(self, seed):
        table = mc_table(seed=3)
        scorer = LinearScoringFunction(WEIGHTS)
        backend = VectorizedTrialBackend()
        serial = per_attribute_stability(
            table, scorer, "item", k=8, trials=8, iterations=4, seed=seed
        )
        vectorized = per_attribute_stability(
            table, scorer, "item", k=8, trials=8, iterations=4, seed=seed,
            backend=backend,
        )
        assert serial == vectorized
        assert backend.scalar_runs == 0
        assert backend.kernel_runs > 0

    def test_per_attribute_without_id_column(self):
        """Positional ids: the kernel must mirror the scalar quirk exactly."""
        table = mc_table(seed=9)
        scorer = LinearScoringFunction(WEIGHTS)
        backend = VectorizedTrialBackend()
        serial = per_attribute_stability(
            table, scorer, None, k=8, trials=6, iterations=3, seed=1
        )
        vectorized = per_attribute_stability(
            table, scorer, None, k=8, trials=6, iterations=3, seed=1,
            backend=backend,
        )
        assert serial == vectorized
        assert backend.scalar_runs == 0

    def test_zero_weight_attribute_jitters_identically(self):
        """The mean-|w| rescue for zero weights must match draw-for-draw."""
        table = mc_table(seed=2)
        scorer = LinearScoringFunction({"attr_1": 0.7, "attr_2": 0.0, "attr_3": 0.3})
        backend = VectorizedTrialBackend()
        serial = WeightPerturbationStability(
            table, scorer, "item", k=5, trials=12, seed=4
        )
        vectorized = WeightPerturbationStability(
            table, scorer, "item", k=5, trials=12, seed=4, backend=backend
        )
        assert serial.assess_at(0.3) == vectorized.assess_at(0.3)
        assert backend.scalar_runs == 0

    @pytest.mark.parametrize("policy", ["zero", "propagate"])
    def test_missing_values_both_policies(self, policy):
        rng = np.random.default_rng(8)
        values_a = rng.normal(0, 1, 40)
        values_b = rng.normal(0, 1, 40)
        values_a[::7] = np.nan  # a NaN pattern both paths must honour
        table = Table.from_dict(
            {"name": [f"i{j}" for j in range(40)], "a": values_a, "b": values_b}
        )
        scorer = LinearScoringFunction({"a": 0.6, "b": 0.4}, missing_policy=policy)
        backend = VectorizedTrialBackend()
        serial = WeightPerturbationStability(
            table, scorer, "name", k=5, trials=10, seed=6
        )
        vectorized = WeightPerturbationStability(
            table, scorer, "name", k=5, trials=10, seed=6, backend=backend
        )
        assert serial.assess_at(0.2) == vectorized.assess_at(0.2)
        serial_u = DataUncertaintyStability(
            table, scorer, "name", k=5, trials=10, seed=6
        )
        vectorized_u = DataUncertaintyStability(
            table, scorer, "name", k=5, trials=10, seed=6, backend=backend
        )
        assert serial_u.assess_at(0.2) == vectorized_u.assess_at(0.2)
        assert backend.scalar_runs == 0


class TestKernelsMatchScalarTrialFunctions:
    """Raw kernel output == the scalar trial function, element for element."""

    def test_perturbation_kernel_raw(self):
        table = mc_table(n=40)
        scorer = LinearScoringFunction(WEIGHTS)
        estimator = WeightPerturbationStability(
            table, scorer, "item", k=7, trials=9, seed=13
        )
        payload = estimator._payload_at(0.15)
        assert run_perturbation_kernel(payload, 9) == scalar_batch(
            _perturbation_trial, payload, 9
        )

    def test_uncertainty_kernel_raw(self):
        table = mc_table(n=40)
        scorer = LinearScoringFunction(WEIGHTS)
        estimator = DataUncertaintyStability(
            table, scorer, "item", k=7, trials=9, seed=13
        )
        payload = estimator._payload_at(0.15)
        assert run_uncertainty_kernel(payload, 9) == scalar_batch(
            _uncertainty_trial, payload, 9
        )

    def test_attribute_kernel_raw(self):
        from repro.ranking.ranker import rank_table
        from repro.stability.per_attribute import AttributeTrialPayload

        table = mc_table(n=40)
        scorer = LinearScoringFunction(WEIGHTS)
        baseline = rank_table(table, scorer, "item")
        payload = AttributeTrialPayload(
            table=table,
            scorer=scorer,
            attribute="attr_2",
            epsilon=0.6,
            scale=abs(WEIGHTS["attr_2"]),
            id_column="item",
            baseline_top=frozenset(baseline.item_ids()[:7]),
            k=7,
            seed=21,
        )
        assert run_attribute_kernel(payload, 9) == scalar_batch(
            _attribute_trial, payload, 9
        )


class TestFallbackDispatch:
    """Ineligible work is declined with a reason, never computed wrong."""

    def test_unknown_trial_function(self):
        results, reason = dispatch_kernel(lambda payload, trial: 0, {}, 3)
        assert results is None
        assert "no vectorized kernel" in reason

    def test_payload_type_mismatch(self):
        results, reason = dispatch_kernel(_perturbation_trial, {"not": "it"}, 3)
        assert results is None
        assert "does not match" in reason

    def test_kernel_for_registry(self):
        assert kernel_for(_perturbation_trial) is run_perturbation_kernel
        assert kernel_for(_uncertainty_trial) is run_uncertainty_kernel
        assert kernel_for(_attribute_trial) is run_attribute_kernel
        assert kernel_for(print) is None

    def test_linear_subclass_declined_but_results_match(self):
        """A subclass may override score_table — fall back, stay correct."""
        table = mc_table(n=30)
        scorer = SubclassedLinear(WEIGHTS)
        backend = VectorizedTrialBackend()
        serial = WeightPerturbationStability(
            table, scorer, "item", k=5, trials=8, seed=2
        )
        vectorized = WeightPerturbationStability(
            table, scorer, "item", k=5, trials=8, seed=2, backend=backend
        )
        assert serial.assess_at(0.1) == vectorized.assess_at(0.1)
        assert backend.kernel_runs == 0
        assert backend.scalar_runs == 1
        assert "LinearScoringFunction" in backend.fallback_reason

    def test_nonlinear_scorer_declined_but_results_match(self):
        table = mc_table(n=30)
        scorer = CubeScorer("attr_1")
        backend = VectorizedTrialBackend()
        serial = DataUncertaintyStability(
            table, scorer, "item", k=5, trials=8, seed=2
        )
        vectorized = DataUncertaintyStability(
            table, scorer, "item", k=5, trials=8, seed=2, backend=backend
        )
        assert serial.assess_at(0.2) == vectorized.assess_at(0.2)
        assert backend.kernel_runs == 0
        assert backend.scalar_runs == 1

    def test_duplicate_ids_declined(self):
        table = Table.from_dict(
            {
                "name": ["x", "x", "y", "z"],
                "a": [1.0, 2.0, 3.0, 4.0],
                "b": [4.0, 3.0, 2.0, 1.0],
            }
        )
        scorer = LinearScoringFunction({"a": 0.5, "b": 0.5})
        payload = PerturbationTrialPayload(
            table=table,
            scorer=scorer,
            id_column="name",
            baseline_ids=("x", "x", "y", "z"),
            baseline_top=frozenset({"x", "y"}),
            k=2,
            epsilon=0.1,
            seed=1,
        )
        results, reason = dispatch_kernel(_perturbation_trial, payload, 4)
        assert results is None
        assert "unique" in reason

    def test_inconsistent_baseline_declined(self):
        """A payload whose baseline lies about its table must not be trusted."""
        table = mc_table(n=20)
        scorer = LinearScoringFunction(WEIGHTS)
        estimator = WeightPerturbationStability(
            table, scorer, "item", k=5, trials=4, seed=1
        )
        genuine = estimator._payload_at(0.1)
        doctored = PerturbationTrialPayload(
            table=genuine.table,
            scorer=genuine.scorer,
            id_column=genuine.id_column,
            baseline_ids=tuple(reversed(genuine.baseline_ids)),
            baseline_top=genuine.baseline_top,
            k=genuine.k,
            epsilon=genuine.epsilon,
            seed=genuine.seed,
        )
        results, reason = dispatch_kernel(_perturbation_trial, doctored, 4)
        assert results is None
        assert "baseline" in reason
