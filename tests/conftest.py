"""Shared fixtures: small hand-built tables, rankings, and the demo data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import cs_departments
from repro.preprocess import NormalizationPlan, TablePreprocessor
from repro.ranking import LinearScoringFunction, rank_table
from repro.tabular import Table


@pytest.fixture()
def small_table() -> Table:
    """Six items, two numeric attributes, one binary group, one id."""
    return Table.from_dict(
        {
            "name": ["a", "b", "c", "d", "e", "f"],
            "x": [6.0, 5.0, 4.0, 3.0, 2.0, 1.0],
            "y": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            "group": ["g1", "g1", "g1", "g2", "g2", "g2"],
        }
    )


@pytest.fixture()
def small_ranking(small_table):
    """The small table ranked by x (a, b, c, d, e, f)."""
    return rank_table(small_table, LinearScoringFunction({"x": 1.0}), "name")


@pytest.fixture()
def missing_table() -> Table:
    """A table with missing numeric and categorical cells."""
    return Table.from_dict(
        {
            "name": ["a", "b", "c", "d"],
            "x": [1.0, float("nan"), 3.0, 4.0],
            "cat": ["u", "", "v", "u"],
        }
    )


@pytest.fixture(scope="session")
def cs_table() -> Table:
    """The deterministic CS-departments demo table (seeded)."""
    return cs_departments()


@pytest.fixture(scope="session")
def cs_scorer() -> LinearScoringFunction:
    """The Figure-1 scoring function."""
    return LinearScoringFunction({"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2})


@pytest.fixture(scope="session")
def cs_ranking(cs_table, cs_scorer):
    """The Figure-1 ranking: normalized attributes, weighted sum."""
    prepared = TablePreprocessor(
        NormalizationPlan.minmax_all(["PubCount", "Faculty", "GRE"])
    ).fit_transform(cs_table)
    return rank_table(prepared, cs_scorer, "DeptName")


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh, fixed-seed generator per test."""
    return np.random.default_rng(12345)
