"""Tests for the three demo-dataset generators and their documented structure."""

import numpy as np
import pytest

from repro.datasets import (
    compas,
    cs_departments,
    german_credit,
)
from repro.errors import DatasetError
from repro.stats import pearson_r


class TestCsDepartments:
    def test_default_size_and_schema(self, cs_table):
        assert cs_table.num_rows == 51
        assert cs_table.column_names == (
            "DeptName", "PubCount", "Faculty", "GRE", "Region", "DeptSizeBin",
        )

    def test_deterministic(self):
        assert cs_departments() == cs_departments()

    def test_different_seeds_differ(self):
        assert cs_departments(seed=1) != cs_departments(seed=2)

    def test_pubcount_faculty_strongly_correlated(self, cs_table):
        r = pearson_r(
            cs_table.column("PubCount").values, cs_table.column("Faculty").values
        )
        assert r > 0.6

    def test_gre_uncorrelated_with_size(self, cs_table):
        r = pearson_r(
            cs_table.column("GRE").values, cs_table.column("Faculty").values
        )
        assert abs(r) < 0.3

    def test_size_bin_is_median_split(self, cs_table):
        faculty = cs_table.column("Faculty").values
        median = np.median(faculty)
        for f, label in zip(faculty, cs_table.column("DeptSizeBin").values):
            assert label == ("large" if f >= median else "small")

    def test_regions_cover_all_five(self, cs_table):
        assert set(cs_table.categorical_column("Region").categories()) == {
            "NE", "MW", "SA", "SC", "W",
        }

    def test_unique_names(self, cs_table):
        names = list(cs_table.column("DeptName").values)
        assert len(set(names)) == 51

    def test_custom_size(self):
        assert cs_departments(n=20).num_rows == 20

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            cs_departments(n=3)


class TestCompas:
    @pytest.fixture(scope="class")
    def table(self):
        return compas()

    def test_default_size(self, table):
        assert table.num_rows == 6889

    def test_race_mix_close_to_propublica(self, table):
        proportions = table.categorical_column("race").proportions()
        assert proportions["African-American"] == pytest.approx(0.514, abs=0.03)
        assert proportions["Caucasian"] == pytest.approx(0.340, abs=0.03)

    def test_decile_gap_reproduces_published_direction(self, table):
        decile = table.column("decile_score").values
        race = table.categorical_column("race")
        aa = decile[race.indicator("African-American")].mean()
        white = decile[race.indicator("Caucasian")].mean()
        assert aa - white == pytest.approx(1.7, abs=0.5)  # published ~5.4 vs 3.7

    def test_priors_correlate_with_decile(self, table):
        r = pearson_r(
            table.column("priors_count").values, table.column("decile_score").values
        )
        assert r > 0.3

    def test_age_negatively_correlates(self, table):
        r = pearson_r(
            table.column("age").values, table.column("decile_score").values
        )
        assert r < -0.1

    def test_recidivism_increases_with_decile(self, table):
        decile = table.column("decile_score").values
        recid = table.categorical_column("two_year_recid").indicator("yes")
        low = recid[decile <= 3].mean()
        high = recid[decile >= 8].mean()
        assert high > low + 0.15

    def test_sex_ratio(self, table):
        assert table.categorical_column("sex").proportions()["Male"] == pytest.approx(
            0.81, abs=0.03
        )

    def test_deterministic(self):
        assert compas(n=200) == compas(n=200)

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            compas(n=5)


class TestGermanCredit:
    @pytest.fixture(scope="class")
    def table(self):
        return german_credit()

    def test_default_size(self, table):
        assert table.num_rows == 1000

    def test_risk_split_70_30(self, table):
        proportions = table.categorical_column("credit_risk").proportions()
        assert proportions["good"] == pytest.approx(0.70, abs=0.05)

    def test_sex_ratio(self, table):
        assert table.categorical_column("sex").proportions()["male"] == pytest.approx(
            0.69, abs=0.04
        )

    def test_age_group_consistent_with_age(self, table):
        ages = table.column("age").values
        for age, group in zip(ages, table.column("AgeGroup").values):
            assert group == ("young" if age < 25 else "adult")

    def test_young_penalized_in_score(self, table):
        score = table.column("credit_score").values
        young = table.categorical_column("AgeGroup").indicator("young")
        assert score[~young].mean() > score[young].mean() + 2.0

    def test_duration_correlates_with_amount(self, table):
        r = pearson_r(
            table.column("credit_amount").values,
            table.column("duration_months").values,
        )
        assert r > 0.3

    def test_score_drives_risk_label(self, table):
        score = table.column("credit_score").values
        good = table.categorical_column("credit_risk").indicator("good")
        assert score[good].mean() > score[~good].mean() + 5.0

    def test_deterministic(self):
        assert german_credit(n=150) == german_credit(n=150)

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            german_credit(n=2)
