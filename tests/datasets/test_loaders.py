"""Tests for repro.datasets.loaders and repro.datasets.synthetic."""

import numpy as np
import pytest

from repro.datasets import (
    dataset_by_name,
    list_datasets,
    load_csv_dataset,
    ranked_labels_table,
    synthetic_scores_table,
)
from repro.datasets.loaders import schema_by_name
from repro.errors import DatasetError
from repro.tabular import write_csv


class TestRegistry:
    def test_list_datasets(self):
        assert list_datasets() == ("cs-departments", "compas", "german-credit")

    def test_dataset_by_name_forwards_kwargs(self):
        assert dataset_by_name("compas", n=120).num_rows == 120

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            dataset_by_name("imagenet")

    def test_schema_by_name(self):
        schema = schema_by_name("cs-departments")
        assert "PubCount" in schema.column_names()
        with pytest.raises(DatasetError):
            schema_by_name("imagenet")


class TestLoadCsvDataset:
    def test_round_trip_through_disk(self, tmp_path, cs_table):
        path = tmp_path / "cs.csv"
        write_csv(cs_table, path)
        loaded = load_csv_dataset(path, schema=schema_by_name("cs-departments"))
        assert loaded.num_rows == 51

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            load_csv_dataset(tmp_path / "nope.csv")

    def test_too_few_rows(self, tmp_path):
        path = tmp_path / "tiny.csv"
        path.write_text("a\n1\n")
        with pytest.raises(DatasetError, match="at least 2"):
            load_csv_dataset(path)

    def test_no_numeric_columns(self, tmp_path):
        path = tmp_path / "cats.csv"
        path.write_text("a,b\nx,y\nu,v\n")
        with pytest.raises(DatasetError, match="no numeric"):
            load_csv_dataset(path)

    def test_schema_violation_surfaces(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("DeptName,PubCount\nA,1\nB,2\n")
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            load_csv_dataset(path, schema=schema_by_name("cs-departments"))


class TestSyntheticScoresTable:
    def test_shape_and_columns(self):
        t = synthetic_scores_table(50, num_attributes=2)
        assert t.num_rows == 50
        assert t.column_names == ("item", "group", "attr_1", "attr_2")

    def test_group_proportion(self):
        t = synthetic_scores_table(100, group_proportion=0.3)
        assert t.categorical_column("group").counts()["a"] == 30

    def test_advantage_shifts_group_a(self):
        t = synthetic_scores_table(500, group_advantage=3.0, noise=0.5)
        values = t.column("attr_1").values
        mask = t.categorical_column("group").indicator("a")
        assert values[mask].mean() > values[~mask].mean() + 1.5

    def test_deterministic(self):
        a = synthetic_scores_table(30, seed=9)
        b = synthetic_scores_table(30, seed=9)
        assert a == b

    def test_validation(self):
        with pytest.raises(DatasetError):
            synthetic_scores_table(1)
        with pytest.raises(DatasetError):
            synthetic_scores_table(10, num_attributes=0)
        with pytest.raises(DatasetError):
            synthetic_scores_table(10, group_proportion=0.0)
        with pytest.raises(DatasetError):
            synthetic_scores_table(10, noise=-1.0)
        with pytest.raises(DatasetError):
            synthetic_scores_table(10, group_proportion=0.01)


class TestRankedLabelsTable:
    def test_default_scores_strictly_decreasing(self):
        t = ranked_labels_table([True, False, True])
        scores = t.column("score").values
        assert (np.diff(scores) < 0).all()
        assert list(t.column("group").values) == ["protected", "other", "protected"]

    def test_custom_scores(self):
        t = ranked_labels_table([True, False], scores=[9.0, 1.0])
        assert t.column("score").values.tolist() == [9.0, 1.0]

    def test_validation(self):
        with pytest.raises(DatasetError):
            ranked_labels_table([])
        with pytest.raises(DatasetError):
            ranked_labels_table([True, False], scores=[1.0])
