"""Smoke tests: every shipped example runs to completion.

Each example is executed in a subprocess exactly as a user would run
it; the test asserts a zero exit code and checks a load-bearing line of
its output.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"

EXPECTED_OUTPUT = {
    "batch_engine.py": "served from cache",
    "quickstart.py": "RANKING FACTS",
    "cs_departments_label.py": "only large departments are present in the top-10",
    "compas_audit.py": "FA*IR re-ranked top-100",
    "german_credit_fairness.py": "stability, two ways",
    "custom_csv_workflow.py": "wrote",
    "mitigation_workflow.py": "cost-of-fairness frontier",
}


def run_example(name: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_example_runs(name):
    stdout = run_example(name)
    assert EXPECTED_OUTPUT[name] in stdout


def test_all_examples_are_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_OUTPUT)
