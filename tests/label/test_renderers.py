"""Tests for the three label renderers (text, HTML, JSON)."""

import json

import pytest

from repro.errors import LabelError
from repro.label import (
    RankingFactsBuilder,
    label_from_json,
    render_html,
    render_json,
    render_text,
)


@pytest.fixture(scope="module")
def label(cs_table, cs_scorer):
    return (
        RankingFactsBuilder(cs_table, dataset_name="CS departments")
        .with_id_column("DeptName")
        .with_scoring(cs_scorer)
        .with_sensitive_attribute("DeptSizeBin")
        .with_diversity_attributes(["DeptSizeBin", "Region"])
        .with_monte_carlo_stability(trials=3, epsilons=[0.1])
        .build()
        .label
    )


class TestRenderText:
    def test_contains_every_section(self, label):
        text = render_text(label)
        for section in ("RANKING FACTS", "Recipe", "Ingredients", "Stability",
                        "Fairness", "Diversity"):
            assert section in text

    def test_overview_contents(self, label):
        text = render_text(label)
        assert "PubCount" in text
        assert "DeptSizeBin=small" in text
        assert "unfair" in text
        assert "missing from top-10: small" in text

    def test_detailed_adds_statistics(self, label):
        brief = render_text(label)
        detailed = render_text(label, detailed=True)
        assert len(detailed) > len(brief)
        assert "median" in detailed
        assert "R^2" in detailed
        assert "P[top-k changes]" in detailed  # Monte-Carlo section
        assert "swap margin" in detailed       # gap analysis
        assert "weight sensitivity" in detailed  # per-attribute stability

    def test_weights_shown_with_shares(self, label):
        text = render_text(label)
        assert "40.0%" in text and "20.0%" in text

    def test_verdict_upper_case(self, label):
        assert "verdict: STABLE" in render_text(label)


class TestRenderHtml:
    def test_complete_document(self, label):
        html = render_html(label)
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</html>")

    def test_widget_cards_present(self, label):
        html = render_html(label)
        for cls in ("recipe", "ingredients", "stability", "fairness", "diversity"):
            assert f'class="widget {cls}"' in html

    def test_escaping(self, cs_table, cs_scorer):
        facts = (
            RankingFactsBuilder(cs_table, dataset_name="<evil> & co")
            .with_id_column("DeptName")
            .with_scoring(cs_scorer)
            .with_sensitive_attribute("DeptSizeBin")
            .build()
        )
        html = render_html(facts.label)
        assert "<evil>" not in html
        assert "&lt;evil&gt;" in html

    def test_verdicts_styled(self, label):
        html = render_html(label)
        assert 'class="unfair"' in html

    def test_monte_carlo_tables_present(self, label):
        assert "weight perturbation" in render_html(label)


class TestRenderJson:
    def test_valid_json_with_required_sections(self, label):
        payload = render_json(label)
        data = json.loads(payload)
        for key in ("dataset", "num_items", "k", "recipe", "ingredients",
                    "stability", "fairness", "diversity"):
            assert key in data

    def test_round_trip_through_validator(self, label):
        data = label_from_json(render_json(label))
        assert data["dataset"] == "CS departments"
        assert data["num_items"] == 51

    def test_fairness_verdicts_serialized(self, label):
        data = json.loads(render_json(label))
        verdicts = data["fairness"]["verdicts"]
        assert verdicts["DeptSizeBin=small"]["FA*IR"] == "unfair"

    def test_no_nan_in_output(self, label):
        payload = render_json(label)
        assert "NaN" not in payload
        json.loads(payload)  # strict parse succeeds

    def test_compact_mode(self, label):
        compact = render_json(label, indent=None)
        assert "\n" not in compact

    def test_label_from_json_rejects_garbage(self):
        with pytest.raises(LabelError, match="invalid label JSON"):
            label_from_json("{nope")

    def test_label_from_json_rejects_non_object(self):
        with pytest.raises(LabelError, match="top level"):
            label_from_json("[1,2]")

    def test_label_from_json_rejects_missing_sections(self):
        with pytest.raises(LabelError, match="missing section"):
            label_from_json('{"dataset": "x"}')
