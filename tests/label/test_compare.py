"""Tests for repro.label.compare (label diffing)."""

import pytest

from repro.errors import LabelError
from repro.label import RankingFactsBuilder, diff_labels
from repro.ranking import LinearScoringFunction


@pytest.fixture(scope="module")
def before_label(cs_table, cs_scorer):
    return (
        RankingFactsBuilder(cs_table, dataset_name="CS departments")
        .with_id_column("DeptName")
        .with_scoring(cs_scorer)
        .with_sensitive_attribute("DeptSizeBin")
        .with_diversity_attributes(["DeptSizeBin", "Region"])
        .build()
        .label
    )


@pytest.fixture(scope="module")
def after_label(cs_table):
    # the mitigation direction: weight shifted heavily toward GRE
    return (
        RankingFactsBuilder(cs_table, dataset_name="CS departments")
        .with_id_column("DeptName")
        .with_scoring(LinearScoringFunction(
            {"PubCount": 0.1, "Faculty": 0.1, "GRE": 0.8}))
        .with_sensitive_attribute("DeptSizeBin")
        .with_diversity_attributes(["DeptSizeBin", "Region"])
        .build()
        .label
    )


class TestDiffLabels:
    def test_weight_changes_reported(self, before_label, after_label):
        diff = diff_labels(before_label, after_label)
        assert diff.weight_changes["GRE"] == (0.2, 0.8)
        assert set(diff.weight_changes) == {"PubCount", "Faculty", "GRE"}

    def test_verdict_flips_reported(self, before_label, after_label):
        diff = diff_labels(before_label, after_label)
        flips = {(c.group, c.measure): c for c in diff.verdict_changes}
        # the GRE-heavy recipe removes the size bias: small flips to fair
        assert any(
            group == "DeptSizeBin=small" and change.improved
            for (group, _), change in flips.items()
        )
        assert diff.fairness_improved

    def test_diversity_shift_direction(self, before_label, after_label):
        diff = diff_labels(before_label, after_label)
        shifts = diff.diversity_shifts["DeptSizeBin"]
        assert shifts["small"] > 0  # small departments gained top-10 share
        assert shifts["large"] < 0
        assert sum(shifts.values()) == pytest.approx(0.0, abs=1e-9)

    def test_stability_scores_carried(self, before_label, after_label):
        diff = diff_labels(before_label, after_label)
        assert diff.stability_before == before_label.stability.stability_score
        assert diff.stability_after == after_label.stability.stability_score

    def test_self_diff_is_empty(self, before_label):
        diff = diff_labels(before_label, before_label)
        assert diff.weight_changes == {}
        assert diff.verdict_changes == ()
        assert diff.diversity_shifts == {}
        assert not diff.fairness_improved  # nothing changed

    def test_summary_lines_readable(self, before_label, after_label):
        lines = diff_labels(before_label, after_label).summary_lines()
        assert any(line.startswith("weight GRE: 0.2 -> 0.8") for line in lines)
        assert any("fairness" in line and "-> fair" in line for line in lines)

    def test_different_datasets_rejected(self, before_label, cs_table, cs_scorer):
        other = (
            RankingFactsBuilder(cs_table, dataset_name="something else")
            .with_id_column("DeptName")
            .with_scoring(cs_scorer)
            .with_sensitive_attribute("DeptSizeBin")
            .build()
            .label
        )
        with pytest.raises(LabelError, match="different datasets"):
            diff_labels(before_label, other)

    def test_different_k_rejected(self, before_label, cs_table, cs_scorer):
        other = (
            RankingFactsBuilder(cs_table, dataset_name="CS departments")
            .with_id_column("DeptName")
            .with_scoring(cs_scorer)
            .with_sensitive_attribute("DeptSizeBin")
            .with_top_k(5)
            .build()
            .label
        )
        with pytest.raises(LabelError, match="different k"):
            diff_labels(before_label, other)

    def test_as_dict(self, before_label, after_label):
        d = diff_labels(before_label, after_label).as_dict()
        assert {"weight_changes", "verdict_changes", "stability_before",
                "stability_after", "diversity_shifts"} <= set(d)


class TestIntersectAttributes:
    def test_combined_categories(self):
        from repro.preprocess import intersect_attributes
        from repro.tabular import Table

        t = Table.from_dict(
            {"sex": ["F", "M", "F"], "race": ["A", "A", "B"]}
        )
        out = intersect_attributes(t, ["sex", "race"], "sex_race")
        assert list(out.column("sex_race").values) == ["F&A", "M&A", "F&B"]

    def test_missing_propagates(self):
        from repro.preprocess import intersect_attributes
        from repro.tabular import Table

        t = Table.from_dict({"a": ["x", "", "y"], "b": ["u", "v", "w"]})
        out = intersect_attributes(t, ["a", "b"], "ab")
        assert out.column("ab").values[1] == ""
        assert out.column("ab").values[0] == "x&u"

    def test_single_source_rejected(self):
        from repro.errors import ProtectedGroupError
        from repro.preprocess import intersect_attributes
        from repro.tabular import Table

        t = Table.from_dict({"a": ["x", "y"]})
        with pytest.raises(ProtectedGroupError, match="at least 2"):
            intersect_attributes(t, ["a"], "aa")

    def test_degenerate_combination_rejected(self):
        from repro.errors import ProtectedGroupError
        from repro.preprocess import intersect_attributes
        from repro.tabular import Table

        t = Table.from_dict({"a": ["x", "x"], "b": ["u", "u"]})
        with pytest.raises(ProtectedGroupError, match="single category"):
            intersect_attributes(t, ["a", "b"], "ab")

    def test_numeric_source_rejected(self):
        from repro.errors import ColumnTypeError
        from repro.preprocess import intersect_attributes
        from repro.tabular import Table

        t = Table.from_dict({"a": ["x", "y"], "n": [1.0, 2.0]})
        with pytest.raises(ColumnTypeError):
            intersect_attributes(t, ["a", "n"], "an")

    def test_intersectional_audit_end_to_end(self):
        # sex x race on the COMPAS-like data, audited multivalued
        from repro.datasets import compas
        from repro.fairness import evaluate_fairness_multivalued
        from repro.preprocess import binarize_categorical, intersect_attributes
        from repro.ranking import LinearScoringFunction, rank_table

        table = compas(n=1200)
        table = binarize_categorical(
            table, "race", "RaceBin", ["African-American"],
            protected_label="AA", other_label="other",
        )
        table = intersect_attributes(table, ["sex", "RaceBin"], "sex_race")
        ranking = rank_table(
            table, LinearScoringFunction({"decile_score": 1.0}), "defendant_id"
        )
        audit = evaluate_fairness_multivalued(ranking, "sex_race", k=120)
        assert len(audit.categories) == 4  # {M,F} x {AA, other}
        assert audit.any_unfair()
