"""Tests for repro.label.render_markdown."""

import pytest

from repro.label import RankingFactsBuilder, render_markdown


@pytest.fixture(scope="module")
def label(cs_table, cs_scorer):
    return (
        RankingFactsBuilder(cs_table, dataset_name="CS departments")
        .with_id_column("DeptName")
        .with_scoring(cs_scorer)
        .with_sensitive_attribute("DeptSizeBin")
        .with_diversity_attributes(["DeptSizeBin", "Region"])
        .with_monte_carlo_stability(trials=3, epsilons=[0.1])
        .build()
        .label
    )


class TestRenderMarkdown:
    def test_heading_and_sections(self, label):
        md = render_markdown(label)
        assert md.startswith("# Ranking Facts")
        for section in ("## Recipe", "## Ingredients", "## Stability",
                        "## Fairness", "## Diversity"):
            assert section in md

    def test_tables_are_well_formed(self, label):
        md = render_markdown(label)
        for line in md.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_header_separator_column_counts_match(self, label):
        lines = render_markdown(label, detailed=True).splitlines()
        for i, line in enumerate(lines[:-1]):
            if line.startswith("|") and set(lines[i + 1]) <= {"|", "-", " "} and lines[i + 1].startswith("|"):
                header_cols = line.count("|")
                separator_cols = lines[i + 1].count("|")
                assert header_cols == separator_cols, (line, lines[i + 1])

    def test_unfair_verdicts_bolded(self, label):
        md = render_markdown(label)
        assert "**unfair**" in md

    def test_missing_category_called_out(self, label):
        assert "Missing from top-10: **small**" in render_markdown(label)

    def test_detailed_longer_and_has_stats(self, label):
        brief = render_markdown(label)
        detailed = render_markdown(label, detailed=True)
        assert len(detailed) > len(brief)
        assert "median" in detailed
        assert "P[top-k changes]" in detailed

    def test_brief_hides_weak_ingredients(self, label):
        brief = render_markdown(label)
        # only top-3 shown in brief mode; CS data has exactly 3 numeric
        # attributes, so count rows in the ingredients table instead
        section = brief.split("## Ingredients")[1].split("##")[0]
        data_rows = [
            line for line in section.splitlines()
            if line.startswith("|") and "---" not in line and "importance" not in line
        ]
        assert len(data_rows) == 3
