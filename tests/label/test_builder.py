"""Tests for repro.label.builder."""

import pytest

from repro.errors import LabelError
from repro.label import RankingFactsBuilder
from repro.preprocess import NormalizationPlan
from repro.ranking import LinearScoringFunction


@pytest.fixture()
def builder(cs_table, cs_scorer):
    return (
        RankingFactsBuilder(cs_table, dataset_name="CS departments")
        .with_id_column("DeptName")
        .with_scoring(cs_scorer)
        .with_sensitive_attribute("DeptSizeBin")
        .with_diversity_attributes(["DeptSizeBin", "Region"])
    )


class TestConfiguration:
    def test_unknown_id_column_rejected(self, cs_table):
        with pytest.raises(LabelError):
            RankingFactsBuilder(cs_table).with_id_column("zz")

    def test_numeric_sensitive_attribute_rejected(self, cs_table):
        from repro.errors import ColumnTypeError

        builder = RankingFactsBuilder(cs_table)
        with pytest.raises(ColumnTypeError):
            builder.with_sensitive_attribute("GRE")

    def test_missing_scoring_rejected(self, cs_table):
        builder = RankingFactsBuilder(cs_table).with_sensitive_attribute("DeptSizeBin")
        with pytest.raises(LabelError, match="no scoring function"):
            builder.build()

    def test_missing_sensitive_rejected(self, cs_table, cs_scorer):
        builder = RankingFactsBuilder(cs_table).with_scoring(cs_scorer)
        with pytest.raises(LabelError, match="sensitive attribute"):
            builder.build()

    def test_parameter_validation(self, cs_table):
        builder = RankingFactsBuilder(cs_table)
        with pytest.raises(LabelError):
            builder.with_top_k(1)
        with pytest.raises(LabelError):
            builder.with_alpha(0.0)
        with pytest.raises(LabelError):
            builder.with_ingredients_method("shap")
        with pytest.raises(LabelError):
            builder.with_slope_threshold(-1.0)
        with pytest.raises(LabelError):
            builder.with_monte_carlo_stability(trials=0)

    def test_tiny_table_rejected(self):
        from repro.errors import EmptyTableError
        from repro.tabular import Table

        with pytest.raises(EmptyTableError):
            RankingFactsBuilder(Table.from_dict({"a": [1.0]}))


class TestBuild:
    def test_label_structure(self, builder):
        facts = builder.build()
        label = facts.label
        assert label.dataset_name == "CS departments"
        assert label.num_items == 51
        assert label.k == 10
        assert label.widget_names() == (
            "recipe", "ingredients", "stability", "fairness", "diversity",
        )

    def test_recipe_contents(self, builder, cs_scorer):
        recipe = builder.build().label.recipe
        assert recipe.weights == cs_scorer.weights
        assert recipe.normalization == {
            "PubCount": "minmax", "Faculty": "minmax", "GRE": "minmax",
        }
        assert [s.attribute for s in recipe.statistics] == [
            "PubCount", "Faculty", "GRE",
        ]

    def test_recipe_statistics_top_k_within_overall(self, builder):
        for stat in builder.build().label.recipe.statistics:
            assert stat.top_k.minimum >= stat.overall.minimum
            assert stat.top_k.maximum <= stat.overall.maximum
            assert stat.top_k.count == 10
            assert stat.overall.count == 51

    def test_ingredients_widget(self, builder):
        widget = builder.build().label.ingredients
        assert widget.top_n == 3
        assert len(widget.top_attributes()) == 3
        # GRE must not lead (the paper's walkthrough finding)
        assert widget.top_attributes()[0] in ("PubCount", "Faculty")

    def test_fairness_widget_grid(self, builder):
        widget = builder.build().label.fairness
        grid = widget.verdict_grid()
        assert set(grid) == {"DeptSizeBin=large", "DeptSizeBin=small"}
        assert set(grid["DeptSizeBin=small"]) == {"FA*IR", "Proportion", "Pairwise"}
        assert widget.any_unfair()

    def test_diversity_widget(self, builder):
        widget = builder.build().label.diversity
        assert [r.attribute for r in widget.reports] == ["DeptSizeBin", "Region"]

    def test_default_normalization_is_minmax(self, builder):
        facts = builder.build()
        scores = facts.ranking.scores
        assert 0.0 <= scores.min() and scores.max() <= 1.0 + 1e-9

    def test_raw_normalization_plan(self, cs_table, cs_scorer):
        facts = (
            RankingFactsBuilder(cs_table)
            .with_id_column("DeptName")
            .with_scoring(cs_scorer)
            .with_normalization(NormalizationPlan.raw())
            .with_sensitive_attribute("DeptSizeBin")
            .build()
        )
        assert facts.label.recipe.normalization["GRE"] == "identity"
        assert facts.ranking.scores.max() > 10  # raw GRE magnitudes dominate

    def test_monte_carlo_stability_included_when_enabled(self, builder):
        facts = builder.with_monte_carlo_stability(trials=5, epsilons=[0.1]).build()
        widget = facts.label.stability
        assert len(widget.perturbation) == 1
        assert len(widget.uncertainty) == 1
        assert widget.perturbation[0].trials == 5
        # per-attribute sensitivity rides along with the Monte-Carlo detail
        assert {a.attribute for a in widget.per_attribute} == {
            "PubCount", "Faculty", "GRE",
        }

    def test_monte_carlo_off_by_default(self, builder):
        widget = builder.build().label.stability
        assert widget.perturbation == ()
        assert widget.uncertainty == ()
        assert widget.per_attribute == ()

    def test_gap_analysis_always_present(self, builder):
        widget = builder.build().label.stability
        assert set(widget.gaps) == {"top_k", "overall"}
        assert widget.gaps["overall"].num_gaps == 50  # 51 items
        assert widget.gaps["top_k"].swap_margin >= 0.0

    def test_diversity_defaults_to_sensitive(self, cs_table, cs_scorer):
        facts = (
            RankingFactsBuilder(cs_table)
            .with_id_column("DeptName")
            .with_scoring(cs_scorer)
            .with_sensitive_attribute("DeptSizeBin")
            .build()
        )
        assert [r.attribute for r in facts.label.diversity.reports] == ["DeptSizeBin"]

    def test_metadata_discloses_normalization_params(self, builder):
        meta = builder.build().label.metadata
        assert meta["id_column"] == "DeptName"
        assert "PubCount" in meta["normalization_params"]

    def test_custom_k_and_alpha_propagate(self, builder):
        facts = builder.with_top_k(5).with_alpha(0.01).build()
        assert facts.label.k == 5
        assert facts.label.fairness.alpha == 0.01
        assert facts.label.stability.slope_report.k == 5

    def test_build_is_deterministic(self, builder):
        a = builder.build().label.as_dict()
        b = builder.build().label.as_dict()
        assert a == b

    def test_linear_model_ingredients_method(self, builder):
        facts = builder.with_ingredients_method("linear-model").build()
        assert facts.label.ingredients.analysis.method == "linear-model"
