"""Tests for repro.engine.backends: pluggable Monte-Carlo trial execution.

The acceptance-critical properties live here:

- labels built on the process backend are byte-identical to serial
  labels for equal seeds;
- parallel backends self-disable to serial on single-CPU hosts (and on
  ``trial_workers <= 1``) unless a worker count is forced;
- the process backend falls back cleanly to serial when the trial work
  does not pickle, recording the reason for the stats endpoint.
"""

import threading

import numpy as np
import pytest

from repro.engine import LabelDesign, LabelService
from repro.engine.backends import (
    BACKEND_NAMES,
    ExecutorTrialBackend,
    ProcessTrialBackend,
    SerialTrialBackend,
    ThreadTrialBackend,
    TrialBackend,
    VectorizedTrialBackend,
    _chunk_spans,
    resolve_trial_backend,
)
from repro.errors import EngineError
from repro.label.render_json import render_json
from repro.ranking import LinearScoringFunction
from repro.stability import (
    DataUncertaintyStability,
    WeightPerturbationStability,
    per_attribute_stability,
)
from repro.stability.montecarlo import run_payload_trials
from repro.tabular import Table


def _square_trial(payload, trial):
    """Module-level (hence picklable) trial function for the unit tests."""
    return payload["base"] + trial * trial


def _type_error_trial(payload, trial):
    """A trial with a genuine bug (raises TypeError on every backend)."""
    return payload["base"] + None


def jittered_table(n=30, seed=11):
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "name": [f"i{j}" for j in range(n)],
            "a": rng.normal(0, 1, n) * 0.01 + 1.0,
            "b": rng.normal(0, 1, n) * 0.01 + 1.0,
        }
    )


SCORER = LinearScoringFunction({"a": 0.5, "b": 0.5})


@pytest.fixture()
def process_backend():
    backend = ProcessTrialBackend(workers=2)
    yield backend
    backend.shutdown()


@pytest.fixture()
def thread_backend():
    backend = ThreadTrialBackend(workers=4)
    yield backend
    backend.shutdown()


class TestResolution:
    def test_unknown_name_rejected(self):
        with pytest.raises(EngineError, match="unknown trial backend"):
            resolve_trial_backend("fibers")

    def test_serial_by_name(self):
        assert isinstance(resolve_trial_backend("serial"), SerialTrialBackend)

    def test_vectorized_by_name(self):
        assert isinstance(resolve_trial_backend("vectorized"), VectorizedTrialBackend)

    def test_vectorized_ignores_cpu_count(self, monkeypatch):
        # no worker pool to disable: one CPU still vectorizes
        monkeypatch.setattr("repro.engine.backends.os.cpu_count", lambda: 1)
        assert isinstance(resolve_trial_backend("vectorized"), VectorizedTrialBackend)
        assert isinstance(
            resolve_trial_backend("vectorized", 1), VectorizedTrialBackend
        )

    def test_default_is_vectorized(self, monkeypatch):
        # the soak-tested kernels are the default since PR 4, on any host
        for cpus in (1, 4):
            monkeypatch.setattr("repro.engine.backends.os.cpu_count", lambda c=cpus: c)
            assert isinstance(resolve_trial_backend(), VectorizedTrialBackend)

    def test_thread_by_name_on_multicore(self, monkeypatch):
        monkeypatch.setattr("repro.engine.backends.os.cpu_count", lambda: 4)
        backend = resolve_trial_backend("thread")
        assert isinstance(backend, ThreadTrialBackend)
        assert backend.workers == 4

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_parallel_backends_self_disable_on_one_cpu(self, name, monkeypatch):
        monkeypatch.setattr("repro.engine.backends.os.cpu_count", lambda: 1)
        assert isinstance(resolve_trial_backend(name), SerialTrialBackend)

    @pytest.mark.parametrize("name", ["thread", "process"])
    def test_explicit_single_worker_means_serial(self, name):
        assert isinstance(resolve_trial_backend(name, 1), SerialTrialBackend)

    def test_forced_workers_yield_real_pools_even_on_one_cpu(self, monkeypatch):
        monkeypatch.setattr("repro.engine.backends.os.cpu_count", lambda: 1)
        assert isinstance(resolve_trial_backend("thread", 2), ThreadTrialBackend)
        assert isinstance(resolve_trial_backend("process", 2), ProcessTrialBackend)

    def test_every_name_resolves(self):
        for name in BACKEND_NAMES:
            backend = resolve_trial_backend(name, 2)
            assert isinstance(backend, TrialBackend)
            backend.shutdown()


class TestChunking:
    def test_spans_cover_all_trials_in_order(self):
        spans = _chunk_spans(trials=10, workers=2, chunk_size=3)
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_default_chunking_amortizes(self):
        # a few chunks per worker, never one-trial-per-IPC dispatch
        spans = _chunk_spans(trials=100, workers=2, chunk_size=None)
        assert 1 < len(spans) <= 2 * 4
        covered = [t for start, stop in spans for t in range(start, stop)]
        assert covered == list(range(100))

    def test_tiny_loops_are_one_chunk_each(self):
        assert _chunk_spans(trials=2, workers=4, chunk_size=None) == [(0, 1), (1, 2)]


class TestRunOrdering:
    """Every backend returns results in trial order, serial-identical."""

    def expected(self, trials=12):
        return [_square_trial({"base": 7}, t) for t in range(trials)]

    def test_serial(self):
        backend = SerialTrialBackend()
        assert backend.run(_square_trial, {"base": 7}, 12) == self.expected()

    def test_thread(self, thread_backend):
        assert thread_backend.run(_square_trial, {"base": 7}, 12) == self.expected()

    def test_process(self, process_backend):
        assert process_backend.run(_square_trial, {"base": 7}, 12) == self.expected()

    def test_executor_adapter(self):
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=3) as pool:
            backend = ExecutorTrialBackend(pool)
            assert backend.run(_square_trial, {"base": 7}, 12) == self.expected()
            backend.shutdown()  # a no-op: the pool must stay usable
            assert pool.submit(len, "ok").result() == 2

    def test_run_payload_trials_inline_matches_backends(self):
        inline = run_payload_trials(_square_trial, {"base": 7}, 12)
        assert inline == self.expected()


class TestProcessFallback:
    def test_unpicklable_payload_falls_back_to_serial(self, process_backend):
        payload = {"base": 7, "poison": threading.Lock()}  # locks don't pickle
        expected = [_square_trial(payload, t) for t in range(6)]
        assert process_backend.run(_square_trial, payload, 6) == expected
        assert process_backend.fallback_reason is not None
        assert "picklable" in process_backend.fallback_reason
        assert process_backend.effective_name == "serial"

    def test_fallback_is_sticky(self, process_backend):
        process_backend.run(_square_trial, {"base": 0, "poison": lambda: None}, 2)
        # a later, perfectly picklable run stays serial (and still works)
        assert process_backend.run(_square_trial, {"base": 1}, 4) == [
            _square_trial({"base": 1}, t) for t in range(4)
        ]
        assert process_backend.effective_name == "serial"

    def test_later_unpicklable_payload_degrades_at_result_time(self, process_backend):
        """The pickle probe runs once; later bad payloads still fall back."""
        expected_ok = [_square_trial({"base": 1}, t) for t in range(4)]
        assert process_backend.run(_square_trial, {"base": 1}, 4) == expected_ok
        assert process_backend.fallback_reason is None
        poisoned = {"base": 2, "poison": threading.Lock()}
        expected = [_square_trial(poisoned, t) for t in range(4)]
        assert process_backend.run(_square_trial, poisoned, 4) == expected
        assert process_backend.effective_name == "serial"
        assert process_backend.fallback_reason is not None

    def test_genuine_trial_fault_propagates_without_sticky_degrade(
        self, process_backend
    ):
        """A buggy trial must raise, not silently disable the backend."""
        with pytest.raises(TypeError):
            process_backend.run(_type_error_trial, {"base": 1}, 4)
        assert process_backend.fallback_reason is None
        assert process_backend.effective_name == "process"
        expected = [_square_trial({"base": 1}, t) for t in range(4)]
        assert process_backend.run(_square_trial, {"base": 1}, 4) == expected

    def test_single_trial_short_circuits_the_pool(self):
        backend = ProcessTrialBackend(workers=2)
        assert backend.run(_square_trial, {"base": 3}, 1) == [3]
        assert backend._pool is None  # never paid the pool start-up
        backend.shutdown()

    def test_worker_and_chunk_validation(self):
        with pytest.raises(EngineError, match=">= 2 workers"):
            ProcessTrialBackend(workers=1)
        with pytest.raises(EngineError, match="chunk_size"):
            ProcessTrialBackend(workers=2, chunk_size=0)
        with pytest.raises(EngineError, match=">= 2 workers"):
            ThreadTrialBackend(workers=1)


class TestBackendsMatchSerialEstimates:
    """The three estimators give identical results on every backend."""

    def test_weight_perturbation(self, process_backend, thread_backend):
        table = jittered_table()
        serial = WeightPerturbationStability(table, SCORER, "name", trials=8, seed=5)
        for backend in (thread_backend, process_backend):
            parallel = WeightPerturbationStability(
                table, SCORER, "name", trials=8, seed=5, backend=backend
            )
            for epsilon in (0.0, 0.05, 0.3):
                assert serial.assess_at(epsilon) == parallel.assess_at(epsilon)

    def test_data_uncertainty(self, process_backend):
        table = jittered_table()
        serial = DataUncertaintyStability(table, SCORER, "name", trials=8, seed=5)
        parallel = DataUncertaintyStability(
            table, SCORER, "name", trials=8, seed=5, backend=process_backend
        )
        for epsilon in (0.0, 0.1, 0.5):
            assert serial.assess_at(epsilon) == parallel.assess_at(epsilon)

    def test_per_attribute(self, process_backend):
        table = jittered_table()
        serial = per_attribute_stability(
            table, SCORER, "name", trials=6, iterations=3, seed=5
        )
        parallel = per_attribute_stability(
            table, SCORER, "name", trials=6, iterations=3, seed=5,
            backend=process_backend,
        )
        assert serial == parallel


class TestServiceIntegration:
    DESIGN = LabelDesign.create(
        weights={"a": 0.6, "b": 0.4},
        sensitive="group",
        id_column="name",
        k=5,
        monte_carlo_trials=6,
        monte_carlo_epsilons=(0.1,),
    )

    @staticmethod
    def mc_table(n=24, seed=3):
        rng = np.random.default_rng(seed)
        return Table.from_dict(
            {
                "name": [f"i{j}" for j in range(n)],
                "a": rng.normal(0, 1, n) * 0.01 + 1.0,
                "b": rng.normal(0, 1, n) * 0.01 + 1.0,
                "group": ["g1", "g2"] * (n // 2),
            }
        )

    def test_process_backend_labels_byte_identical_to_serial(self):
        """The acceptance criterion: same bytes, serial vs process."""
        table = self.mc_table()
        serial = self.DESIGN.builder_for(table, dataset_name="mc").build()
        with LabelService(
            use_cache=False, trial_backend="process", trial_workers=2
        ) as svc:
            outcome = svc.build_label(table, self.DESIGN, "mc")
        assert render_json(outcome.facts.label) == render_json(serial.label)

    def test_service_reports_requested_and_effective_backend(self):
        with LabelService(trial_backend="process", trial_workers=2) as svc:
            executor = svc.stats()["executor"]
            assert executor["trial_backend"] == "process"
            assert executor["trial_backend_effective"] == "process"
            assert executor["trial_backend_fallback"] is None
            assert executor["parallel_trials"] is True

    def test_stats_track_runtime_fallback(self):
        """After a pickling fallback, stats must stop reading as parallel."""
        with LabelService(trial_backend="process", trial_workers=2) as svc:
            backend = svc.executor.trial_backend()
            backend.run(_square_trial, {"base": 0, "poison": lambda: None}, 2)
            executor = svc.stats()["executor"]
            assert executor["trial_backend"] == "process"
            assert executor["trial_backend_effective"] == "serial"
            assert "picklable" in executor["trial_backend_fallback"]
            assert executor["parallel_trials"] is False

    def test_service_reports_self_disabled_backend(self):
        with LabelService(trial_backend="process", trial_workers=1) as svc:
            executor = svc.stats()["executor"]
            assert executor["trial_backend"] == "process"
            assert executor["trial_backend_effective"] == "serial"
            assert executor["parallel_trials"] is False

    def test_unknown_backend_fails_at_construction(self):
        with pytest.raises(EngineError, match="unknown trial backend"):
            LabelService(trial_backend="quantum")

    def test_backend_does_not_change_the_cache_key(self):
        """Execution detail must not fragment the content-addressed cache."""
        table = self.mc_table()
        with LabelService(trial_backend="serial") as svc:
            a = svc.build_label(table, self.DESIGN, "mc")
        with LabelService(trial_backend="process", trial_workers=2) as svc:
            b = svc.build_label(table, self.DESIGN, "mc")
        assert a.fingerprint == b.fingerprint


class TestVectorizedBackend:
    """Kernel dispatch, per-run fallback, and stats visibility."""

    def test_non_kernel_work_runs_inline_with_reason(self):
        backend = VectorizedTrialBackend()
        assert backend.run(_square_trial, {"base": 7}, 12) == [
            _square_trial({"base": 7}, t) for t in range(12)
        ]
        assert backend.kernel_runs == 0
        assert backend.scalar_runs == 1
        assert "no vectorized kernel" in backend.fallback_reason
        assert backend.effective_name == "serial"  # nothing vectorized yet

    def test_dispatch_is_per_run_not_sticky(self):
        table = jittered_table()
        backend = VectorizedTrialBackend()
        backend.run(_square_trial, {"base": 7}, 4)  # declined
        estimator = WeightPerturbationStability(
            table, SCORER, "name", trials=6, seed=5, backend=backend
        )
        serial = WeightPerturbationStability(table, SCORER, "name", trials=6, seed=5)
        assert estimator.assess_at(0.1) == serial.assess_at(0.1)
        assert backend.kernel_runs == 1  # the decline did not stick
        assert backend.effective_name == "vectorized"

    def test_estimators_identical_on_vectorized_backend(self):
        table = jittered_table()
        backend = VectorizedTrialBackend()
        serial = WeightPerturbationStability(table, SCORER, "name", trials=8, seed=5)
        vectorized = WeightPerturbationStability(
            table, SCORER, "name", trials=8, seed=5, backend=backend
        )
        for epsilon in (0.0, 0.05, 0.3):
            assert serial.assess_at(epsilon) == vectorized.assess_at(epsilon)
        serial_u = DataUncertaintyStability(table, SCORER, "name", trials=8, seed=5)
        vectorized_u = DataUncertaintyStability(
            table, SCORER, "name", trials=8, seed=5, backend=backend
        )
        for epsilon in (0.0, 0.1, 0.5):
            assert serial_u.assess_at(epsilon) == vectorized_u.assess_at(epsilon)
        assert per_attribute_stability(
            table, SCORER, "name", trials=6, iterations=3, seed=5
        ) == per_attribute_stability(
            table, SCORER, "name", trials=6, iterations=3, seed=5, backend=backend
        )
        assert backend.scalar_runs == 0

    def test_vectorized_labels_byte_identical_to_serial(self):
        """The acceptance criterion, end to end through the service."""
        table = TestServiceIntegration.mc_table()
        design = TestServiceIntegration.DESIGN
        serial = design.builder_for(table, dataset_name="mc").build()
        with LabelService(use_cache=False, trial_backend="vectorized") as svc:
            outcome = svc.build_label(table, design, "mc")
            executor = svc.stats()["executor"]
        assert render_json(outcome.facts.label) == render_json(serial.label)
        assert executor["trial_backend"] == "vectorized"
        assert executor["trial_backend_effective"] == "vectorized"
        assert executor["trial_kernel_runs"] > 0
        assert executor["trial_scalar_fallbacks"] == 0
        # batched, not worker-parallel: must not read as a pool
        assert executor["parallel_trials"] is False

    def test_stats_surface_kernel_fallback_reason(self):
        with LabelService(trial_backend="vectorized") as svc:
            backend = svc.executor.trial_backend()
            backend.run(_square_trial, {"base": 0}, 2)
            executor = svc.stats()["executor"]
        assert executor["trial_backend_effective"] == "serial"
        assert "no vectorized kernel" in executor["trial_backend_fallback"]
        assert executor["trial_scalar_fallbacks"] == 1

    def test_backend_does_not_change_the_cache_key(self):
        table = TestServiceIntegration.mc_table()
        design = TestServiceIntegration.DESIGN
        with LabelService(trial_backend="serial") as svc:
            a = svc.build_label(table, design, "mc")
        with LabelService(trial_backend="vectorized") as svc:
            b = svc.build_label(table, design, "mc")
        assert a.fingerprint == b.fingerprint

    def test_shutdown_is_a_no_op(self):
        backend = VectorizedTrialBackend()
        backend.shutdown()  # nothing to release, must not raise
        assert backend.run(_square_trial, {"base": 1}, 2) == [1, 2]
