"""Tests for repro.engine.streaming and the staged-build event protocol.

Three properties anchor the streaming refactor:

- the event protocol is a pure *ordering* change — the final label is
  byte-identical with or without a progress consumer;
- widgets arrive cheapest-first with the Monte-Carlo-heavy stability
  detail last, so a consumer sees most of the label while the expensive
  part is still computing;
- the queue's backpressure protects the build: a consumer that stops
  draining gets its stream aborted, the build finishes for the cache.
"""

import json
import threading
import time

import pytest

from repro.engine import LabelDesign, LabelJob, LabelService
from repro.engine.streaming import (
    LabelEventQueue,
    LabelStreamEvent,
    error_event,
    label_event,
    replay_events,
    widget_event,
)
from repro.label.render_json import render_json

WEIGHTS = {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2}

STAGED_ORDER = ["recipe", "ingredients", "fairness", "diversity", "stability"]


def design(**overrides):
    base = dict(weights=WEIGHTS, sensitive="DeptSizeBin", id_column="DeptName")
    base.update(overrides)
    return LabelDesign.create(**base)


def mc_design(**overrides):
    overrides.setdefault("monte_carlo_trials", 8)
    overrides.setdefault("monte_carlo_epsilons", (0.1,))
    return design(**overrides)


def drain(events: LabelEventQueue, timeout: float = 30.0):
    """Collect every event until the stream closes (with a deadline)."""
    collected = []
    deadline = time.monotonic() + timeout
    while not events.finished:
        if time.monotonic() > deadline:
            raise AssertionError(f"stream never closed; got {collected}")
        event = events.get(timeout=0.2)
        if event is not None:
            collected.append(event)
    return collected


class TestEventQueue:
    def test_publish_get_roundtrip(self):
        events = LabelEventQueue()
        assert events.publish(widget_event("recipe", _FakeWidget(), 0.1))
        got = events.get(timeout=1)
        assert got.kind == "widget"
        assert got.name == "recipe"
        assert events.published == 1

    def test_close_finishes_the_stream(self):
        events = LabelEventQueue()
        events.close()
        assert events.get(timeout=0.2) is None
        assert events.finished

    def test_get_after_finish_returns_none_immediately(self):
        events = LabelEventQueue()
        events.close()
        drain(events, timeout=2)
        started = time.perf_counter()
        assert events.get(timeout=5) is None
        assert time.perf_counter() - started < 1.0

    def test_full_queue_aborts_instead_of_blocking_the_producer(self):
        events = LabelEventQueue(maxsize=2, publish_timeout=0.1)
        assert events.publish(error_event("a"))
        assert events.publish(error_event("b"))
        started = time.perf_counter()
        assert not events.publish(error_event("c"))  # nobody draining
        assert time.perf_counter() - started < 2.0
        assert events.aborted
        assert "queue full" in events.abort_reason
        assert events.dropped == 1
        # the producer is never deadlocked afterwards either
        assert not events.publish(error_event("d"))

    def test_abort_drains_and_closes(self):
        events = LabelEventQueue(maxsize=4)
        events.publish(error_event("stale"))
        events.abort("client disconnected")
        assert events.get(timeout=0.5) is None
        assert events.finished
        assert events.abort_reason == "client disconnected"

    def test_event_as_dict_shape(self):
        event = LabelStreamEvent(
            kind="widget", payload={"widget": {"k": 1}},
            name="recipe", seconds=0.25,
        )
        assert event.as_dict() == {
            "kind": "widget",
            "streamed": True,
            "name": "recipe",
            "seconds": 0.25,
            "widget": {"k": 1},
        }


class _FakeWidget:
    def as_dict(self):
        return {"fake": True}


class TestStreamLabel:
    def test_staged_widget_order_stability_last(self, cs_table):
        with LabelService() as svc:
            events = drain(svc.stream_label(cs_table, mc_design(), "cs"))
        kinds = [e.kind for e in events]
        assert kinds == ["widget"] * 5 + ["label"]
        assert [e.name for e in events[:-1]] == STAGED_ORDER
        assert all(e.streamed for e in events)
        assert all(e.seconds is not None for e in events[:-1])

    def test_streamed_label_byte_identical_to_direct_build(self, cs_table):
        with LabelService(use_cache=False) as svc:
            direct = svc.build_label(cs_table, mc_design(), "cs")
            events = drain(svc.stream_label(cs_table, mc_design(), "cs"))
        final = events[-1]
        assert final.kind == "label"
        assert final.payload["fingerprint"] == direct.fingerprint
        streamed = json.dumps(final.payload["label"], indent=2)
        assert streamed == render_json(direct.facts.label)

    def test_cache_hit_replays_widgets_unstreamed(self, cs_table):
        with LabelService() as svc:
            first = drain(svc.stream_label(cs_table, design(), "cs"))
            second = drain(svc.stream_label(cs_table, design(), "cs"))
        # replay follows the label's display order (the build is done,
        # so there is no cheapest-first cost ordering to respect)
        assert [e.name for e in second[:-1]] == [
            "recipe", "ingredients", "stability", "fairness", "diversity",
        ]
        assert all(e.streamed for e in first)
        assert not any(e.streamed for e in second)  # replayed, label cached
        assert second[-1].payload["cached"] is True
        # replayed widget payloads match the originally streamed ones
        live_by_name = {e.name: e.payload["widget"] for e in first[:-1]}
        for replay in second[:-1]:
            assert replay.payload["widget"] == live_by_name[replay.name]

    def test_build_error_becomes_a_terminal_error_event(self, cs_table):
        with LabelService() as svc:
            bad = design(weights={"NoSuchColumn": 1.0})
            events = drain(svc.stream_label(cs_table, bad, "cs"))
        assert len(events) == 1
        assert events[0].kind == "error"
        assert "NoSuchColumn" in events[0].payload["error"]

    def test_slow_consumer_never_blocks_the_build(self, cs_table):
        with LabelService(cache_size=8) as svc:
            events = LabelEventQueue(maxsize=1, publish_timeout=0.1)
            svc.stream_label(cs_table, mc_design(), "cs", events=events)
            deadline = time.monotonic() + 30
            while not events.aborted and time.monotonic() < deadline:
                time.sleep(0.02)  # never drain: force the abort path
            assert events.aborted
            assert "queue full" in events.abort_reason
            # the build itself completed and the cache has the label
            outcome = svc.build_label(cs_table, mc_design(), "cs")
            assert outcome.cached is True

    def test_broken_progress_consumer_does_not_poison_the_build(self, cs_table):
        def bomb(name, widget, seconds):
            raise RuntimeError("consumer bug")

        with LabelService(use_cache=False) as svc:
            outcome = svc.build_label(cs_table, design(), "cs", progress=bomb)
            plain = svc.build_label(cs_table, design(), "cs")
        assert render_json(outcome.facts.label) == render_json(plain.facts.label)


class TestStreamBatch:
    def test_events_carry_job_ids_and_stream_closes(self):
        jobs = [
            LabelJob(
                design=design(), dataset="cs-departments",
                dataset_name=f"batch-{i}",
            )
            for i in range(2)
        ]
        with LabelService() as svc:
            handle, events = svc.stream_batch(jobs)
            collected = drain(events)
            results = handle.results()
        assert all(r.status.value == "done" for r in results)
        labels = [e for e in collected if e.kind == "label"]
        assert sorted(e.payload["job_id"] for e in labels) == ["job-0", "job-1"]
        widgets = [e for e in collected if e.kind == "widget"]
        assert widgets and all("job_id" in e.payload for e in widgets)

    def test_one_failing_job_does_not_end_the_stream(self):
        jobs = [
            LabelJob(design=design(), dataset="cs-departments",
                     dataset_name="good"),
            LabelJob(design=design(weights={"Missing": 1.0}),
                     dataset="cs-departments", dataset_name="bad"),
        ]
        with LabelService() as svc:
            handle, events = svc.stream_batch(jobs)
            collected = drain(events)
            handle.results()
        kinds = {e.kind for e in collected}
        assert "error" in kinds and "label" in kinds
        errors = [e for e in collected if e.kind == "error"]
        assert all("job_id" in e.payload for e in errors)


class TestReplayEvents:
    def test_replay_matches_widget_names(self, cs_table):
        with LabelService(use_cache=False) as svc:
            outcome = svc.build_label(cs_table, design(), "cs")
        label = outcome.facts.label
        replayed = replay_events(label)
        assert [e.name for e in replayed] == list(label.widget_names())
        assert not any(e.streamed for e in replayed)
