"""Tests for repro.engine.service and executor: the engine's guarantees.

The three acceptance-critical properties live here:

- a repeated request for an unchanged design performs zero rebuilds;
- sessions never cross-contaminate (distinct designs, distinct labels);
- parallel Monte-Carlo trials are seed-deterministic and byte-identical
  to the serial path.
"""

import threading

import pytest

from repro.app.session import DemoSession
from repro.engine import (
    JobStatus,
    LabelDesign,
    LabelExecutor,
    LabelJob,
    LabelService,
)
from repro.errors import EngineError
from repro.label.render_json import render_json

WEIGHTS = {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2}


def design(**overrides):
    base = dict(
        weights=WEIGHTS, sensitive="DeptSizeBin", id_column="DeptName"
    )
    base.update(overrides)
    return LabelDesign.create(**base)


@pytest.fixture()
def service():
    with LabelService(cache_size=8) as svc:
        yield svc


class TestCaching:
    def test_repeat_design_builds_once(self, service, cs_table):
        first = service.build_label(cs_table, design(), "cs")
        second = service.build_label(cs_table, design(), "cs")
        assert not first.cached and second.cached
        assert second.facts is first.facts
        assert service.stats()["service"]["builds"] == 1

    def test_different_designs_build_separately(self, service, cs_table):
        a = service.build_label(cs_table, design(), "cs")
        b = service.build_label(cs_table, design(k=5), "cs")
        assert not a.cached and not b.cached
        assert a.facts.label.k == 10 and b.facts.label.k == 5

    def test_dataset_name_is_part_of_the_key(self, service, cs_table):
        a = service.build_label(cs_table, design(), "one")
        b = service.build_label(cs_table, design(), "two")
        assert not b.cached  # different rendered bytes -> different entry
        assert a.facts.label.dataset_name == "one"
        assert b.facts.label.dataset_name == "two"

    def test_cache_disabled_service_always_builds(self, cs_table):
        with LabelService(use_cache=False) as svc:
            first = svc.build_label(cs_table, design(), "cs")
            second = svc.build_label(cs_table, design(), "cs")
            assert not first.cached and not second.cached
            assert svc.stats()["service"]["builds"] == 2

    def test_concurrent_identical_requests_single_flight(self, cs_table):
        with LabelService(cache_size=8) as svc:
            mc = design(monte_carlo_trials=5, monte_carlo_epsilons=(0.1,))
            outcomes = []

            def request():
                outcomes.append(svc.build_label(cs_table, mc, "cs"))

            threads = [threading.Thread(target=request) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert svc.stats()["service"]["builds"] == 1
            assert sum(1 for o in outcomes if not o.cached) == 1
            assert len({id(o.facts) for o in outcomes}) == 1


class TestSessionIntegration:
    def test_sessions_sharing_a_service_share_the_cache(self, service):
        one = DemoSession(service=service)
        two = DemoSession(service=service)
        for session in (one, two):
            session.load_builtin("cs-departments")
            session.design_scoring(
                weights=WEIGHTS, sensitive_attribute="DeptSizeBin",
                id_column="DeptName",
            )
        one.generate_label()
        two.generate_label()
        assert not one.last_label_was_cached()
        assert two.last_label_was_cached()
        assert two.last_label() is one.last_label()

    def test_sessions_with_different_designs_never_cross_contaminate(self, service):
        one = DemoSession(service=service)
        two = DemoSession(service=service)
        for session in (one, two):
            session.load_builtin("cs-departments")
        one.design_scoring(
            weights=WEIGHTS, sensitive_attribute="DeptSizeBin",
            id_column="DeptName", k=10,
        )
        two.design_scoring(
            weights={"GRE": 1.0}, sensitive_attribute="DeptSizeBin",
            id_column="DeptName", k=5,
        )
        label_one = one.generate_label().label
        label_two = two.generate_label().label
        assert set(label_one.recipe.weights) == set(WEIGHTS)
        assert set(label_two.recipe.weights) == {"GRE"}
        assert label_one.k == 10 and label_two.k == 5
        # repeating each session's own request serves its own label
        assert one.generate_label().label is label_one
        assert two.generate_label().label is label_two

    def test_private_session_service_still_caches(self):
        session = DemoSession()
        session.load_builtin("cs-departments")
        session.design_scoring(
            weights=WEIGHTS, sensitive_attribute="DeptSizeBin",
            id_column="DeptName",
        )
        first = session.generate_label()
        second = session.generate_label()
        assert second is first
        assert session.last_label_was_cached()
        assert session.service.stats()["service"]["builds"] == 1


class TestParallelMonteCarlo:
    def test_parallel_trials_byte_identical_to_serial(self, cs_table):
        mc = design(monte_carlo_trials=6, monte_carlo_epsilons=(0.05, 0.2))
        serial = mc.builder_for(cs_table, dataset_name="cs").build()
        with LabelService(use_cache=False, trial_workers=4) as svc:
            parallel = svc.build_label(cs_table, mc, "cs")
        assert render_json(parallel.facts.label) == render_json(serial.label)

    def test_seed_changes_the_monte_carlo_outcome_key(self, cs_table):
        base = design(monte_carlo_trials=6, monte_carlo_epsilons=(0.2,))
        with LabelService(cache_size=8) as svc:
            a = svc.build_label(cs_table, base, "cs")
            b = svc.build_label(cs_table, base.with_updates(seed=7), "cs")
        assert a.fingerprint != b.fingerprint

    def test_trial_workers_one_disables_pool(self):
        # worker-pool backends resolve to serial on one worker; the
        # default (vectorized) runs no workers and ignores the count
        executor = LabelExecutor(trial_workers=1, trial_backend="thread")
        assert executor.trial_backend().name == "serial"
        executor.shutdown()
        executor = LabelExecutor(trial_workers=1)
        assert executor.trial_backend().name == "vectorized"
        executor.shutdown()


class TestBatches:
    def test_run_batch_order_and_status(self, service):
        jobs = [
            LabelJob(design=design(), dataset="cs-departments"),
            LabelJob(design=design(k=5), dataset="cs-departments"),
            LabelJob(
                design=LabelDesign.create(
                    weights={"credit_score": 1.0}, sensitive="sex",
                    id_column="applicant_id",
                ),
                dataset="german-credit",
            ),
        ]
        results = service.run_batch(jobs)
        assert [r.job_id for r in results] == ["job-0", "job-1", "job-2"]
        assert all(r.status is JobStatus.DONE for r in results)
        assert results[2].dataset_name == "german-credit"

    def test_duplicate_jobs_collapse_to_one_build(self, service):
        jobs = [
            LabelJob(design=design(), dataset="cs-departments") for _ in range(4)
        ]
        results = service.run_batch(jobs)
        assert all(r.status is JobStatus.DONE for r in results)
        assert service.stats()["service"]["builds"] == 1
        assert sum(1 for r in results if r.cached) == 3
        payloads = {render_json(r.facts.label) for r in results}
        assert len(payloads) == 1

    def test_failed_job_reported_not_raised(self, service):
        jobs = [
            LabelJob(design=design(), dataset="cs-departments"),
            LabelJob(design=design(), dataset="no-such-dataset"),
        ]
        results = service.run_batch(jobs)
        assert results[0].status is JobStatus.DONE
        assert results[1].status is JobStatus.FAILED
        assert "no-such-dataset" in results[1].error

    def test_unexpected_loader_fault_reported_not_raised(self, service, tmp_path):
        """Non-RankingFactsError faults (e.g. a binary 'CSV') fail one job,
        not the whole batch."""
        binary = tmp_path / "binary.csv"
        binary.write_bytes(b"\xff\xfe\x00not,really,text")
        jobs = [
            LabelJob(design=design(), dataset="cs-departments"),
            LabelJob(design=design(), csv_path=str(binary)),
        ]
        results = service.run_batch(jobs)
        assert results[0].status is JobStatus.DONE
        assert results[1].status is JobStatus.FAILED
        assert results[1].error  # the fault is reported, with its type

    def test_async_submit_and_poll(self, service):
        handle = service.submit_batch(
            [LabelJob(design=design(), dataset="cs-departments")]
        )
        results = handle.results()
        assert handle.done()
        status = handle.status()
        assert status["batch_id"] == handle.batch_id
        assert status["completed"] == 1
        assert status["jobs"][0]["status"] == "done"
        assert results[0].status is JobStatus.DONE
        assert service.batch(handle.batch_id) is handle

    def test_unknown_batch_id_raises(self, service):
        with pytest.raises(EngineError, match="unknown batch"):
            service.batch("batch-zzzz")

    def test_empty_batch_rejected(self, service):
        with pytest.raises(EngineError, match="at least one job"):
            service.submit_batch([])

    def test_completed_results_are_stored_not_recomputed(self, service):
        handle = service.submit_batch(
            [LabelJob(design=design(), dataset="cs-departments")]
        )
        blocking = handle.results()
        stored = handle.completed_results()
        assert stored[0] is blocking[0]  # the very object, no re-run

    def test_batch_registry_is_bounded(self):
        executor = LabelExecutor(max_workers=2, max_batches=2)
        try:
            handles = [
                executor.submit_batch(
                    [LabelJob(design=design(), dataset="cs-departments")],
                    lambda job: None,
                )
                for _ in range(3)
            ]
            assert executor.batches() == [h.batch_id for h in handles[1:]]
            with pytest.raises(EngineError, match="unknown batch"):
                executor.batch(handles[0].batch_id)
        finally:
            executor.shutdown()


class TestStats:
    def test_stats_shape(self, service, cs_table):
        service.build_label(cs_table, design(), "cs")
        stats = service.stats()
        assert set(stats) == {"service", "cache", "executor"}
        assert stats["service"]["requests"] == 1
        assert stats["cache"]["max_size"] == 8
        assert stats["executor"]["max_workers"] >= 1
