"""Tests for repro.engine.jobs: designs, jobs, and their parsing."""

import pytest

from repro.engine.jobs import JobResult, JobStatus, LabelDesign, LabelJob
from repro.errors import EngineError
from repro.label.render_json import render_json
from repro.tabular import Table


DESIGN_BODY = {
    "weights": {"PubCount": 0.4, "Faculty": 0.4, "GRE": 0.2},
    "sensitive": ["DeptSizeBin"],
    "id_column": "DeptName",
    "k": 5,
}


class TestLabelDesign:
    def test_create_normalizes_shapes(self):
        design = LabelDesign.create(
            weights={"x": 1, "y": 2}, sensitive="group", k=5
        )
        assert design.weights == (("x", 1.0), ("y", 2.0))
        assert design.sensitive == ("group",)
        assert design.k == 5

    def test_create_rejects_empty(self):
        with pytest.raises(EngineError):
            LabelDesign.create(weights={}, sensitive="g")
        with pytest.raises(EngineError):
            LabelDesign.create(weights={"x": 1.0}, sensitive=[])

    def test_hashable_and_equal_by_value(self):
        a = LabelDesign.create(weights={"x": 1.0}, sensitive="g")
        b = LabelDesign.create(weights={"x": 1.0}, sensitive="g")
        assert a == b and hash(a) == hash(b)

    def test_weight_order_preserved(self):
        design = LabelDesign.create(weights={"b": 1.0, "a": 2.0}, sensitive="g")
        assert tuple(design.weights_dict()) == ("b", "a")

    def test_from_mapping_round_trip(self):
        design = LabelDesign.from_mapping(DESIGN_BODY)
        again = LabelDesign.from_mapping(design.canonical_dict() | {
            "weights": design.weights_dict(),
        })
        assert design == again

    def test_from_mapping_rejects_unknown_fields(self):
        with pytest.raises(EngineError, match="unknown design field"):
            LabelDesign.from_mapping(DESIGN_BODY | {"tpo_k": 3})

    def test_from_mapping_requires_weights(self):
        with pytest.raises(EngineError):
            LabelDesign.from_mapping({"sensitive": ["g"]})

    def test_from_mapping_rejects_malformed_values(self):
        base = {"weights": {"x": 1.0}, "sensitive": ["g"]}
        with pytest.raises(EngineError, match="bad design value for 'k'"):
            LabelDesign.from_mapping(base | {"k": "ten"})
        with pytest.raises(EngineError, match="monte_carlo_epsilons"):
            LabelDesign.from_mapping(base | {"monte_carlo_epsilons": 0.1})
        with pytest.raises(EngineError, match="bad design weights"):
            LabelDesign.from_mapping({"weights": {"x": "lots"}, "sensitive": ["g"]})
        with pytest.raises(EngineError, match="sensitive"):
            LabelDesign.from_mapping({"weights": {"x": 1.0}, "sensitive": 7})

    def test_canonical_dict_is_json_safe(self):
        import json

        payload = json.dumps(LabelDesign.from_mapping(DESIGN_BODY).canonical_dict())
        assert "PubCount" in payload

    def test_with_updates(self):
        design = LabelDesign.from_mapping(DESIGN_BODY)
        assert design.with_updates(k=3).k == 3
        assert design.k == 5  # frozen original untouched

    def test_builder_for_matches_direct_builder(self, cs_table):
        design = LabelDesign.from_mapping(DESIGN_BODY)
        facts = design.builder_for(cs_table, dataset_name="cs").build()
        assert facts.label.k == 5
        assert facts.label.dataset_name == "cs"
        weights = facts.label.recipe.weights
        assert set(weights) == {"PubCount", "Faculty", "GRE"}

    def test_builder_for_raw_normalization(self, cs_table):
        design = LabelDesign.from_mapping(DESIGN_BODY | {"normalize": False})
        facts = design.builder_for(cs_table).build()
        assert facts.label.recipe.normalization["PubCount"] == "identity"

    def test_builder_for_monte_carlo(self, cs_table):
        design = LabelDesign.from_mapping(
            DESIGN_BODY | {"monte_carlo_trials": 3, "monte_carlo_epsilons": [0.1]}
        )
        facts = design.builder_for(cs_table).build()
        assert facts.label.stability.perturbation[0].trials == 3


class TestLabelJob:
    def test_exactly_one_source_required(self):
        design = LabelDesign.from_mapping(DESIGN_BODY)
        with pytest.raises(EngineError, match="exactly one data source"):
            LabelJob(design=design)
        with pytest.raises(EngineError, match="exactly one data source"):
            LabelJob(design=design, dataset="compas", csv_path="x.csv")

    def test_resolve_builtin(self):
        job = LabelJob(
            design=LabelDesign.from_mapping(DESIGN_BODY), dataset="cs-departments"
        )
        table, name = job.resolve_table()
        assert name == "cs-departments"
        assert "DeptName" in table

    def test_resolve_table_object(self):
        table = Table.from_dict({"x": [1.0, 2.0], "g": ["a", "b"]})
        job = LabelJob(
            design=LabelDesign.create(weights={"x": 1.0}, sensitive="g"),
            table=table,
            dataset_name="tiny",
        )
        resolved, name = job.resolve_table()
        assert resolved is table and name == "tiny"

    def test_resolve_csv(self, tmp_path):
        path = tmp_path / "mini.csv"
        path.write_text("x,g\n1.0,a\n2.0,b\n", encoding="utf-8")
        job = LabelJob(
            design=LabelDesign.create(weights={"x": 1.0}, sensitive="g"),
            csv_path=str(path),
        )
        table, name = job.resolve_table()
        assert name == "mini" and table.num_rows == 2

    def test_from_mapping(self):
        job = LabelJob.from_mapping(
            {"dataset": "compas", "design": DESIGN_BODY, "id": "my-job"}
        )
        assert job.dataset == "compas" and job.job_id == "my-job"

    def test_spec_id_wins_over_positional_default(self):
        """Regression: a positional job-<index> id used to shadow the
        spec's own "id", silently renaming batch outputs."""
        named = LabelJob.from_mapping(
            {"dataset": "compas", "design": DESIGN_BODY, "id": "my-job"},
            job_id="job-3",
        )
        assert named.job_id == "my-job"
        unnamed = LabelJob.from_mapping(
            {"dataset": "compas", "design": DESIGN_BODY}, job_id="job-3"
        )
        assert unnamed.job_id == "job-3"

    def test_from_mapping_requires_design(self):
        with pytest.raises(EngineError, match="design"):
            LabelJob.from_mapping({"dataset": "compas"})


class TestJobResult:
    def test_summary_shape(self):
        result = JobResult(job_id="j", status=JobStatus.DONE, cached=True)
        summary = result.summary()
        assert summary["status"] == "done" and summary["cached"] is True
        assert summary["error"] is None

    def test_render_json_of_resulting_label(self, cs_table):
        design = LabelDesign.from_mapping(DESIGN_BODY)
        facts = design.builder_for(cs_table).build()
        assert '"fairness"' in render_json(facts.label)
