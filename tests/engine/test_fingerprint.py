"""Tests for repro.engine.fingerprint."""

import numpy as np

from repro.engine.fingerprint import (
    design_fingerprint,
    label_fingerprint,
    table_fingerprint,
)
from repro.tabular import Table


def table(**overrides):
    data = {
        "name": ["a", "b", "c"],
        "x": [1.0, 2.0, 3.0],
        "group": ["g1", "g2", "g1"],
    }
    data.update(overrides)
    return Table.from_dict(data)


class TestTableFingerprint:
    def test_content_equal_tables_hash_equal(self):
        assert table_fingerprint(table()) == table_fingerprint(table())

    def test_value_change_changes_hash(self):
        assert table_fingerprint(table()) != table_fingerprint(
            table(x=[1.0, 2.0, 3.5])
        )

    def test_categorical_change_changes_hash(self):
        assert table_fingerprint(table()) != table_fingerprint(
            table(group=["g1", "g2", "g2"])
        )

    def test_column_rename_changes_hash(self):
        renamed = table().rename_column("x", "y")
        assert table_fingerprint(table()) != table_fingerprint(renamed)

    def test_column_order_changes_hash(self):
        reordered = table().select(["x", "name", "group"])
        assert table_fingerprint(table()) != table_fingerprint(reordered)

    def test_nan_is_stable(self):
        a = table(x=[1.0, float("nan"), 3.0])
        b = table(x=[1.0, float("nan"), 3.0])
        assert table_fingerprint(a) == table_fingerprint(b)

    def test_no_separator_ambiguity_across_columns(self):
        # "ab" + "c" must not collide with "a" + "bc"
        one = Table.from_dict({"p": ["ab"], "q": ["c"]})
        two = Table.from_dict({"p": ["a"], "q": ["bc"]})
        assert table_fingerprint(one) != table_fingerprint(two)

    def test_numeric_bytes_not_confused_with_row_count(self):
        a = Table.from_dict({"x": np.array([0.0, 1.0])})
        b = Table.from_dict({"x": np.array([0.0])})
        assert table_fingerprint(a) != table_fingerprint(b)


class TestDesignFingerprint:
    def test_outer_key_order_irrelevant(self):
        assert design_fingerprint({"a": 1, "b": [1, 2]}) == design_fingerprint(
            {"b": [1, 2], "a": 1}
        )

    def test_inner_list_order_matters(self):
        # attribute order is meaningful (it orders the label's widgets)
        assert design_fingerprint({"weights": [["x", 1.0], ["y", 2.0]]}) != (
            design_fingerprint({"weights": [["y", 2.0], ["x", 1.0]]})
        )

    def test_value_change_matters(self):
        assert design_fingerprint({"k": 10}) != design_fingerprint({"k": 5})


class TestLabelFingerprint:
    def test_combines_both_halves(self):
        key = label_fingerprint(table(), {"k": 10})
        assert key != label_fingerprint(table(), {"k": 5})
        assert key != label_fingerprint(table(x=[9.0, 2.0, 3.0]), {"k": 10})
        assert key == label_fingerprint(table(), {"k": 10})
