"""Tests for repro.engine.cache: LRU semantics and thread safety."""

import threading
import time

import pytest

from repro.engine.cache import LabelCache
from repro.errors import EngineError


class TestBasics:
    def test_get_miss_then_hit(self):
        cache = LabelCache(max_size=2)
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_contains_and_len(self):
        cache = LabelCache(max_size=2)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert len(cache) == 1

    def test_invalidate_and_clear(self):
        cache = LabelCache(max_size=4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_max_size_validated(self):
        with pytest.raises(EngineError):
            LabelCache(max_size=0)


class TestLRU:
    def test_least_recently_used_evicted(self):
        cache = LabelCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats().evictions == 1

    def test_put_refreshes_existing(self):
        cache = LabelCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh via put
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache


class TestGetOrBuild:
    def test_one_build_one_hit(self):
        cache = LabelCache(max_size=4)
        calls = []
        value, cached = cache.get_or_build("k", lambda: calls.append(1) or "v")
        assert (value, cached) == ("v", False)
        value, cached = cache.get_or_build("k", lambda: calls.append(1) or "v")
        assert (value, cached) == ("v", True)
        assert len(calls) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_failed_build_leaves_key_absent_and_retries(self):
        cache = LabelCache(max_size=4)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise ValueError("boom")
            return "ok"

        with pytest.raises(ValueError):
            cache.get_or_build("k", flaky)
        assert "k" not in cache
        assert cache._build_locks == {}  # no per-key lock leaked on failure
        value, cached = cache.get_or_build("k", flaky)
        assert (value, cached) == ("ok", False)
        assert cache._build_locks == {}

    def test_single_flight_under_concurrency(self):
        """Ten threads, same key, slow build: exactly one build runs."""
        cache = LabelCache(max_size=4)
        build_count = []
        build_lock = threading.Lock()

        def slow_build():
            with build_lock:
                build_count.append(1)
            time.sleep(0.05)
            return "value"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(cache.get_or_build("k", slow_build))
            )
            for _ in range(10)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(build_count) == 1
        assert all(value == "value" for value, _ in results)
        assert sum(1 for _, cached in results if not cached) == 1

    def test_distinct_keys_build_independently(self):
        cache = LabelCache(max_size=4)
        a, a_cached = cache.get_or_build("a", lambda: "va")
        b, b_cached = cache.get_or_build("b", lambda: "vb")
        assert (a, b) == ("va", "vb")
        assert not a_cached and not b_cached

    def test_failing_build_keeps_single_flight_for_late_arrivals(self):
        """A thread arriving during a waiter's retry joins the same lock.

        Regression: the per-key lock used to be popped as soon as the
        first build failed, while queued waiters still held it — so a
        thread arriving *after* the pop minted a fresh lock and ran
        ``build()`` concurrently with the retrying waiter, violating
        the "one Monte-Carlo loop, not N" guarantee.
        """
        cache = LabelCache(max_size=4)
        state = threading.Lock()
        calls = [0]
        active = [0]
        max_active = [0]

        def flaky_build():
            with state:
                calls[0] += 1
                call = calls[0]
                active[0] += 1
                max_active[0] = max(max_active[0], active[0])
            try:
                time.sleep(0.15)  # long enough for the late thread to arrive
                if call == 1:
                    raise ValueError("first build fails")
                return "value"
            finally:
                with state:
                    active[0] -= 1

        results, errors = [], []

        def request():
            try:
                results.append(cache.get_or_build("k", flaky_build))
            except ValueError as exc:
                errors.append(exc)

        first = threading.Thread(target=request)   # build #1: fails
        waiter = threading.Thread(target=request)  # queued; retries as build #2
        late = threading.Thread(target=request)    # arrives mid-retry
        first.start()
        time.sleep(0.05)   # first is inside build #1
        waiter.start()
        time.sleep(0.15)   # build #1 has failed; waiter is inside build #2
        late.start()
        for thread in (first, waiter, late):
            thread.join()

        assert max_active[0] == 1  # never two builders for one key
        assert calls[0] == 2       # the failure plus exactly one retry
        assert len(errors) == 1    # only the first caller saw the failure
        assert sorted(results) == [("value", False), ("value", True)]
        assert cache._build_locks == {}  # the slot was released at the end


class TestStats:
    def test_hit_rate(self):
        cache = LabelCache(max_size=2)
        assert cache.stats().hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("zz")
        assert cache.stats().hit_rate == pytest.approx(0.5)

    def test_as_dict_keys(self):
        d = LabelCache(max_size=2).stats().as_dict()
        assert set(d) == {
            "hits", "misses", "evictions", "size", "max_size", "hit_rate",
            "bytes", "max_bytes", "expirations", "ttl",
        }


class TestByteAccounting:
    """The max_bytes budget: estimated sizes, LRU eviction past it."""

    def test_bytes_track_inserts_and_drops(self):
        cache = LabelCache(max_size=8)
        assert cache.stats().bytes == 0
        cache.put("a", "x" * 100)
        after_one = cache.stats().bytes
        assert after_one > 100  # pickled size includes overhead
        cache.put("b", "y" * 100)
        assert cache.stats().bytes > after_one
        cache.invalidate("a")
        cache.invalidate("b")
        assert cache.stats().bytes == 0

    def test_refreshing_a_key_does_not_double_count(self):
        cache = LabelCache(max_size=8)
        cache.put("a", "x" * 100)
        once = cache.stats().bytes
        cache.put("a", "x" * 100)
        assert cache.stats().bytes == once

    def test_budget_evicts_lru_until_it_fits(self):
        cache = LabelCache(max_size=8, max_bytes=400)
        for key in ("a", "b", "c", "d"):
            cache.put(key, "x" * 120)  # ~135 pickled bytes each
        stats = cache.stats()
        assert stats.bytes <= 400
        assert stats.evictions >= 1
        assert "d" in cache  # the newest entry always survives
        assert "a" not in cache  # the oldest was the victim

    def test_oversized_value_still_caches_alone(self):
        cache = LabelCache(max_size=8, max_bytes=64)
        cache.put("big", "x" * 10_000)
        assert "big" in cache  # kept despite exceeding the whole budget
        cache.put("next", "y")
        assert "next" in cache
        assert "big" not in cache  # and is the next eviction victim

    def test_clear_resets_bytes(self):
        cache = LabelCache(max_size=8)
        cache.put("a", "x" * 100)
        cache.clear()
        assert cache.stats().bytes == 0

    def test_max_bytes_validated(self):
        with pytest.raises(EngineError, match="max_bytes"):
            LabelCache(max_size=2, max_bytes=0)


class TestTimeToLive:
    """The ttl: lazy expiry at lookup time, counted separately."""

    @staticmethod
    def ticking(cache_ttl, start=0.0):
        clock = {"now": start}
        return clock, LabelCache(max_size=8, ttl=cache_ttl,
                                 clock=lambda: clock["now"])

    def test_fresh_entries_hit(self):
        clock, cache = self.ticking(10.0)
        cache.put("a", 1)
        clock["now"] += 9.9
        assert cache.get("a") == 1
        assert cache.stats().expirations == 0

    def test_stale_entries_expire_as_misses(self):
        clock, cache = self.ticking(10.0)
        cache.put("a", 1)
        clock["now"] += 10.1
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.misses == 1
        assert stats.evictions == 0  # expiry is not an LRU eviction
        assert len(cache) == 0

    def test_get_or_build_rebuilds_expired_entries(self):
        clock, cache = self.ticking(5.0)
        calls = []
        build = lambda: calls.append(1) or "v"  # noqa: E731
        assert cache.get_or_build("k", build) == ("v", False)
        assert cache.get_or_build("k", build) == ("v", True)
        clock["now"] += 6.0
        assert cache.get_or_build("k", build) == ("v", False)
        assert len(calls) == 2
        assert cache.stats().expirations == 1

    def test_a_hit_refreshes_lru_order_not_the_ttl(self):
        clock, cache = self.ticking(10.0)
        cache.put("a", 1)
        clock["now"] += 6.0
        assert cache.get("a") == 1  # touched, but the stamp stays
        clock["now"] += 6.0  # 12s after insert
        assert cache.get("a") is None
        assert cache.stats().expirations == 1

    def test_ttl_validated(self):
        with pytest.raises(EngineError, match="ttl"):
            LabelCache(max_size=2, ttl=0)

    def test_no_ttl_means_entries_never_expire(self):
        clock, cache = self.ticking(None)
        cache.put("a", 1)
        clock["now"] += 1e9
        assert cache.get("a") == 1


class TestByteBudgetTTLInterplay:
    """max_bytes + ttl together: expired entries die before live ones."""

    @staticmethod
    def bounded(max_bytes, cache_ttl):
        clock = {"now": 100.0}
        return clock, LabelCache(
            max_size=32, max_bytes=max_bytes, ttl=cache_ttl,
            clock=lambda: clock["now"],
        )

    def test_expired_but_largest_entry_evicted_before_live_entries(self):
        import pickle

        big = "x" * 4096
        small = "y" * 64
        # one byte short of fitting everything: the fourth insert is
        # guaranteed to apply pressure
        budget = len(pickle.dumps(big)) + 3 * len(pickle.dumps(small)) - 1
        clock, cache = self.bounded(budget, 10.0)
        cache.put("big", big)
        clock["now"] += 5.0
        cache.put("live-1", small)
        cache.put("live-2", small)
        # keep the expired entry *most* recently used, so plain LRU
        # eviction would wrongly pick the live entries first
        clock["now"] += 4.0
        assert cache.get("big") == big
        clock["now"] += 2.0  # big is now 11s old: expired; live-* are not
        cache.put("live-3", small)  # pushes the total past the budget
        assert "big" not in cache
        assert "live-1" in cache and "live-2" in cache and "live-3" in cache
        stats = cache.stats()
        # the big entry's removal was an expiration, not an eviction
        assert stats.expirations == 1
        assert stats.evictions == 0

    def test_counters_stay_consistent_when_both_mechanisms_fire(self):
        import pickle

        payload = "z" * 512
        entry_size = len(pickle.dumps(payload))
        clock, cache = self.bounded(3 * entry_size, 10.0)
        cache.put("old-1", payload)
        cache.put("old-2", payload)
        clock["now"] += 11.0  # both old entries expire
        cache.put("new-1", payload)
        cache.put("new-2", payload)
        cache.put("new-3", payload)
        cache.put("new-4", payload)  # over budget among live entries only
        stats = cache.stats()
        assert stats.expirations == 2  # the two stale entries
        assert stats.evictions == 1  # one live LRU entry (new-1)
        assert "new-1" not in cache
        assert "new-2" in cache and "new-3" in cache and "new-4" in cache
        # byte accounting survived both paths
        assert stats.bytes == 3 * entry_size
        assert len(cache) == 3

    def test_expired_sweep_only_runs_under_pressure(self):
        clock, cache = self.bounded(None, 10.0)
        cache.put("a", 1)
        clock["now"] += 11.0
        cache.put("b", 2)  # no byte budget, under max_size: no sweep
        # the expired entry is still lazily dropped at lookup time
        assert cache.get("a") is None
        assert cache.stats().expirations == 1
