"""Tests for repro.engine.cache: LRU semantics and thread safety."""

import threading
import time

import pytest

from repro.engine.cache import LabelCache
from repro.errors import EngineError


class TestBasics:
    def test_get_miss_then_hit(self):
        cache = LabelCache(max_size=2)
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_contains_and_len(self):
        cache = LabelCache(max_size=2)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert len(cache) == 1

    def test_invalidate_and_clear(self):
        cache = LabelCache(max_size=4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_max_size_validated(self):
        with pytest.raises(EngineError):
            LabelCache(max_size=0)


class TestLRU:
    def test_least_recently_used_evicted(self):
        cache = LabelCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats().evictions == 1

    def test_put_refreshes_existing(self):
        cache = LabelCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh via put
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache


class TestGetOrBuild:
    def test_one_build_one_hit(self):
        cache = LabelCache(max_size=4)
        calls = []
        value, cached = cache.get_or_build("k", lambda: calls.append(1) or "v")
        assert (value, cached) == ("v", False)
        value, cached = cache.get_or_build("k", lambda: calls.append(1) or "v")
        assert (value, cached) == ("v", True)
        assert len(calls) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_failed_build_leaves_key_absent_and_retries(self):
        cache = LabelCache(max_size=4)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise ValueError("boom")
            return "ok"

        with pytest.raises(ValueError):
            cache.get_or_build("k", flaky)
        assert "k" not in cache
        assert cache._build_locks == {}  # no per-key lock leaked on failure
        value, cached = cache.get_or_build("k", flaky)
        assert (value, cached) == ("ok", False)
        assert cache._build_locks == {}

    def test_single_flight_under_concurrency(self):
        """Ten threads, same key, slow build: exactly one build runs."""
        cache = LabelCache(max_size=4)
        build_count = []
        build_lock = threading.Lock()

        def slow_build():
            with build_lock:
                build_count.append(1)
            time.sleep(0.05)
            return "value"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(cache.get_or_build("k", slow_build))
            )
            for _ in range(10)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(build_count) == 1
        assert all(value == "value" for value, _ in results)
        assert sum(1 for _, cached in results if not cached) == 1

    def test_distinct_keys_build_independently(self):
        cache = LabelCache(max_size=4)
        a, a_cached = cache.get_or_build("a", lambda: "va")
        b, b_cached = cache.get_or_build("b", lambda: "vb")
        assert (a, b) == ("va", "vb")
        assert not a_cached and not b_cached


class TestStats:
    def test_hit_rate(self):
        cache = LabelCache(max_size=2)
        assert cache.stats().hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("zz")
        assert cache.stats().hit_rate == pytest.approx(0.5)

    def test_as_dict_keys(self):
        d = LabelCache(max_size=2).stats().as_dict()
        assert set(d) == {
            "hits", "misses", "evictions", "size", "max_size", "hit_rate",
        }
