"""Tests for repro.engine.executor: batch bookkeeping and eviction.

The stats contract matters for capacity planning: ``batches_submitted``
must count every submission ever made (it is a rate), while
``batches_retained`` is the polling window (a gauge capped at
``max_batches``) — the two used to be conflated.
"""

import pytest

from repro.engine import JobResult, JobStatus, LabelDesign, LabelExecutor, LabelJob
from repro.errors import EngineError


def _job(tag: str) -> LabelJob:
    return LabelJob(
        design=LabelDesign.create(
            weights={"x": 1.0}, sensitive="group", id_column="name"
        ),
        dataset="cs-departments",
        dataset_name=tag,
        job_id=tag,
    )


def _noop_runner(job):
    return JobResult(
        job_id=job.job_id, status=JobStatus.DONE,
        dataset_name=job.dataset_name or "",
    )


@pytest.fixture()
def executor():
    ex = LabelExecutor(max_workers=2, max_batches=2, trial_workers=1)
    yield ex
    ex.shutdown()


class TestSubmissionCounters:
    def test_batches_submitted_counts_submissions_not_retained_handles(self, executor):
        for index in range(3):
            executor.submit_batch([_job(f"b{index}")], _noop_runner)
        stats = executor.stats()
        # regression: this used to report len(retained handles), i.e. 2
        assert stats["batches_submitted"] == 3
        assert stats["batches_retained"] == 2
        assert stats["jobs_submitted"] == 3

    def test_jobs_submitted_sums_batch_sizes(self, executor):
        executor.submit_batch([_job("a"), _job("b")], _noop_runner)
        executor.submit_batch([_job("c")], _noop_runner)
        stats = executor.stats()
        assert stats["batches_submitted"] == 2
        assert stats["jobs_submitted"] == 3

    def test_stats_shape(self, executor):
        # the default backend is vectorized, which adds its two counters
        assert set(executor.stats()) == {
            "max_workers",
            "trial_workers",
            "parallel_trials",
            "trial_backend",
            "trial_backend_effective",
            "trial_backend_fallback",
            "batches_submitted",
            "batches_retained",
            "jobs_submitted",
            "tasks_submitted",
            "trial_kernel_runs",
            "trial_scalar_fallbacks",
        }

    def test_default_backend_is_vectorized(self, executor):
        stats = executor.stats()
        assert stats["trial_backend"] == "vectorized"


class TestEviction:
    def test_eviction_is_oldest_first(self, executor):
        handles = [
            executor.submit_batch([_job(f"b{index}")], _noop_runner)
            for index in range(4)
        ]
        # max_batches=2: only the two newest survive, in submission order
        assert executor.batches() == [h.batch_id for h in handles[2:]]

    def test_polling_an_evicted_batch_raises_clearly(self, executor):
        first = executor.submit_batch([_job("old")], _noop_runner)
        first.results()  # finished before eviction; results were retrievable
        for index in range(2):
            executor.submit_batch([_job(f"new{index}")], _noop_runner)
        with pytest.raises(EngineError, match=f"unknown batch id {first.batch_id!r}"):
            executor.batch(first.batch_id)

    def test_evicted_handles_keep_working_if_held(self, executor):
        first = executor.submit_batch([_job("held")], _noop_runner)
        for index in range(2):
            executor.submit_batch([_job(f"new{index}")], _noop_runner)
        # the registry forgot it, but a caller-held handle still resolves
        assert [r.status for r in first.results()] == [JobStatus.DONE]
        assert first.status()["done"] is True

    def test_stats_stay_correct_after_eviction(self, executor):
        for index in range(5):
            executor.submit_batch([_job(f"b{index}")], _noop_runner)
        stats = executor.stats()
        assert stats["batches_submitted"] == 5
        assert stats["batches_retained"] == 2
        assert len(executor.batches()) == 2

    def test_retained_batches_still_pollable(self, executor):
        handles = [
            executor.submit_batch([_job(f"b{index}")], _noop_runner)
            for index in range(3)
        ]
        for handle in handles[1:]:
            assert executor.batch(handle.batch_id) is handle
