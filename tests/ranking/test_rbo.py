"""Tests for rank_biased_overlap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RankingError
from repro.ranking import rank_biased_overlap
from tests.ranking.test_compare import permuted_ranking


class TestRankBiasedOverlap:
    def test_identical_rankings_score_one(self):
        r = permuted_ranking(list("abcdefgh"))
        assert rank_biased_overlap(r, r) == pytest.approx(1.0)

    def test_disjoint_rankings_score_zero(self):
        a = permuted_ranking(["a", "b", "c"])
        b = permuted_ranking(["x", "y", "z"])
        assert rank_biased_overlap(a, b) == pytest.approx(0.0)

    def test_top_weightedness(self):
        base = permuted_ranking(list("abcdefgh"))
        # swap at the top hurts more than a swap at the bottom
        top_swap = permuted_ranking(list("bacdefgh"))
        bottom_swap = permuted_ranking(list("abcdefhg"))
        assert rank_biased_overlap(base, top_swap) < rank_biased_overlap(
            base, bottom_swap
        )

    def test_p_controls_weighting(self):
        base = permuted_ranking(list("abcdefgh"))
        other = permuted_ranking(list("bacdefgh"))  # top disturbed only
        shallow = rank_biased_overlap(base, other, p=0.5)  # very top-heavy
        deep = rank_biased_overlap(base, other, p=0.99)    # nearly uniform
        assert shallow < deep

    def test_known_value_two_items_swapped(self):
        # rankings [a,b] vs [b,a]: overlap 0 at depth 1, 2/2 at depth 2
        a = permuted_ranking(["a", "b"])
        b = permuted_ranking(["b", "a"])
        p = 0.9
        expected = (1 - p) * (0 * 1 + 1.0 * p) + 1.0 * p**2
        assert rank_biased_overlap(a, b, p=p) == pytest.approx(expected)

    def test_different_lengths_use_shorter_depth(self):
        a = permuted_ranking(list("abcdef"))
        b = permuted_ranking(list("abc"))
        assert rank_biased_overlap(a, b) == pytest.approx(1.0)

    def test_validation(self):
        r = permuted_ranking(["a", "b"])
        with pytest.raises(RankingError):
            rank_biased_overlap(r, r, p=0.0)
        with pytest.raises(RankingError):
            rank_biased_overlap(r, r, p=1.0)

    def test_duplicate_ids_rejected(self):
        from tests.ranking.test_compare import ranking_of

        dup = ranking_of(["a", "a"])
        with pytest.raises(RankingError, match="unique"):
            rank_biased_overlap(dup, dup)

    @given(st.permutations(list("abcdefg")), st.floats(0.1, 0.95))
    @settings(max_examples=50)
    def test_bounds_and_symmetry(self, perm, p):
        base = permuted_ranking(list("abcdefg"))
        other = permuted_ranking(list(perm))
        value = rank_biased_overlap(base, other, p=p)
        assert 0.0 <= value <= 1.0 + 1e-12
        assert rank_biased_overlap(other, base, p=p) == pytest.approx(value)

    @given(st.permutations(list("abcdefg")))
    @settings(max_examples=30)
    def test_identity_is_maximal(self, perm):
        base = permuted_ranking(list("abcdefg"))
        other = permuted_ranking(list(perm))
        assert rank_biased_overlap(base, other) <= rank_biased_overlap(
            base, base
        ) + 1e-12
