"""Tests for repro.ranking.scoring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MissingColumnError, ScoringError, WeightError
from repro.ranking import LinearScoringFunction
from repro.tabular import Table


class TestConstruction:
    def test_weights_copied_and_exposed(self):
        f = LinearScoringFunction({"a": 1.0, "b": 2})
        weights = f.weights
        weights["a"] = 99.0
        assert f.weights["a"] == 1.0

    def test_empty_weights_rejected(self):
        with pytest.raises(WeightError, match="at least one"):
            LinearScoringFunction({})

    def test_non_finite_weight_rejected(self):
        with pytest.raises(WeightError, match="finite"):
            LinearScoringFunction({"a": float("inf")})

    def test_all_zero_weights_rejected(self):
        with pytest.raises(WeightError, match="all weights are zero"):
            LinearScoringFunction({"a": 0.0, "b": 0.0})

    def test_negative_weights_allowed(self):
        f = LinearScoringFunction({"risk": -1.0})
        assert f.weights == {"risk": -1.0}

    def test_bad_attribute_name_rejected(self):
        with pytest.raises(WeightError):
            LinearScoringFunction({"": 1.0})

    def test_bad_missing_policy_rejected(self):
        with pytest.raises(ScoringError, match="missing_policy"):
            LinearScoringFunction({"a": 1.0}, missing_policy="drop")

    def test_normalized_weights_sum_to_one(self):
        f = LinearScoringFunction({"a": 3.0, "b": -1.0})
        normalized = f.normalized_weights()
        assert sum(abs(w) for w in normalized.values()) == pytest.approx(1.0)
        assert normalized["a"] == pytest.approx(0.75)
        assert normalized["b"] == pytest.approx(-0.25)

    def test_describe_contents(self):
        d = LinearScoringFunction({"a": 1.0}).describe()
        assert d["attributes"] == ["a"]
        assert d["missing_policy"] == "zero"


class TestScoring:
    def test_weighted_sum(self):
        t = Table.from_dict({"a": [1.0, 2.0], "b": [10.0, 20.0]})
        f = LinearScoringFunction({"a": 2.0, "b": 0.1})
        assert f.score_table(t).tolist() == [3.0, 6.0]

    def test_missing_policy_zero(self):
        t = Table.from_dict({"a": [1.0, float("nan")]})
        f = LinearScoringFunction({"a": 1.0}, missing_policy="zero")
        assert f.score_table(t).tolist() == [1.0, 0.0]

    def test_missing_policy_propagate(self):
        t = Table.from_dict({"a": [1.0, float("nan")], "b": [1.0, 1.0]})
        f = LinearScoringFunction({"a": 1.0, "b": 1.0}, missing_policy="propagate")
        scores = f.score_table(t)
        assert scores[0] == 2.0
        assert np.isnan(scores[1])

    def test_unknown_attribute_raises(self):
        t = Table.from_dict({"a": [1.0]})
        with pytest.raises(MissingColumnError):
            LinearScoringFunction({"zz": 1.0}).score_table(t)

    def test_categorical_attribute_raises(self):
        from repro.errors import ColumnTypeError

        t = Table.from_dict({"c": ["x", "y"]})
        with pytest.raises(ColumnTypeError):
            LinearScoringFunction({"c": 1.0}).score_table(t)

    def test_empty_table_rejected(self):
        from repro.errors import EmptyTableError

        t = Table.from_dict({"a": []})
        with pytest.raises(EmptyTableError):
            LinearScoringFunction({"a": 1.0}).score_table(t)

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=20),
        st.floats(0.1, 10.0),
    )
    @settings(max_examples=50)
    def test_positive_scaling_preserves_order(self, values, factor):
        t = Table.from_dict({"a": values})
        base = LinearScoringFunction({"a": 1.0}).score_table(t)
        scaled = LinearScoringFunction({"a": factor}).score_table(t)
        assert np.argsort(base).tolist() == np.argsort(scaled).tolist()


class TestDerivation:
    def test_with_weights(self):
        f = LinearScoringFunction({"a": 1.0}, missing_policy="propagate")
        g = f.with_weights({"b": 2.0})
        assert g.weights == {"b": 2.0}
        assert g.missing_policy == "propagate"

    def test_perturbed_adds_deltas(self):
        f = LinearScoringFunction({"a": 1.0, "b": 2.0})
        g = f.perturbed({"a": 0.5})
        assert g.weights == {"a": 1.5, "b": 2.0}

    def test_perturbed_unknown_attribute_rejected(self):
        f = LinearScoringFunction({"a": 1.0})
        with pytest.raises(WeightError, match="unknown attribute"):
            f.perturbed({"zz": 0.1})

    def test_repr_shows_formula(self):
        assert "2*a" in repr(LinearScoringFunction({"a": 2.0}))
