"""Tests for repro.ranking.compare."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RankingError
from repro.ranking import (
    Ranking,
    count_inversions,
    count_inversions_batch,
    kendall_distance,
    kendall_tau_from_discordant,
    kendall_tau_positions,
    kendall_tau_rankings,
    rank_displacement,
    spearman_footrule,
    top_k_jaccard,
    top_k_overlap,
    top_k_overlap_positions,
)
from repro.ranking.compare import kendall_tau_ids, top_k_overlap_ids
from repro.tabular import Table


def ranking_of(names, scores=None):
    if scores is None:
        scores = list(range(len(names), 0, -1))
    t = Table.from_dict({"name": list(names)})
    return Ranking.from_scores(t, [float(s) for s in scores], id_column="name")


def permuted_ranking(names):
    """Ranking placing `names` in the given order."""
    return ranking_of(names)


@pytest.fixture()
def abcde():
    return permuted_ranking(["a", "b", "c", "d", "e"])


class TestKendall:
    def test_identical(self, abcde):
        assert kendall_tau_rankings(abcde, abcde) == pytest.approx(1.0)
        assert kendall_distance(abcde, abcde) == 0.0

    def test_reversed(self, abcde):
        rev = permuted_ranking(["e", "d", "c", "b", "a"])
        assert kendall_tau_rankings(abcde, rev) == pytest.approx(-1.0)
        assert kendall_distance(abcde, rev) == 1.0

    def test_one_swap(self, abcde):
        swapped = permuted_ranking(["b", "a", "c", "d", "e"])
        assert kendall_distance(abcde, swapped, normalized=False) == 1.0
        assert kendall_distance(abcde, swapped) == pytest.approx(0.1)

    def test_common_items_only(self):
        a = permuted_ranking(["a", "b", "c", "x"])
        b = permuted_ranking(["a", "b", "c", "y"])
        assert kendall_tau_rankings(a, b) == pytest.approx(1.0)

    def test_too_few_common_items(self):
        a = permuted_ranking(["a", "x"])
        b = permuted_ranking(["a", "y"])
        with pytest.raises(RankingError, match="common items"):
            kendall_tau_rankings(a, b)

    def test_duplicate_ids_rejected(self):
        a = ranking_of(["a", "a"])
        with pytest.raises(RankingError, match="unique"):
            kendall_tau_rankings(a, a)


class TestFootruleAndDisplacement:
    def test_identical(self, abcde):
        assert spearman_footrule(abcde, abcde) == 0.0
        assert rank_displacement(abcde, abcde) == 0

    def test_reversed_is_max(self, abcde):
        rev = permuted_ranking(["e", "d", "c", "b", "a"])
        assert spearman_footrule(abcde, rev) == pytest.approx(1.0)
        assert rank_displacement(abcde, rev) == 4

    def test_unnormalized(self, abcde):
        swapped = permuted_ranking(["b", "a", "c", "d", "e"])
        assert spearman_footrule(abcde, swapped, normalized=False) == 2.0

    @given(st.permutations(list("abcdef")))
    @settings(max_examples=40)
    def test_normalized_in_unit_interval(self, perm):
        base = permuted_ranking(list("abcdef"))
        other = permuted_ranking(list(perm))
        value = spearman_footrule(base, other)
        assert 0.0 <= value <= 1.0


class TestTopKOverlap:
    def test_full_overlap(self, abcde):
        assert top_k_overlap(abcde, abcde, 3) == 1.0
        assert top_k_jaccard(abcde, abcde, 3) == 1.0

    def test_partial_overlap(self, abcde):
        other = permuted_ranking(["a", "x", "y", "b", "c"])
        assert top_k_overlap(abcde, other, 3) == pytest.approx(1 / 3)
        assert top_k_jaccard(abcde, other, 3) == pytest.approx(1 / 5)

    def test_disjoint(self, abcde):
        other = permuted_ranking(["x", "y", "z"])
        assert top_k_overlap(abcde, other, 3) == 0.0

    def test_invalid_k(self, abcde):
        with pytest.raises(RankingError):
            top_k_overlap(abcde, abcde, 0)
        with pytest.raises(RankingError):
            top_k_jaccard(abcde, abcde, -1)

    @given(st.permutations(list("abcdefgh")), st.integers(1, 8))
    @settings(max_examples=40)
    def test_overlap_bounds(self, perm, k):
        base = permuted_ranking(list("abcdefgh"))
        other = permuted_ranking(list(perm))
        overlap = top_k_overlap(base, other, k)
        jaccard = top_k_jaccard(base, other, k)
        assert 0.0 <= jaccard <= overlap <= 1.0


class TestMetricConsistency:
    @given(st.permutations(list("abcdefg")))
    @settings(max_examples=40)
    def test_tau_and_distance_relation(self, perm):
        # tau = 1 - 4*D/(n(n-1)) for permutations without ties
        base = permuted_ranking(list("abcdefg"))
        other = permuted_ranking(list(perm))
        tau = kendall_tau_rankings(base, other)
        distance = kendall_distance(base, other, normalized=False)
        n = 7
        assert tau == pytest.approx(1 - 4 * distance / (n * (n - 1)), abs=1e-9)


class TestIndexBasedVariants:
    """The permutation-array tier used by the vectorized trial kernels."""

    def test_count_inversions_basics(self):
        assert count_inversions([0, 1, 2, 3]) == 0
        assert count_inversions([3, 2, 1, 0]) == 6
        assert count_inversions([1, 0, 2]) == 1
        assert count_inversions([5]) == 0
        assert count_inversions([]) == 0

    def test_count_inversions_ignores_ties(self):
        # equal values are neither concordant nor discordant
        assert count_inversions([1, 1, 1]) == 0
        assert count_inversions([2, 1, 1]) == 2
        assert count_inversions([1, 2, 1]) == 1

    def test_count_inversions_rejects_bad_shapes(self):
        with pytest.raises(RankingError, match="1-d"):
            count_inversions([[1, 2], [3, 4]])
        with pytest.raises(RankingError, match="trials, n"):
            count_inversions_batch([1, 2, 3])
        with pytest.raises(RankingError, match="integer"):
            count_inversions_batch([[1.5, 2.5]])

    @given(st.lists(st.integers(0, 12), min_size=2, max_size=40))
    @settings(max_examples=60)
    def test_count_inversions_matches_brute_force(self, seq):
        brute = sum(
            1
            for i in range(len(seq))
            for j in range(i + 1, len(seq))
            if seq[i] > seq[j]
        )
        assert count_inversions(seq) == brute

    def test_batch_counts_each_row_independently(self):
        import numpy as np

        batch = np.asarray([[0, 1, 2], [2, 1, 0], [1, 0, 2]])
        assert count_inversions_batch(batch).tolist() == [0, 3, 1]

    @given(st.permutations(list(range(9))))
    @settings(max_examples=60)
    def test_tau_positions_matches_id_based_tau(self, perm):
        """Byte-identity across the tiers, not mere approximation."""
        ids_a = list(range(9))
        ids_b = list(perm)
        where = {item: index for index, item in enumerate(ids_b)}
        positions = [where[item] for item in ids_a]
        assert kendall_tau_positions(positions) == kendall_tau_ids(ids_a, ids_b)

    @given(st.permutations(list(range(8))), st.integers(1, 10))
    @settings(max_examples=60)
    def test_overlap_positions_matches_id_based_overlap(self, perm, k):
        ids_a = list(range(8))
        ids_b = list(perm)
        where = {item: index for index, item in enumerate(ids_b)}
        positions = [where[item] for item in ids_a]
        assert top_k_overlap_positions(positions, k) == top_k_overlap_ids(
            ids_a, ids_b, k
        )

    def test_tau_positions_validation(self):
        with pytest.raises(RankingError, match="distinct"):
            kendall_tau_positions([0, 0, 1])
        with pytest.raises(RankingError, match="at least 2"):
            kendall_tau_positions([0])
        with pytest.raises(RankingError, match="k >= 1"):
            top_k_overlap_positions([0, 1], 0)

    def test_tau_from_discordant_bounds(self):
        assert kendall_tau_from_discordant(0, 5) == 1.0
        assert kendall_tau_from_discordant(10, 5) == -1.0
        with pytest.raises(RankingError, match="outside"):
            kendall_tau_from_discordant(11, 5)
        with pytest.raises(RankingError, match="at least 2"):
            kendall_tau_from_discordant(0, 1)
