"""Tests for repro.ranking.ranker."""

import numpy as np
import pytest

from repro.errors import RankingError
from repro.ranking import LinearScoringFunction, Ranking, rank_table
from repro.tabular import Table


class TestFromScores:
    def test_orders_descending(self, small_table):
        r = Ranking.from_scores(small_table, [1, 3, 2, 6, 5, 4], id_column="name")
        assert r.item_ids() == ["d", "e", "f", "b", "c", "a"]
        assert r.scores.tolist() == [6, 5, 4, 3, 2, 1]

    def test_stable_tie_break_by_row_order(self):
        t = Table.from_dict({"name": ["p", "q", "r"]})
        r = Ranking.from_scores(t, [1.0, 1.0, 2.0], id_column="name")
        assert r.item_ids() == ["r", "p", "q"]

    def test_nan_scores_sort_last(self):
        t = Table.from_dict({"name": ["p", "q", "r"]})
        r = Ranking.from_scores(t, [float("nan"), 2.0, 1.0], id_column="name")
        assert r.item_ids() == ["q", "r", "p"]
        assert np.isnan(r.scores[-1])

    def test_shape_mismatch_rejected(self, small_table):
        with pytest.raises(RankingError):
            Ranking.from_scores(small_table, [1.0])

    def test_empty_table_rejected(self):
        from repro.errors import EmptyTableError

        with pytest.raises(EmptyTableError):
            Ranking.from_scores(Table.from_dict({"a": []}), [])


class TestConstructorValidation:
    def test_increasing_scores_rejected(self, small_table):
        with pytest.raises(RankingError, match="non-increasing"):
            Ranking(small_table, np.asarray([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))

    def test_nan_in_middle_rejected(self, small_table):
        scores = np.asarray([6.0, 5.0, float("nan"), 3.0, 2.0, 1.0])
        with pytest.raises(RankingError, match="suffix"):
            Ranking(small_table, scores)

    def test_unknown_id_column_rejected(self, small_table):
        with pytest.raises(RankingError, match="id column"):
            Ranking(small_table, np.asarray([6.0, 5.0, 4.0, 3.0, 2.0, 1.0]),
                    id_column="zz")

    def test_presorted_skips_monotonicity(self, small_table):
        r = Ranking.presorted(
            small_table, [1.0, 9.0, 2.0, 8.0, 3.0, 7.0], id_column="name"
        )
        assert r.scores.tolist() == [1.0, 9.0, 2.0, 8.0, 3.0, 7.0]


class TestAccessors:
    def test_item(self, small_ranking):
        item = small_ranking.item(1)
        assert item.rank == 1
        assert item.item_id == "a"
        assert item.score == 6.0
        assert item.attributes["group"] == "g1"

    def test_item_out_of_range(self, small_ranking):
        with pytest.raises(RankingError):
            small_ranking.item(0)
        with pytest.raises(RankingError):
            small_ranking.item(7)

    def test_iteration_covers_all_ranks(self, small_ranking):
        ranks = [item.rank for item in small_ranking]
        assert ranks == [1, 2, 3, 4, 5, 6]

    def test_item_ids_without_id_column(self, small_table):
        r = Ranking.from_scores(small_table, [6, 5, 4, 3, 2, 1])
        assert r.item_ids() == [1, 2, 3, 4, 5, 6]

    def test_rank_of(self, small_ranking):
        assert small_ranking.rank_of("c") == 3

    def test_rank_of_missing(self, small_ranking):
        with pytest.raises(RankingError, match="not in this ranking"):
            small_ranking.rank_of("zz")

    def test_rank_of_duplicate(self):
        t = Table.from_dict({"name": ["x", "x"]})
        r = Ranking.from_scores(t, [2.0, 1.0], id_column="name")
        with pytest.raises(RankingError, match="appears"):
            r.rank_of("x")

    def test_to_records(self, small_ranking):
        records = small_ranking.to_records()
        assert records[0]["rank"] == 1
        assert records[0]["item_id"] == "a"
        assert records[0]["x"] == 6.0

    def test_scores_read_only(self, small_ranking):
        with pytest.raises(ValueError):
            small_ranking.scores[0] = 0.0


class TestTopK:
    def test_top_k_slices(self, small_ranking):
        top = small_ranking.top_k(2)
        assert top.size == 2
        assert top.item_ids() == ["a", "b"]

    def test_top_k_clamps(self, small_ranking):
        assert small_ranking.top_k(100).size == 6

    def test_top_k_invalid(self, small_ranking):
        with pytest.raises(RankingError):
            small_ranking.top_k(0)


class TestGroupViews:
    def test_group_mask(self, small_ranking):
        assert small_ranking.group_mask("group", "g1").tolist() == [
            True, True, True, False, False, False,
        ]

    def test_group_count_at_k(self, small_ranking):
        assert small_ranking.group_count_at_k("group", "g2", 4) == 1
        assert small_ranking.group_count_at_k("group", "g2", 100) == 3

    def test_group_share_overall(self, small_ranking):
        assert small_ranking.group_share_overall("group", "g1") == 0.5

    def test_group_count_invalid_k(self, small_ranking):
        with pytest.raises(RankingError):
            small_ranking.group_count_at_k("group", "g1", 0)


class TestRankTable:
    def test_rank_table_end_to_end(self, small_table):
        r = rank_table(small_table, LinearScoringFunction({"y": 1.0}), "name")
        assert r.item_ids() == ["f", "e", "d", "c", "b", "a"]

    def test_negative_weight_reverses(self, small_table):
        r = rank_table(small_table, LinearScoringFunction({"y": -1.0}), "name")
        assert r.item_ids() == ["a", "b", "c", "d", "e", "f"]

    def test_repr(self, small_ranking):
        assert "6 items" in repr(small_ranking)
