"""Cross-module property tests: the pipeline on arbitrary inputs.

Hypothesis drives randomized tables and rankings through the whole
stack — build a label, render it, check the invariants that must hold
for *any* input, not just the demo datasets.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    LinearScoringFunction,
    RankingFactsBuilder,
    rank_table,
    render_json,
    render_markdown,
    render_text,
)
from repro.datasets import synthetic_scores_table
from repro.fairness import ProtectedGroup, evaluate_fairness
from repro.label import label_from_json
from repro.ranking import kendall_tau_rankings, top_k_overlap


# -- strategies ----------------------------------------------------------------

table_params = st.fixed_dictionaries(
    {
        "n": st.integers(12, 120),
        "num_attributes": st.integers(1, 4),
        "group_proportion": st.floats(0.15, 0.85),
        "group_advantage": st.floats(-2.0, 2.0),
        "seed": st.integers(0, 2**31),
    }
)


def build_facts(params, k=5):
    table = synthetic_scores_table(**params)
    weights = {
        f"attr_{i + 1}": 1.0 / params["num_attributes"]
        for i in range(params["num_attributes"])
    }
    return (
        RankingFactsBuilder(table, dataset_name="property table")
        .with_id_column("item")
        .with_scoring(LinearScoringFunction(weights))
        .with_sensitive_attribute("group")
        .with_top_k(k)
        .build()
    )


class TestLabelInvariants:
    @given(table_params)
    @settings(max_examples=25, deadline=None)
    def test_label_builds_and_is_consistent(self, params):
        facts = build_facts(params)
        label = facts.label
        assert label.num_items == params["n"]
        # scores are sorted
        scores = facts.ranking.scores
        assert (np.diff(scores) <= 1e-12).all()
        # every fairness p-value is a probability and verdicts match alpha
        for result in label.fairness.results:
            assert 0.0 <= result.p_value <= 1.0
            if result.measure in ("Proportion", "Pairwise"):
                assert result.fair == (result.p_value >= result.alpha)
        # diversity proportions sum to 1 per slice
        for report in label.diversity.reports:
            assert sum(report.overall.proportions.values()) == pytest.approx(1.0)
            assert sum(report.top_k.proportions.values()) == pytest.approx(1.0)
        # representation gaps cancel out
        for report in label.diversity.reports:
            assert sum(report.representation_gap().values()) == pytest.approx(
                0.0, abs=1e-9
            )

    @given(table_params)
    @settings(max_examples=10, deadline=None)
    def test_all_renderers_accept_any_label(self, params):
        label = build_facts(params).label
        text = render_text(label, detailed=True)
        assert "RANKING FACTS" in text
        markdown = render_markdown(label, detailed=True)
        assert markdown.startswith("# Ranking Facts")
        payload = render_json(label)
        assert label_from_json(payload)["num_items"] == params["n"]
        json.loads(payload)  # strict JSON

    @given(table_params)
    @settings(max_examples=15, deadline=None)
    def test_fairness_group_counts_consistent(self, params):
        facts = build_facts(params)
        group = ProtectedGroup(facts.ranking, "group", "a")
        # prefix counts are non-decreasing and bounded by position
        counts = group.prefix_counts()
        assert (np.diff(counts) >= 0).all()
        assert all(count <= i + 1 for i, count in enumerate(counts))
        assert counts[-1] == group.protected_count


class TestRankingInvariants:
    @given(table_params, st.floats(0.1, 5.0))
    @settings(max_examples=20, deadline=None)
    def test_positive_weight_scaling_is_order_invariant(self, params, factor):
        table = synthetic_scores_table(**params)
        weights = {
            f"attr_{i + 1}": 1.0 for i in range(params["num_attributes"])
        }
        base = rank_table(table, LinearScoringFunction(weights), "item")
        scaled = rank_table(
            table,
            LinearScoringFunction({a: w * factor for a, w in weights.items()}),
            "item",
        )
        assert base.item_ids() == scaled.item_ids()
        assert kendall_tau_rankings(base, scaled) == pytest.approx(1.0)

    @given(table_params)
    @settings(max_examples=20, deadline=None)
    def test_top_k_is_prefix(self, params):
        table = synthetic_scores_table(**params)
        weights = {f"attr_{i + 1}": 1.0 for i in range(params["num_attributes"])}
        ranking = rank_table(table, LinearScoringFunction(weights), "item")
        k = max(1, params["n"] // 3)
        top = ranking.top_k(k)
        assert top.item_ids() == ranking.item_ids()[:k]
        assert top_k_overlap(ranking, top, k) == 1.0

    @given(table_params)
    @settings(max_examples=15, deadline=None)
    def test_negated_weights_reverse_strict_orders(self, params):
        table = synthetic_scores_table(**params)
        weights = {f"attr_{i + 1}": 1.0 for i in range(params["num_attributes"])}
        forward = rank_table(table, LinearScoringFunction(weights), "item")
        backward = rank_table(
            table,
            LinearScoringFunction({a: -w for a, w in weights.items()}),
            "item",
        )
        # continuous attributes: ties have probability zero
        assert forward.item_ids() == list(reversed(backward.item_ids()))


class TestFairnessMonotonicity:
    @given(st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_larger_advantage_never_reduces_unfair_verdicts(self, seed):
        def unfair_count(advantage):
            table = synthetic_scores_table(
                60, num_attributes=2, group_advantage=advantage, seed=seed
            )
            weights = {"attr_1": 0.5, "attr_2": 0.5}
            ranking = rank_table(table, LinearScoringFunction(weights), "item")
            results = evaluate_fairness(ranking, "group", k=10)
            return sum(1 for r in results if not r.fair)

        assert unfair_count(4.0) >= unfair_count(0.0) - 1  # allow 1 flake
