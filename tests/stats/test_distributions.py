"""Tests for repro.stats.distributions, cross-checked against scipy."""

import math

import pytest
import scipy.stats as sps
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    binom_cdf,
    binom_logpmf,
    binom_pmf,
    binom_ppf,
    binom_sf,
    norm_cdf,
    norm_pdf,
    norm_ppf,
    norm_sf,
)


class TestNormal:
    @pytest.mark.parametrize("x", [-8.0, -2.5, -1.0, 0.0, 0.3, 1.96, 5.0, 8.0])
    def test_cdf_matches_scipy(self, x):
        assert norm_cdf(x) == pytest.approx(sps.norm.cdf(x), rel=1e-12)

    @pytest.mark.parametrize("x", [-8.0, 0.0, 3.0])
    def test_sf_matches_scipy(self, x):
        assert norm_sf(x) == pytest.approx(sps.norm.sf(x), rel=1e-12)

    @pytest.mark.parametrize("x", [-3.0, 0.0, 1.5])
    def test_pdf_matches_scipy(self, x):
        assert norm_pdf(x) == pytest.approx(sps.norm.pdf(x), rel=1e-12)

    @pytest.mark.parametrize("q", [1e-10, 0.001, 0.025, 0.5, 0.975, 0.999, 1 - 1e-10])
    def test_ppf_matches_scipy(self, q):
        assert norm_ppf(q) == pytest.approx(sps.norm.ppf(q), rel=1e-9, abs=1e-9)

    def test_ppf_extremes(self):
        assert norm_ppf(0.0) == float("-inf")
        assert norm_ppf(1.0) == float("inf")
        with pytest.raises(ValueError):
            norm_ppf(-0.1)

    def test_location_scale(self):
        assert norm_cdf(12.0, mean=10.0, std=2.0) == pytest.approx(norm_cdf(1.0))
        assert norm_ppf(0.5, mean=7.0, std=3.0) == pytest.approx(7.0)

    def test_nonpositive_std_rejected(self):
        for fn in (norm_pdf, norm_cdf, norm_sf):
            with pytest.raises(ValueError):
                fn(0.0, std=0.0)
        with pytest.raises(ValueError):
            norm_ppf(0.5, std=-1.0)

    def test_deep_tail_accuracy(self):
        # erfc keeps relative accuracy far into the tail
        assert norm_sf(10.0) == pytest.approx(sps.norm.sf(10.0), rel=1e-10)

    @given(st.floats(-6, 6))
    @settings(max_examples=60)
    def test_cdf_sf_complement(self, x):
        assert norm_cdf(x) + norm_sf(x) == pytest.approx(1.0, abs=1e-12)

    @given(st.floats(0.001, 0.999))
    @settings(max_examples=60)
    def test_ppf_inverts_cdf(self, q):
        assert norm_cdf(norm_ppf(q)) == pytest.approx(q, abs=1e-10)


class TestBinomial:
    @pytest.mark.parametrize(
        "k,n,p",
        [(0, 10, 0.3), (3, 10, 0.3), (10, 10, 0.3), (50, 100, 0.5), (2, 7, 0.9)],
    )
    def test_pmf_matches_scipy(self, k, n, p):
        assert binom_pmf(k, n, p) == pytest.approx(sps.binom.pmf(k, n, p), rel=1e-10)

    @pytest.mark.parametrize(
        "k,n,p", [(0, 10, 0.3), (3, 10, 0.3), (9, 10, 0.3), (60, 100, 0.5)]
    )
    def test_cdf_matches_scipy(self, k, n, p):
        assert binom_cdf(k, n, p) == pytest.approx(sps.binom.cdf(k, n, p), rel=1e-10)

    @pytest.mark.parametrize("k,n,p", [(3, 10, 0.3), (60, 100, 0.5)])
    def test_sf_matches_scipy(self, k, n, p):
        assert binom_sf(k, n, p) == pytest.approx(sps.binom.sf(k, n, p), rel=1e-10)

    @pytest.mark.parametrize(
        "q,n,p", [(0.05, 100, 0.4), (0.5, 100, 0.4), (0.9, 100, 0.4), (0.01, 10, 0.5)]
    )
    def test_ppf_matches_scipy(self, q, n, p):
        assert binom_ppf(q, n, p) == int(sps.binom.ppf(q, n, p))

    def test_pmf_outside_support(self):
        assert binom_pmf(-1, 10, 0.5) == 0.0
        assert binom_pmf(11, 10, 0.5) == 0.0
        assert binom_logpmf(-1, 10, 0.5) == float("-inf")

    def test_degenerate_p(self):
        assert binom_pmf(0, 5, 0.0) == 1.0
        assert binom_pmf(5, 5, 1.0) == 1.0
        assert binom_cdf(4, 5, 1.0) == 0.0
        assert binom_cdf(5, 5, 0.0) == 1.0

    def test_cdf_extremes(self):
        assert binom_cdf(-1, 10, 0.5) == 0.0
        assert binom_cdf(10, 10, 0.5) == 1.0
        assert binom_sf(-1, 10, 0.5) == 1.0
        assert binom_sf(10, 10, 0.5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            binom_pmf(0, -1, 0.5)
        with pytest.raises(ValueError):
            binom_pmf(0, 10, 1.5)
        with pytest.raises(TypeError):
            binom_pmf(0.5, 10, 0.5)
        with pytest.raises(ValueError):
            binom_ppf(-0.1, 10, 0.5)

    def test_ppf_zero_quantile(self):
        assert binom_ppf(0.0, 10, 0.5) == 0

    def test_ppf_one_quantile(self):
        assert binom_ppf(1.0, 10, 0.5) == 10

    @given(
        st.integers(0, 60),
        st.integers(1, 60),
        st.floats(0.01, 0.99),
    )
    @settings(max_examples=80)
    def test_cdf_sf_complement(self, k, n, p):
        k = min(k, n)
        assert binom_cdf(k, n, p) + binom_sf(k, n, p) == pytest.approx(1.0, abs=1e-10)

    @given(st.integers(1, 50), st.floats(0.05, 0.95))
    @settings(max_examples=50)
    def test_pmf_sums_to_one(self, n, p):
        total = sum(binom_pmf(k, n, p) for k in range(n + 1))
        assert total == pytest.approx(1.0, abs=1e-9)

    @given(st.integers(1, 40), st.floats(0.05, 0.95), st.floats(0.01, 0.99))
    @settings(max_examples=60)
    def test_ppf_is_smallest_k_reaching_quantile(self, n, p, q):
        k = binom_ppf(q, n, p)
        assert binom_cdf(k, n, p) >= q - 1e-12
        if k > 0:
            assert binom_cdf(k - 1, n, p) < q + 1e-12
