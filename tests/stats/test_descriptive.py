"""Tests for repro.stats.descriptive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    five_number_summary,
    mean,
    median,
    quantile,
    stddev,
    trimmed_mean,
)

finite_lists = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50
)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_median_odd_even(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_stddev_population_default(self):
        assert stddev([1.0, 3.0]) == pytest.approx(1.0)

    def test_stddev_sample(self):
        assert stddev([1.0, 3.0], ddof=1) == pytest.approx(2.0**0.5)

    def test_stddev_needs_enough_values(self):
        with pytest.raises(ValueError):
            stddev([1.0], ddof=1)

    def test_quantile_bounds(self):
        values = [1.0, 2.0, 3.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 3.0
        with pytest.raises(ValueError):
            quantile(values, 1.5)

    def test_empty_rejected(self):
        for fn in (mean, median):
            with pytest.raises(ValueError, match="empty"):
                fn([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            mean([1.0, float("nan")])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            mean(np.zeros((2, 2)))


class TestTrimmedMean:
    def test_no_trim_is_mean(self):
        values = [1.0, 2.0, 3.0, 100.0]
        assert trimmed_mean(values, 0.0) == mean(values)

    def test_trim_removes_outliers(self):
        values = [1.0] * 8 + [1000.0, -1000.0]
        assert trimmed_mean(values, 0.1) == pytest.approx(1.0)

    def test_bad_proportion(self):
        with pytest.raises(ValueError):
            trimmed_mean([1.0], 0.5)
        with pytest.raises(ValueError):
            trimmed_mean([1.0], -0.1)

    def test_overtrim_falls_back_to_full_mean(self):
        assert trimmed_mean([1.0, 2.0], 0.49) == pytest.approx(1.5)


class TestFiveNumberSummary:
    def test_keys_and_order(self):
        s = five_number_summary([4.0, 1.0, 3.0, 2.0])
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["min"] <= s["q1"] <= s["median"] <= s["q3"] <= s["max"]

    @given(finite_lists)
    @settings(max_examples=50)
    def test_invariants(self, values):
        s = five_number_summary(values)
        assert s["min"] <= s["q1"] <= s["median"] <= s["q3"] <= s["max"]
        assert s["min"] == min(values)
        assert s["max"] == max(values)

    @given(finite_lists)
    @settings(max_examples=50)
    def test_mean_within_range(self, values):
        assert min(values) - 1e-9 <= mean(values) <= max(values) + 1e-9
