"""Tests for repro.stats.tests, cross-checked against scipy/statsmodels math."""

import pytest
import scipy.stats as sps
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import binomial_test, one_proportion_ztest, two_proportion_ztest


class TestBinomialTest:
    @pytest.mark.parametrize(
        "successes,trials,p",
        [(3, 20, 0.5), (0, 10, 0.3), (10, 10, 0.3), (7, 15, 0.4), (50, 100, 0.5)],
    )
    def test_two_sided_matches_scipy(self, successes, trials, p):
        ours = binomial_test(successes, trials, p).p_value
        theirs = sps.binomtest(successes, trials, p).pvalue
        assert ours == pytest.approx(theirs, rel=1e-9)

    @pytest.mark.parametrize("alternative", ["less", "greater"])
    def test_one_sided_matches_scipy(self, alternative):
        ours = binomial_test(3, 20, 0.5, alternative=alternative).p_value
        theirs = sps.binomtest(3, 20, 0.5, alternative=alternative).pvalue
        assert ours == pytest.approx(theirs, rel=1e-12)

    def test_large_trials_stay_exact(self):
        # the vectorized path: still matches scipy at 10^5 trials
        ours = binomial_test(49_000, 100_000, 0.5).p_value
        theirs = sps.binomtest(49_000, 100_000, 0.5).pvalue
        assert ours == pytest.approx(theirs, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            binomial_test(5, 3, 0.5)
        with pytest.raises(ValueError):
            binomial_test(-1, 3, 0.5)
        with pytest.raises(ValueError):
            binomial_test(1, 3, 1.5)
        with pytest.raises(ValueError):
            binomial_test(1, 3, 0.5, alternative="both")

    def test_significant_helper(self):
        result = binomial_test(0, 30, 0.5)
        assert result.significant(0.05)
        with pytest.raises(ValueError):
            result.significant(0.0)

    def test_result_as_dict(self):
        d = binomial_test(3, 10, 0.5).as_dict()
        assert d["name"] == "exact binomial test"
        assert 0.0 <= d["p_value"] <= 1.0

    @given(st.integers(0, 40), st.integers(1, 40), st.floats(0.05, 0.95))
    @settings(max_examples=60)
    def test_p_value_in_unit_interval(self, successes, trials, p):
        successes = min(successes, trials)
        for alternative in ("two-sided", "less", "greater"):
            result = binomial_test(successes, trials, p, alternative=alternative)
            assert 0.0 <= result.p_value <= 1.0


class TestOneProportionZTest:
    def test_matches_hand_computation(self):
        # 2 of 10 vs p=0.5: z = (0.2-0.5)/sqrt(0.25/10)
        result = one_proportion_ztest(2, 10, 0.5)
        expected_z = (0.2 - 0.5) / (0.025) ** 0.5
        assert result.statistic == pytest.approx(expected_z)
        assert result.p_value == pytest.approx(2 * sps.norm.cdf(expected_z), rel=1e-12)

    def test_one_sided_less(self):
        result = one_proportion_ztest(2, 10, 0.5, alternative="less")
        assert result.p_value == pytest.approx(
            sps.norm.cdf(result.statistic), rel=1e-12
        )

    def test_exact_null_gives_pvalue_one(self):
        result = one_proportion_ztest(5, 10, 0.5)
        assert result.p_value == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            one_proportion_ztest(0, 0, 0.5)
        with pytest.raises(ValueError):
            one_proportion_ztest(1, 10, 0.0)
        with pytest.raises(ValueError):
            one_proportion_ztest(11, 10, 0.5)


class TestTwoProportionZTest:
    def test_matches_hand_computation(self):
        # top-k 1/10 vs rest 24/40
        result = two_proportion_ztest(1, 10, 24, 40)
        pooled = 25 / 50
        se = (pooled * (1 - pooled) * (1 / 10 + 1 / 40)) ** 0.5
        expected_z = (0.1 - 0.6) / se
        assert result.statistic == pytest.approx(expected_z)
        assert result.p_value == pytest.approx(
            2 * sps.norm.sf(abs(expected_z)), rel=1e-12
        )

    def test_identical_proportions_not_significant(self):
        result = two_proportion_ztest(5, 10, 20, 40)
        assert result.p_value == pytest.approx(1.0)

    def test_alternative_less(self):
        result = two_proportion_ztest(1, 10, 24, 40, alternative="less")
        assert result.p_value < two_proportion_ztest(1, 10, 24, 40).p_value

    def test_degenerate_pooled_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            two_proportion_ztest(0, 10, 0, 40)
        with pytest.raises(ValueError, match="degenerate"):
            two_proportion_ztest(10, 10, 40, 40)

    def test_validation(self):
        with pytest.raises(ValueError):
            two_proportion_ztest(0, 0, 1, 10)
        with pytest.raises(ValueError):
            two_proportion_ztest(11, 10, 1, 10)

    @given(
        st.integers(0, 20), st.integers(1, 20), st.integers(0, 50), st.integers(1, 50)
    )
    @settings(max_examples=60)
    def test_p_value_in_unit_interval(self, sa, ta, sb, tb):
        sa, sb = min(sa, ta), min(sb, tb)
        pooled = (sa + sb) / (ta + tb)
        if pooled in (0.0, 1.0):
            return  # degenerate, rejected by design
        result = two_proportion_ztest(sa, ta, sb, tb)
        assert 0.0 <= result.p_value <= 1.0

    def test_symmetry_two_sided(self):
        a = two_proportion_ztest(1, 10, 24, 40).p_value
        b = two_proportion_ztest(24, 40, 1, 10).p_value
        assert a == pytest.approx(b)
