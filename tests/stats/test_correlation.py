"""Tests for repro.stats.correlation, cross-checked against scipy."""

import numpy as np
import pytest
import scipy.stats as sps
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import kendall_tau, pearson_r, spearman_rho
from repro.stats.correlation import rankdata_average


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_r([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_r([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_matches_scipy(self, rng):
        x, y = rng.normal(size=60), rng.normal(size=60)
        assert pearson_r(x, y) == pytest.approx(sps.pearsonr(x, y).statistic, rel=1e-10)

    def test_constant_returns_zero(self):
        assert pearson_r([1, 1, 1], [1, 2, 3]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pearson_r([1], [1])
        with pytest.raises(ValueError):
            pearson_r([1, 2], [1, float("nan")])
        with pytest.raises(ValueError):
            pearson_r([1, 2], [1, 2, 3])


class TestRankData:
    def test_simple(self):
        assert rankdata_average([30, 10, 20]).tolist() == [3.0, 1.0, 2.0]

    def test_ties_averaged(self):
        assert rankdata_average([1, 1, 2]).tolist() == [1.5, 1.5, 3.0]

    def test_matches_scipy(self, rng):
        x = rng.integers(0, 5, size=40).astype(float)
        np.testing.assert_allclose(rankdata_average(x), sps.rankdata(x))


class TestSpearman:
    def test_monotone_is_one(self):
        assert spearman_rho([1, 2, 3], [10, 100, 1000]) == pytest.approx(1.0)

    def test_matches_scipy(self, rng):
        x, y = rng.normal(size=50), rng.normal(size=50)
        assert spearman_rho(x, y) == pytest.approx(
            sps.spearmanr(x, y).statistic, rel=1e-10
        )

    def test_matches_scipy_with_ties(self, rng):
        x = rng.integers(0, 4, size=50).astype(float)
        y = rng.integers(0, 4, size=50).astype(float)
        assert spearman_rho(x, y) == pytest.approx(
            sps.spearmanr(x, y).statistic, rel=1e-9
        )


class TestKendall:
    def test_identical_order(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_reversed_order(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_matches_scipy(self, rng):
        x, y = rng.normal(size=40), rng.normal(size=40)
        assert kendall_tau(x, y) == pytest.approx(
            sps.kendalltau(x, y).statistic, rel=1e-10
        )

    def test_matches_scipy_with_ties(self, rng):
        x = rng.integers(0, 3, size=40).astype(float)
        y = rng.integers(0, 3, size=40).astype(float)
        assert kendall_tau(x, y) == pytest.approx(
            sps.kendalltau(x, y).statistic, rel=1e-9
        )

    def test_fully_tied_returns_zero(self):
        assert kendall_tau([1, 1, 1], [1, 2, 3]) == 0.0

    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=25))
    @settings(max_examples=40)
    def test_bounds_and_symmetry(self, xs):
        ys = list(reversed(xs))
        tau = kendall_tau(xs, ys)
        assert -1.0 <= tau <= 1.0
        assert kendall_tau(ys, xs) == pytest.approx(tau)

    @given(st.permutations(list(range(8))))
    @settings(max_examples=40)
    def test_permutation_matches_scipy(self, perm):
        base = list(range(8))
        assert kendall_tau(base, perm) == pytest.approx(
            sps.kendalltau(base, perm).statistic, rel=1e-10
        )
