"""Tests for repro.stats.regression."""

import numpy as np
import pytest
import scipy.stats as sps
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import fit_line, fit_line_xy


class TestFitLineXY:
    def test_perfect_line(self):
        fit = fit_line_xy([1, 2, 3], [2, 4, 6])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(0.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.n == 3

    def test_matches_scipy_linregress(self, rng):
        x = rng.normal(size=40)
        y = 3.0 * x + rng.normal(size=40)
        ours = fit_line_xy(x, y)
        theirs = sps.linregress(x, y)
        assert ours.slope == pytest.approx(theirs.slope, rel=1e-10)
        assert ours.intercept == pytest.approx(theirs.intercept, rel=1e-10)
        assert ours.r_squared == pytest.approx(theirs.rvalue**2, rel=1e-8)

    def test_constant_target(self):
        fit = fit_line_xy([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == 1.0

    def test_constant_x_rejected(self):
        with pytest.raises(ValueError, match="constant"):
            fit_line_xy([2, 2, 2], [1, 2, 3])

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least 2"):
            fit_line_xy([1], [1])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            fit_line_xy([1, 2], [float("nan"), 1])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_line_xy([1, 2], [1, 2, 3])

    def test_predict(self):
        fit = fit_line_xy([0, 1], [1, 3])
        assert fit.predict(2.0) == pytest.approx(5.0)

    def test_residuals_sum_to_zero(self, rng):
        x = rng.normal(size=25)
        y = rng.normal(size=25)
        fit = fit_line_xy(x, y)
        assert float(fit.residuals(x, y).sum()) == pytest.approx(0.0, abs=1e-9)

    @given(
        st.lists(st.floats(-100, 100), min_size=3, max_size=30),
        st.floats(-5, 5),
        st.floats(-5, 5),
    )
    @settings(max_examples=50)
    def test_recovers_exact_linear_relation(self, xs, slope, intercept):
        xs = np.asarray(xs)
        if np.ptp(xs) < 1e-6:
            return
        ys = slope * xs + intercept
        fit = fit_line_xy(xs, ys)
        assert fit.slope == pytest.approx(slope, abs=1e-6)
        assert fit.intercept == pytest.approx(intercept, abs=1e-4)


class TestFitLine:
    def test_rank_indexed(self):
        fit = fit_line([10.0, 9.0, 8.0])
        assert fit.slope == pytest.approx(-1.0)
        assert fit.predict(1) == pytest.approx(10.0)

    def test_as_dict(self):
        d = fit_line([3.0, 2.0, 1.0]).as_dict()
        assert set(d) == {"slope", "intercept", "r_squared", "n"}
