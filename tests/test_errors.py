"""Tests for the exception hierarchy and the public API surface."""

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro import errors


ALL_ERRORS = [
    errors.SchemaError,
    errors.ColumnTypeError,
    errors.MissingColumnError,
    errors.EmptyTableError,
    errors.CSVFormatError,
    errors.NormalizationError,
    errors.ScoringError,
    errors.WeightError,
    errors.RankingError,
    errors.FairnessConfigError,
    errors.ProtectedGroupError,
    errors.StabilityError,
    errors.LabelError,
    errors.DatasetError,
    errors.SessionStateError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, errors.RankingFactsError)

    def test_missing_column_is_keyerror(self):
        assert issubclass(errors.MissingColumnError, KeyError)

    def test_missing_column_message(self):
        exc = errors.MissingColumnError("x", ("a", "b"))
        assert "x" in str(exc) and "a, b" in str(exc)

    def test_missing_column_without_alternatives(self):
        assert str(errors.MissingColumnError("x")) == "column 'x' not found"

    def test_csv_error_line_number(self):
        assert str(errors.CSVFormatError("bad", line_number=7)).startswith("line 7:")
        assert "line" not in str(errors.CSVFormatError("bad"))

    def test_weight_error_is_scoring_error(self):
        assert issubclass(errors.WeightError, errors.ScoringError)

    def test_protected_group_error_is_fairness_config(self):
        assert issubclass(errors.ProtectedGroupError, errors.FairnessConfigError)

    def test_all_exports_match_module(self):
        for name in errors.__all__:
            assert hasattr(errors, name)


def _walk_public_members():
    """Yield (qualified name, object) for every public API member."""
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(module_info.name)
        for name in getattr(module, "__all__", []):
            yield f"{module_info.name}.{name}", getattr(module, name)


class TestApiSurface:
    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_every_public_symbol_has_a_docstring(self):
        missing = []
        for qualified, obj in _walk_public_members():
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(qualified)
        assert not missing, f"undocumented public symbols: {missing}"

    @staticmethod
    def _documented_in_mro(cls, name) -> bool:
        """A member counts as documented if any base documents the name."""
        for base in cls.__mro__:
            member = vars(base).get(name)
            if member is None:
                continue
            func = member.fget if isinstance(member, property) else member
            doc = getattr(func, "__doc__", None) or getattr(member, "__doc__", None)
            if (doc or "").strip():
                return True
        return False

    def test_every_public_class_method_documented(self):
        missing = []
        seen = set()
        for qualified, obj in _walk_public_members():
            if not inspect.isclass(obj) or obj in seen:
                continue
            seen.add(obj)
            for name, member in vars(obj).items():
                if name.startswith("_"):
                    continue
                func = member.fget if isinstance(member, property) else member
                if callable(func) or isinstance(member, property):
                    if not self._documented_in_mro(obj, name):
                        missing.append(f"{qualified}.{name}")
        assert not missing, f"undocumented public methods: {missing}"

    def test_all_modules_importable(self):
        count = 0
        for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            importlib.import_module(module_info.name)
            count += 1
        assert count >= 40  # the package is not accidentally truncated
