"""Tests for repro.fairness.pairwise."""

import numpy as np
import pytest
import scipy.stats as sps
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FairnessConfigError
from repro.fairness.pairwise import (
    NaiveBinomialPairwiseMeasure,
    PairwiseMeasure,
    pairwise_preference_statistics,
)
from tests.fairness.test_base import group_of


class TestPairwiseStatistics:
    def test_all_protected_on_top(self):
        stats = pairwise_preference_statistics([True, True, False, False])
        assert stats.u_statistic == 4
        assert stats.preference_probability == 1.0
        assert stats.total_pairs == 4

    def test_all_protected_on_bottom(self):
        stats = pairwise_preference_statistics([False, False, True, True])
        assert stats.preference_probability == 0.0

    def test_interleaved(self):
        stats = pairwise_preference_statistics([True, False, True, False])
        # pairs won: first True beats both False (2), second beats one (1)
        assert stats.u_statistic == 3
        assert stats.preference_probability == 0.75

    def test_matches_brute_force(self, rng):
        for _ in range(25):
            mask = rng.random(30) < 0.4
            if not 0 < mask.sum() < 30:
                continue
            stats = pairwise_preference_statistics(mask)
            brute = sum(
                1
                for i in range(30)
                for j in range(30)
                if mask[i] and not mask[j] and i < j
            )
            assert stats.u_statistic == brute

    def test_matches_scipy_mannwhitney_u(self, rng):
        mask = rng.random(50) < 0.5
        if not 0 < mask.sum() < 50:
            mask[0] = True
            mask[1] = False
        stats = pairwise_preference_statistics(mask)
        # ranks: position 1 = best; U for protected over non-protected with
        # "greater is better" uses reversed positions as scores
        positions = np.arange(50, 0, -1)  # score = inverse position
        u = sps.mannwhitneyu(
            positions[mask], positions[~mask], alternative="two-sided"
        ).statistic
        assert stats.u_statistic == int(u)

    def test_validation(self):
        with pytest.raises(FairnessConfigError):
            pairwise_preference_statistics([True])
        with pytest.raises(FairnessConfigError):
            pairwise_preference_statistics([True, True])

    @given(st.lists(st.booleans(), min_size=2, max_size=60))
    @settings(max_examples=60)
    def test_probability_bounds(self, mask):
        if not 0 < sum(mask) < len(mask):
            return
        stats = pairwise_preference_statistics(mask)
        assert 0.0 <= stats.preference_probability <= 1.0
        assert 0 <= stats.u_statistic <= stats.total_pairs


class TestPairwiseMeasure:
    def test_matches_scipy_ranksums_two_sided(self, rng):
        mask = rng.random(60) < 0.45
        if not 0 < mask.sum() < 60:
            return
        group = group_of(list(mask))
        result = PairwiseMeasure().audit(group)
        positions = np.arange(60, 0, -1).astype(float)
        expected = sps.mannwhitneyu(
            positions[mask], positions[~mask],
            alternative="two-sided", method="asymptotic", use_continuity=True,
        ).pvalue
        assert result.p_value == pytest.approx(expected, rel=1e-6)

    def test_segregated_is_unfair(self):
        group = group_of([False] * 20 + [True] * 20)
        result = PairwiseMeasure().audit(group)
        assert not result.fair
        assert result.details["preference_probability"] == 0.0

    def test_alternating_is_fair(self):
        group = group_of([True, False] * 20)
        assert PairwiseMeasure().audit(group).fair

    def test_alternative_less_one_sided(self):
        group = group_of([True] * 15 + [False] * 15)  # protected on top
        result = PairwiseMeasure(alternative="less").audit(group)
        assert result.fair  # favoured, not disfavoured
        assert result.p_value > 0.99

    def test_constructor_validation(self):
        with pytest.raises(FairnessConfigError):
            PairwiseMeasure(alpha=0.0)
        with pytest.raises(FairnessConfigError):
            PairwiseMeasure(alternative="greater")

    def test_details_content(self):
        group = group_of([True, False] * 10)
        details = PairwiseMeasure().audit(group).details
        assert details["total_pairs"] == 100
        assert details["n_protected"] == 10
        assert "Mann-Whitney" in details["test"]

    def test_exact_balance_z_zero(self):
        group = group_of([True, False, False, True])  # U = 2 = mean
        result = PairwiseMeasure().audit(group)
        assert result.details["z_statistic"] == 0.0
        assert result.p_value == pytest.approx(1.0)


class TestNaiveBinomial:
    def test_anticonservative_versus_ranksum(self):
        # mild imbalance: the naive test flags it, the calibrated one doesn't
        group = group_of([True, True, False, True, False, False, True, False,
                          False, False, True, False] * 3)
        naive = NaiveBinomialPairwiseMeasure().audit(group)
        calibrated = PairwiseMeasure().audit(group)
        assert naive.p_value < calibrated.p_value

    def test_name_distinct(self):
        group = group_of([True, False] * 5)
        assert "naive" in NaiveBinomialPairwiseMeasure().audit(group).measure
