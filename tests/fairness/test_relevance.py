"""Tests for repro.fairness.relevance (rND / rKL / rRD of [13])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FairnessConfigError
from repro.fairness import rkl, rnd, rrd, set_difference_scores


def labels_protected_last(n, protected):
    return np.asarray([False] * (n - protected) + [True] * protected)


def labels_alternating(n):
    return np.asarray([i % 2 == 0 for i in range(n)])


class TestRND:
    def test_extreme_ranking_scores_one(self):
        assert rnd(labels_protected_last(100, 50)) == pytest.approx(1.0)

    def test_protected_first_also_scores_one(self):
        labels = np.asarray([True] * 50 + [False] * 50)
        assert rnd(labels) == pytest.approx(1.0)

    def test_alternating_is_near_zero(self):
        assert rnd(labels_alternating(100)) < 0.05

    def test_bounds(self, rng):
        for _ in range(20):
            labels = rng.random(80) < 0.4
            if 0 < labels.sum() < 80:
                assert 0.0 <= rnd(labels) <= 1.0

    def test_validation(self):
        with pytest.raises(FairnessConfigError):
            rnd([True])  # too short
        with pytest.raises(FairnessConfigError):
            rnd([True, True])  # no non-protected
        with pytest.raises(FairnessConfigError):
            rnd(np.zeros((2, 2), dtype=bool))

    def test_no_cut_points_returns_zero(self):
        # n <= step: no prefix is evaluated, no signal
        assert rnd([True, False], step=10) == 0.0

    def test_custom_step(self):
        labels = labels_protected_last(40, 20)
        fine = rnd(labels, step=5)
        coarse = rnd(labels, step=20)
        assert 0.0 <= coarse <= 1.0 and 0.0 <= fine <= 1.0


class TestRKL:
    def test_extreme_ranking_scores_one(self):
        assert rkl(labels_protected_last(100, 50)) == pytest.approx(1.0)

    def test_alternating_is_near_zero(self):
        assert rkl(labels_alternating(100)) < 0.05

    def test_monotone_in_unfairness(self, rng):
        from repro.fairness import generate_ranking_labels

        values = []
        for f in (0.5, 0.3, 0.1):
            scores = [
                rkl(generate_ranking_labels(200, 0.5, f=f, rng=rng))
                for _ in range(10)
            ]
            values.append(np.mean(scores))
        assert values[0] < values[1] < values[2]

    def test_handles_empty_prefix_probability(self):
        # a prefix with zero protected items: p_hat=0 must not blow up
        labels = np.asarray([False] * 30 + [True] * 10)
        assert np.isfinite(rkl(labels))


class TestRRD:
    def test_minority_required(self):
        with pytest.raises(FairnessConfigError, match="minority"):
            rrd(np.asarray([True] * 30 + [False] * 10))

    def test_protected_first_scores_one(self):
        # the normalizer is the maximum attainable value, reached when the
        # protected minority monopolizes the top (ratio differences blow up)
        labels = np.asarray([True] * 30 + [False] * 70)
        assert rrd(labels) == pytest.approx(1.0)

    def test_protected_last_scores_high(self):
        value = rrd(labels_protected_last(100, 30))
        assert 0.4 < value < 1.0
        assert value > rrd(labels_alternating(100))

    def test_balanced_allowed_at_exact_half(self):
        labels = labels_alternating(100)
        assert rrd(labels) < 0.1

    def test_bounds(self, rng):
        for _ in range(20):
            labels = rng.random(90) < 0.3
            count = labels.sum()
            if 0 < count <= 45:
                assert 0.0 <= rrd(labels) <= 1.0


class TestSetDifferenceScores:
    def test_bundle_matches_individuals(self):
        labels = labels_protected_last(60, 20)
        bundle = set_difference_scores(labels)
        assert bundle.rnd == pytest.approx(rnd(labels))
        assert bundle.rkl == pytest.approx(rkl(labels))
        assert bundle.rrd == pytest.approx(rrd(labels))
        assert bundle.n == 60
        assert bundle.protected_count == 20

    def test_rrd_none_for_majority_protected(self):
        labels = np.asarray([True] * 40 + [False] * 20)
        bundle = set_difference_scores(labels)
        assert bundle.rrd is None

    def test_as_dict(self):
        d = set_difference_scores(labels_alternating(40)).as_dict()
        assert {"rND", "rKL", "rRD", "step", "n", "protected_count"} == set(d)

    @given(st.integers(20, 120), st.integers(1, 2**31))
    @settings(max_examples=40)
    def test_all_scores_in_unit_interval(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.random(n) < 0.35
        if not 0 < labels.sum() < n:
            return
        bundle = set_difference_scores(labels)
        assert 0.0 <= bundle.rnd <= 1.0
        assert 0.0 <= bundle.rkl <= 1.0
        if bundle.rrd is not None:
            assert 0.0 <= bundle.rrd <= 1.0

    def test_worse_f_scores_worse_on_average(self, rng):
        from repro.fairness import generate_ranking_labels

        fair = np.mean(
            [rnd(generate_ranking_labels(150, 0.4, rng=rng)) for _ in range(15)]
        )
        unfair = np.mean(
            [rnd(generate_ranking_labels(150, 0.4, f=0.05, rng=rng)) for _ in range(15)]
        )
        assert unfair > fair + 0.2
