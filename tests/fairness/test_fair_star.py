"""Tests for repro.fairness.fair_star (mtable, adjustment, verifier, rerank)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FairnessConfigError
from repro.fairness import (
    ProtectedGroup,
    adjust_alpha,
    compute_fail_probability,
    fair_star_rerank,
    generate_ranking_labels,
    minimum_protected_table,
)
from repro.fairness.fair_star.adjustment import fail_probability_of_mtable
from repro.fairness.fair_star.mtable import required_at
from repro.fairness.fair_star.rerank import rerank_labels
from repro.fairness.fair_star.verifier import FairStarMeasure, audit_prefixes
from repro.stats.distributions import binom_cdf
from tests.fairness.test_base import group_of


class TestMTable:
    def test_matches_definition(self):
        # m(i) is the smallest t with F(t; i, p) > alpha
        for i in (1, 5, 10, 30):
            m = required_at(i, 0.5, 0.1)
            assert binom_cdf(m, i, 0.5) > 0.1
            if m > 0:
                assert binom_cdf(m - 1, i, 0.5) <= 0.1

    def test_table_consistent_with_pointwise(self):
        table = minimum_protected_table(25, 0.4, 0.1)
        for i in range(1, 26):
            assert table[i - 1] == required_at(i, 0.4, 0.1)

    def test_monotone_nondecreasing(self):
        table = minimum_protected_table(60, 0.3, 0.05)
        assert (np.diff(table) >= 0).all()

    def test_growth_at_most_one_per_step(self):
        table = minimum_protected_table(60, 0.7, 0.1)
        assert (np.diff(table) <= 1).all()

    def test_known_values_from_fair_paper(self):
        # FA*IR paper example: p=0.5, alpha=0.1 -> first positions need 0
        table = minimum_protected_table(10, 0.5, 0.1)
        assert table[0] == 0  # a single item need not be protected
        assert table[-1] >= 2  # by position 10 some protected are required

    def test_higher_p_requires_more(self):
        low = minimum_protected_table(20, 0.3, 0.1)
        high = minimum_protected_table(20, 0.7, 0.1)
        assert (high >= low).all()
        assert high.sum() > low.sum()

    def test_smaller_alpha_requires_less(self):
        strict = minimum_protected_table(20, 0.5, 0.01)
        loose = minimum_protected_table(20, 0.5, 0.2)
        assert (strict <= loose).all()

    def test_validation(self):
        with pytest.raises(FairnessConfigError):
            minimum_protected_table(0, 0.5, 0.1)
        with pytest.raises(FairnessConfigError):
            minimum_protected_table(10, 0.0, 0.1)
        with pytest.raises(FairnessConfigError):
            minimum_protected_table(10, 0.5, 0.0)


class TestFailProbability:
    def test_zero_mtable_never_fails(self):
        assert fail_probability_of_mtable(np.zeros(10, dtype=int), 0.5) == 0.0

    def test_impossible_mtable_always_fails(self):
        # requiring 2 protected in a prefix of 1 is unsatisfiable
        mtable = np.asarray([2, 2, 2])
        assert fail_probability_of_mtable(mtable, 0.5) == pytest.approx(1.0)

    def test_matches_monte_carlo(self, rng):
        k, p, alpha = 15, 0.5, 0.1
        exact = compute_fail_probability(k, p, alpha)
        mtable = minimum_protected_table(k, p, alpha)
        trials = 4000
        fails = 0
        for _ in range(trials):
            draws = rng.random(k) < p
            counts = np.cumsum(draws)
            if (counts < mtable).any():
                fails += 1
        assert exact == pytest.approx(fails / trials, abs=0.03)

    def test_naive_test_inflates_type_one_error(self):
        # with many prefixes, the uncorrected test fails fair rankings
        # far more often than alpha
        assert compute_fail_probability(100, 0.5, 0.1) > 0.2

    def test_validation(self):
        with pytest.raises(FairnessConfigError):
            fail_probability_of_mtable(np.asarray([]), 0.5)
        with pytest.raises(FairnessConfigError):
            fail_probability_of_mtable(np.asarray([0]), 1.0)


class TestAdjustAlpha:
    @pytest.mark.parametrize("k,p", [(10, 0.5), (30, 0.3), (50, 0.6)])
    def test_adjusted_meets_target(self, k, p):
        alpha = 0.1
        adjusted = adjust_alpha(k, p, alpha)
        assert 0.0 < adjusted <= alpha
        assert compute_fail_probability(k, p, adjusted) <= alpha + 1e-12

    def test_adjustment_not_needlessly_small(self):
        # the adjusted level should sit near the feasibility boundary
        k, p, alpha = 30, 0.5, 0.1
        adjusted = adjust_alpha(k, p, alpha)
        assert compute_fail_probability(k, p, min(alpha, adjusted * 3)) > alpha

    def test_no_correction_when_unneeded(self):
        # tiny k: the naive test is already conservative
        alpha = 0.1
        if compute_fail_probability(2, 0.5, alpha) <= alpha:
            assert adjust_alpha(2, 0.5, alpha) == alpha

    def test_validation(self):
        with pytest.raises(FairnessConfigError):
            adjust_alpha(10, 0.5, 0.0)


class TestAuditPrefixes:
    def test_fair_ranking_passes(self, rng):
        labels = generate_ranking_labels(100, 0.5, rng=np.random.default_rng(1))
        audit = audit_prefixes(labels, p=0.5, k=20, alpha=0.1)
        assert audit.passes
        assert audit.failed_prefixes == ()

    def test_unfair_ranking_fails_with_positions(self):
        labels = np.asarray([False] * 30 + [True] * 30)
        audit = audit_prefixes(labels, p=0.5, k=20, alpha=0.1)
        assert not audit.passes
        assert len(audit.failed_prefixes) > 0
        assert audit.min_prefix_cdf < 0.01

    def test_type_one_error_calibrated(self, rng):
        # adjusted test rejects fair rankings at ~alpha
        k, p, alpha = 20, 0.5, 0.1
        rejections = 0
        trials = 400
        for _ in range(trials):
            labels = generate_ranking_labels(60, p, rng=rng)
            if not audit_prefixes(labels, p=p, k=k, alpha=alpha).passes:
                rejections += 1
        assert rejections / trials <= alpha + 0.05

    def test_unadjusted_rejects_more(self, rng):
        k, p, alpha = 30, 0.5, 0.1
        adjusted_rejections = naive_rejections = 0
        for _ in range(300):
            labels = generate_ranking_labels(60, p, rng=rng)
            if not audit_prefixes(labels, p=p, k=k, alpha=alpha).passes:
                adjusted_rejections += 1
            if not audit_prefixes(labels, p=p, k=k, alpha=alpha, adjust=False).passes:
                naive_rejections += 1
        assert naive_rejections > adjusted_rejections

    def test_short_labels_rejected(self):
        with pytest.raises(FairnessConfigError, match="at least"):
            audit_prefixes(np.asarray([True]), p=0.5, k=5, alpha=0.1)

    def test_audit_dict(self):
        labels = np.asarray([True, False] * 10)
        d = audit_prefixes(labels, p=0.5, k=10, alpha=0.1).as_dict()
        assert d["passes"] is True
        assert len(d["prefix_counts"]) == 10


class TestFairStarMeasure:
    def test_flags_only_underrepresentation(self):
        group = group_of([False] * 20 + [True] * 20)
        result = FairStarMeasure(k=10).audit(group)
        assert not result.fair
        complement = group_of([True] * 20 + [False] * 20)
        assert FairStarMeasure(k=10).audit(complement).fair

    def test_k_clamped_to_ranking(self):
        group = group_of([True, False] * 4)
        result = FairStarMeasure(k=100).audit(group)
        assert result.details["k"] == 8

    def test_explicit_p_overrides_group_share(self):
        group = group_of([True, False] * 10)
        # demanding 90% protected makes the balanced ranking fail
        result = FairStarMeasure(k=10, p=0.9).audit(group)
        assert not result.fair

    def test_constructor_validation(self):
        with pytest.raises(FairnessConfigError):
            FairStarMeasure(k=0)
        with pytest.raises(FairnessConfigError):
            FairStarMeasure(alpha=2.0)
        with pytest.raises(FairnessConfigError):
            FairStarMeasure(p=0.0)


class TestRerank:
    def test_reranked_ranking_passes_fair_star(self):
        labels = [False] * 25 + [True] * 25
        group = group_of(labels)
        fair = fair_star_rerank(group, k=20, alpha=0.1)
        audit_group = ProtectedGroup(fair, "g", "p")
        result = FairStarMeasure(k=20, alpha=0.1, p=0.5).audit(audit_group)
        assert result.fair

    def test_within_group_order_preserved(self):
        labels = [False] * 10 + [True] * 10
        group = group_of(labels)
        fair = fair_star_rerank(group, k=20, alpha=0.1)
        ids = fair.item_ids()
        protected_ids = [i for i in ids if int(i[1:]) >= 10]
        assert protected_ids == sorted(protected_ids, key=lambda s: int(s[1:]))

    def test_k_items_returned(self):
        group = group_of([False] * 15 + [True] * 15)
        assert fair_star_rerank(group, k=12).size == 12

    def test_infeasible_rejected(self):
        labels = np.asarray([False] * 30 + [True] * 2 + [False] * 8)
        scores = np.arange(40, 0, -1).astype(float)
        with pytest.raises(FairnessConfigError, match="infeasible"):
            rerank_labels(labels, scores, k=30, p=0.9, alpha=0.1)

    def test_rerank_validation(self):
        with pytest.raises(FairnessConfigError):
            rerank_labels(np.asarray([True]), np.asarray([1.0, 2.0]), 1, 0.5, 0.1)
        with pytest.raises(FairnessConfigError):
            rerank_labels(np.asarray([True, False]), np.asarray([2.0, 1.0]), 5, 0.5, 0.1)

    def test_no_op_when_already_fair(self):
        labels = [True, False] * 15
        group = group_of(labels)
        fair = fair_star_rerank(group, k=10, alpha=0.1)
        assert fair.item_ids() == group.ranking.top_k(10).item_ids()

    @given(st.integers(4, 40), st.floats(0.2, 0.8), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_rerank_always_satisfies_mtable(self, n, p, seed):
        rng = np.random.default_rng(seed)
        labels = rng.random(n) < p
        if not 0 < labels.sum() < n:
            return
        scores = np.sort(rng.random(n))[::-1]
        k = max(1, n // 2)
        group_p = labels.mean()
        try:
            order = rerank_labels(labels, scores, k=k, p=group_p, alpha=0.1)
        except FairnessConfigError:
            return  # infeasible instance, correctly refused
        taken = labels[order]
        mtable = minimum_protected_table(
            k, group_p, adjust_alpha(k, group_p, 0.1)
        ) if adjust_alpha(k, group_p, 0.1) > 0 else np.zeros(k, dtype=int)
        counts = np.cumsum(taken)
        assert (counts >= mtable).all()
