"""Tests for repro.fairness.proportion."""

import pytest

from repro.errors import FairnessConfigError
from repro.fairness.proportion import ProportionMeasure
from tests.fairness.test_base import group_of


class TestProportionMeasure:
    def test_severe_underrepresentation_is_unfair(self):
        # protected fill the bottom 20 of 40
        group = group_of([False] * 20 + [True] * 20)
        result = ProportionMeasure(k=10).audit(group)
        assert not result.fair
        assert result.p_value < 0.01
        assert result.details["protected_in_topk"] == 0

    def test_balanced_is_fair(self):
        group = group_of([True, False] * 20)
        result = ProportionMeasure(k=10).audit(group)
        assert result.fair

    def test_two_sided_flags_overrepresentation(self):
        group = group_of([True] * 10 + [False] * 25 + [True] * 5)
        result = ProportionMeasure(k=10).audit(group)
        assert not result.fair
        assert result.details["topk_share"] == 1.0

    def test_one_sided_less_ignores_overrepresentation(self):
        group = group_of([True] * 10 + [False] * 25 + [True] * 5)
        result = ProportionMeasure(k=10, alternative="less").audit(group)
        assert result.fair

    def test_details_content(self):
        group = group_of([True, False] * 20)
        details = ProportionMeasure(k=10).audit(group).details
        assert details["k"] == 10
        assert details["protected_in_topk"] == 5
        assert details["overall_share"] == 0.5
        assert details["test"] == "two-proportion z-test"

    def test_k_must_be_smaller_than_ranking(self):
        group = group_of([True, False] * 3)
        with pytest.raises(FairnessConfigError, match="k < ranking size"):
            ProportionMeasure(k=6).audit(group)

    def test_constructor_validation(self):
        with pytest.raises(FairnessConfigError):
            ProportionMeasure(k=0)
        with pytest.raises(FairnessConfigError):
            ProportionMeasure(alpha=1.5)
        with pytest.raises(FairnessConfigError):
            ProportionMeasure(alternative="greater")

    def test_alpha_threshold_respected(self):
        group = group_of([False] * 12 + [True] * 12)
        strict = ProportionMeasure(k=8, alpha=1e-6).audit(group)
        loose = ProportionMeasure(k=8, alpha=0.2).audit(group)
        assert strict.fair  # p-value above the extreme threshold
        assert not loose.fair

    def test_measure_name_on_result(self):
        group = group_of([True, False] * 10)
        assert ProportionMeasure(k=5).audit(group).measure == "Proportion"
