"""Tests for repro.fairness.multivalued."""

import numpy as np
import pytest

from repro.errors import FairnessConfigError
from repro.fairness import evaluate_fairness_multivalued, holm_bonferroni
from repro.ranking import Ranking
from repro.tabular import Table


def ranking_with_categories(categories):
    t = Table.from_dict(
        {
            "name": [f"i{j}" for j in range(len(categories))],
            "ethnicity": list(categories),
        }
    )
    return Ranking.from_scores(
        t, list(range(len(categories), 0, -1)), id_column="name"
    )


class TestHolmBonferroni:
    def test_single_hypothesis_is_plain_alpha(self):
        assert holm_bonferroni([0.04]) == [True]
        assert holm_bonferroni([0.06]) == [False]

    def test_step_down_ordering(self):
        # smallest p tested at alpha/m, next at alpha/(m-1), last at alpha
        assert holm_bonferroni([0.01, 0.02, 0.06], alpha=0.05) == [True, True, False]

    def test_step_down_less_conservative_than_bonferroni(self):
        # 0.02 fails plain Bonferroni (0.05/3) but passes Holm's second step
        assert holm_bonferroni([0.01, 0.02, 0.04], alpha=0.05) == [True, True, True]

    def test_stops_at_first_acceptance(self):
        # second-smallest fails -> everything larger accepted even if small
        assert holm_bonferroni([0.001, 0.04, 0.041], alpha=0.05) == [
            True, False, False,
        ]

    def test_results_align_with_input_order(self):
        assert holm_bonferroni([0.04, 0.001, 0.5], alpha=0.05) == [
            False, True, False,
        ]

    def test_empty(self):
        assert holm_bonferroni([]) == []

    def test_validation(self):
        with pytest.raises(FairnessConfigError):
            holm_bonferroni([0.5], alpha=0.0)
        with pytest.raises(FairnessConfigError):
            holm_bonferroni([1.5])

    def test_controls_fwer_under_global_null(self, rng):
        # simulate m independent true nulls; family-wise rejections <= alpha
        m, trials, alpha = 5, 400, 0.05
        family_errors = 0
        for _ in range(trials):
            p_values = rng.random(m)
            if any(holm_bonferroni(list(p_values), alpha=alpha)):
                family_errors += 1
        assert family_errors / trials <= alpha + 0.03


class TestEvaluateFairnessMultivalued:
    @pytest.fixture()
    def segregated_ranking(self):
        # three ethnic groups; group "c" entirely at the bottom
        cats = ["a", "b"] * 20 + ["c"] * 20
        return ranking_with_categories(cats)

    def test_flags_the_bottom_group_only(self, segregated_ranking):
        # k=20: the top-20 contains zero "c" items — decisive evidence that
        # survives the across-group correction
        audit = evaluate_fairness_multivalued(segregated_ranking, "ethnicity", k=20)
        assert audit.categories == ("a", "b", "c")
        assert "c" in audit.unfair_categories("FA*IR")
        assert "a" not in audit.unfair_categories("FA*IR")
        assert audit.any_unfair()

    def test_balanced_ranking_is_clean(self):
        cats = ["a", "b", "c"] * 20
        audit = evaluate_fairness_multivalued(
            ranking_with_categories(cats), "ethnicity", k=12
        )
        assert not audit.any_unfair()

    def test_results_cover_all_pairs(self, segregated_ranking):
        audit = evaluate_fairness_multivalued(segregated_ranking, "ethnicity", k=10)
        assert len(audit.results) == 3 * 3  # categories x measures

    def test_correction_is_no_looser_than_raw(self, segregated_ranking):
        audit = evaluate_fairness_multivalued(segregated_ranking, "ethnicity", k=10)
        for measure, corrected in audit.corrected_unfair.items():
            raw_unfair = {
                r.group_label.split("=")[1]
                for r in audit.results
                if r.measure == measure and not r.fair
            }
            assert set(corrected) <= raw_unfair

    def test_min_group_size_skips_tiny_groups(self):
        cats = ["a", "b"] * 20 + ["rare"]
        audit = evaluate_fairness_multivalued(
            ranking_with_categories(cats), "ethnicity", k=10, min_group_size=2
        )
        assert "rare" not in audit.categories

    def test_single_category_rejected(self):
        with pytest.raises(FairnessConfigError, match="at least 2"):
            evaluate_fairness_multivalued(
                ranking_with_categories(["a"] * 10), "ethnicity"
            )

    def test_unknown_measure_lookup_rejected(self, segregated_ranking):
        audit = evaluate_fairness_multivalued(segregated_ranking, "ethnicity", k=10)
        with pytest.raises(FairnessConfigError, match="no measure"):
            audit.unfair_categories("SHAP")

    def test_as_dict(self, segregated_ranking):
        d = evaluate_fairness_multivalued(
            segregated_ranking, "ethnicity", k=10
        ).as_dict()
        assert set(d) == {
            "attribute", "categories", "alpha", "results", "corrected_unfair",
        }

    def test_compas_race_audit(self):
        # the flagship §4 use case: ethnicity (6 categories) on a risk ranking
        from repro.datasets import compas
        from repro.ranking import LinearScoringFunction, rank_table

        table = compas(n=1500)
        ranking = rank_table(
            table, LinearScoringFunction({"decile_score": 1.0}), "defendant_id"
        )
        audit = evaluate_fairness_multivalued(ranking, "race", k=150)
        # the documented skew: Caucasian defendants under-represented among
        # the highest risk scores relative to African-American defendants
        assert "Caucasian" in audit.unfair_categories("Pairwise")
