"""Tests for repro.fairness.base (ProtectedGroup, evaluate_fairness)."""

import numpy as np
import pytest

from repro.errors import FairnessConfigError, ProtectedGroupError
from repro.fairness import ProtectedGroup, evaluate_fairness
from repro.fairness.proportion import ProportionMeasure
from repro.ranking import LinearScoringFunction, Ranking, rank_table
from repro.tabular import Table


def group_of(labels):
    """ProtectedGroup from a rank-ordered protected/other label list."""
    t = Table.from_dict(
        {
            "name": [f"i{j}" for j in range(len(labels))],
            "g": ["p" if flag else "o" for flag in labels],
        }
    )
    r = Ranking.from_scores(
        t, list(range(len(labels), 0, -1)), id_column="name"
    )
    return ProtectedGroup(r, "g", "p")


class TestProtectedGroup:
    def test_mask_in_rank_order(self):
        group = group_of([True, False, True, False])
        assert group.mask.tolist() == [True, False, True, False]

    def test_counts_and_proportion(self):
        group = group_of([True, False, True, False])
        assert group.protected_count == 2
        assert group.size == 4
        assert group.proportion == 0.5

    def test_count_at(self):
        group = group_of([True, False, True, False])
        assert group.count_at(1) == 1
        assert group.count_at(3) == 2
        assert group.count_at(100) == 2  # clamped

    def test_count_at_invalid(self):
        with pytest.raises(FairnessConfigError):
            group_of([True, False]).count_at(0)

    def test_prefix_counts(self):
        group = group_of([True, False, True])
        assert group.prefix_counts().tolist() == [1, 1, 2]
        assert group.prefix_counts(2).tolist() == [1, 1]

    def test_protected_positions_one_based(self):
        group = group_of([False, True, True])
        assert group.protected_positions().tolist() == [2, 3]

    def test_label(self):
        assert group_of([True, False]).label() == "g=p"

    def test_unknown_category_rejected(self, small_ranking):
        with pytest.raises(ProtectedGroupError, match="no category"):
            ProtectedGroup(small_ranking, "group", "nope")

    def test_empty_group_impossible_via_categories(self, small_ranking):
        # every present category has members, so emptiness arises only via
        # missing values, which are rejected up front
        t = Table.from_dict({"name": ["a", "b"], "g": ["x", ""]})
        r = Ranking.from_scores(t, [2.0, 1.0], id_column="name")
        with pytest.raises(ProtectedGroupError, match="missing"):
            ProtectedGroup(r, "g", "x")

    def test_universal_group_rejected(self):
        t = Table.from_dict({"name": ["a", "b"], "g": ["x", "x"]})
        r = Ranking.from_scores(t, [2.0, 1.0], id_column="name")
        with pytest.raises(ProtectedGroupError, match="every item"):
            ProtectedGroup(r, "g", "x")

    def test_mask_read_only(self):
        group = group_of([True, False])
        with pytest.raises(ValueError):
            group.mask[0] = False


class TestEvaluateFairness:
    @pytest.fixture()
    def biased_ranking(self):
        # 40 items; protected ("small") occupy the bottom half entirely
        labels = [False] * 20 + [True] * 20
        t = Table.from_dict(
            {
                "name": [f"i{j}" for j in range(40)],
                "size": ["small" if flag else "large" for flag in labels],
            }
        )
        return Ranking.from_scores(t, list(range(40, 0, -1)), id_column="name")

    def test_default_runs_three_measures_per_category(self, biased_ranking):
        results = evaluate_fairness(biased_ranking, "size", k=10)
        assert len(results) == 6  # 2 categories x 3 measures
        measures = {r.measure for r in results}
        assert measures == {"FA*IR", "Proportion", "Pairwise"}

    def test_biased_ranking_flags_protected_unfair(self, biased_ranking):
        results = evaluate_fairness(biased_ranking, "size", k=10)
        small = [r for r in results if r.group_label == "size=small"]
        assert all(not r.fair for r in small)

    def test_explicit_categories_restrict(self, biased_ranking):
        results = evaluate_fairness(
            biased_ranking, "size", categories=["small"], k=10
        )
        assert {r.group_label for r in results} == {"size=small"}

    def test_non_binary_attribute_needs_explicit_categories(self):
        t = Table.from_dict(
            {"name": list("abcdef"), "r": ["x", "y", "z", "x", "y", "z"]}
        )
        r = Ranking.from_scores(t, [6, 5, 4, 3, 2, 1], id_column="name")
        with pytest.raises(FairnessConfigError, match="binary"):
            evaluate_fairness(r, "r", k=2)
        results = evaluate_fairness(r, "r", categories=["x"], k=2)
        assert len(results) == 3

    def test_custom_measures(self, biased_ranking):
        results = evaluate_fairness(
            biased_ranking, "size", k=10,
            measures=[ProportionMeasure(k=10)],
        )
        assert len(results) == 2
        assert all(r.measure == "Proportion" for r in results)

    def test_result_dict_shape(self, biased_ranking):
        result = evaluate_fairness(biased_ranking, "size", k=10)[0]
        d = result.as_dict()
        assert {"measure", "group", "verdict", "fair", "p_value", "alpha", "details"} <= set(d)
        assert d["verdict"] in ("fair", "unfair")

    def test_verdict_property(self, biased_ranking):
        for result in evaluate_fairness(biased_ranking, "size", k=10):
            assert result.verdict == ("fair" if result.fair else "unfair")


class TestFairRankingIsFair:
    def test_alternating_ranking_passes_everything(self):
        labels = [True, False] * 30
        t = Table.from_dict(
            {
                "name": [f"i{j}" for j in range(60)],
                "g": ["p" if flag else "o" for flag in labels],
            }
        )
        r = Ranking.from_scores(t, list(range(60, 0, -1)), id_column="name")
        results = evaluate_fairness(r, "g", k=10)
        assert all(result.fair for result in results)
