"""Tests for repro.fairness.generative (the [13] model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FairnessConfigError
from repro.fairness import generate_ranking_labels, mixing_proportion


class TestGenerateRankingLabels:
    def test_length_and_composition(self, rng):
        labels = generate_ranking_labels(100, 0.3, rng=rng)
        assert labels.shape == (100,)
        assert labels.sum() == 30  # exactly round(n*p) protected items

    def test_f_zero_puts_protected_last(self, rng):
        labels = generate_ranking_labels(20, 0.5, f=0.0, rng=rng)
        assert labels.tolist() == [False] * 10 + [True] * 10

    def test_f_one_puts_protected_first(self, rng):
        labels = generate_ranking_labels(20, 0.5, f=1.0, rng=rng)
        assert labels.tolist() == [True] * 10 + [False] * 10

    def test_f_defaults_to_p(self, rng):
        # group-blind: top-half share ~ p on average
        shares = [
            mixing_proportion(generate_ranking_labels(200, 0.4, rng=rng), 100)
            for _ in range(50)
        ]
        assert np.mean(shares) == pytest.approx(0.4, abs=0.03)

    def test_low_f_starves_the_top(self, rng):
        labels = generate_ranking_labels(400, 0.5, f=0.1, rng=rng)
        assert mixing_proportion(labels, 50) < 0.3
        # composition is preserved overall
        assert labels.sum() == 200

    def test_reproducible_with_seeded_rng(self):
        a = generate_ranking_labels(50, 0.5, f=0.3, rng=np.random.default_rng(7))
        b = generate_ranking_labels(50, 0.5, f=0.3, rng=np.random.default_rng(7))
        assert a.tolist() == b.tolist()

    def test_validation(self):
        with pytest.raises(FairnessConfigError):
            generate_ranking_labels(0, 0.5)
        with pytest.raises(FairnessConfigError):
            generate_ranking_labels(10, 0.0)
        with pytest.raises(FairnessConfigError):
            generate_ranking_labels(10, 1.0)
        with pytest.raises(FairnessConfigError):
            generate_ranking_labels(10, 0.5, f=1.5)

    def test_tiny_proportion_leaving_pool_empty_rejected(self):
        with pytest.raises(FairnessConfigError, match="empty"):
            generate_ranking_labels(3, 0.01)

    @given(
        st.integers(10, 150),
        st.floats(0.1, 0.9),
        st.floats(0.0, 1.0),
        st.integers(0, 2**31),
    )
    @settings(max_examples=60)
    def test_composition_invariant(self, n, p, f, seed):
        labels = generate_ranking_labels(n, p, f=f, rng=np.random.default_rng(seed))
        expected = int(round(n * p))
        if expected in (0, n):
            return
        assert labels.sum() == expected
        assert labels.shape == (n,)


class TestMixingProportion:
    def test_full_and_prefix(self):
        labels = np.asarray([True, True, False, False])
        assert mixing_proportion(labels) == 0.5
        assert mixing_proportion(labels, 2) == 1.0

    def test_prefix_clamped(self):
        assert mixing_proportion(np.asarray([True]), 100) == 1.0

    def test_validation(self):
        with pytest.raises(FairnessConfigError):
            mixing_proportion(np.asarray([]))
        with pytest.raises(FairnessConfigError):
            mixing_proportion(np.asarray([True]), 0)
